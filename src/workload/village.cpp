#include "workload/village.hpp"

#include <cmath>

#include "texture/procedural.hpp"
#include "util/rng.hpp"

namespace mltc {

namespace {

/** Sky walls around the scene: four big vertical quads facing inward. */
void
addSkyWalls(Scene &scene, TextureId sky, float extent, float height)
{
    float half = extent * 0.5f;
    // Each wall is an XY quad rotated to face the scene center.
    auto wall = std::make_shared<Mesh>(makeQuadXY(extent, height, 1.0f, 1.0f));
    struct Placement
    {
        Vec3 pos;
        float yaw;
    } placements[4] = {
        {{0.0f, 0.0f, -half}, 0.0f},
        {{half, 0.0f, 0.0f}, -3.14159265f * 0.5f},
        {{0.0f, 0.0f, half}, 3.14159265f},
        {{-half, 0.0f, 0.0f}, 3.14159265f * 0.5f},
    };
    for (const auto &p : placements) {
        Mat4 xf = Mat4::translate(p.pos) * Mat4::rotateY(p.yaw);
        scene.addObject(wall, xf, sky, "sky");
    }
}

} // namespace

Workload
buildVillage(const VillageParams &params)
{
    Workload wl;
    wl.name = "village";
    wl.default_frames = params.default_frames;
    wl.textures = std::make_unique<TextureManager>();
    TextureManager &tm = *wl.textures;
    Rng rng(params.seed);

    // --- Texture pool (heavily shared between objects) ----------------
    const uint32_t gts = params.ground_texture_size;
    const uint32_t wts = params.wall_texture_size;
    const uint32_t small = wts / 2; // secondary materials at half size
    TextureId grass = tm.load("grass", MipPyramid(makeGrass(gts, rng.next())));
    TextureId dirt = tm.load("dirt", MipPyramid(makeDirt(small, rng.next())));
    TextureId road = tm.load("road", MipPyramid(makeRoad(small, rng.next())));
    TextureId sky = tm.load("sky", MipPyramid(makeSky(gts, rng.next())));

    std::vector<TextureId> walls;
    for (int i = 0; i < params.wall_texture_pool; ++i) {
        Image img;
        switch (i % 4) {
          case 0: img = makeBrickWall(wts, rng.next()); break;
          case 1: img = makePlaster(wts, rng.next()); break;
          case 2: img = makeStone(wts, rng.next()); break;
          default: img = makeWoodPlanks(wts, rng.next()); break;
        }
        walls.push_back(tm.load("wall_" + std::to_string(i),
                                MipPyramid(std::move(img))));
    }
    std::vector<TextureId> roofs;
    for (int i = 0; i < params.roof_texture_pool; ++i)
        roofs.push_back(
            tm.load("roof_" + std::to_string(i),
                    MipPyramid(makeRoofShingles(small, rng.next()))));

    TextureId church_wall =
        tm.load("church_wall", MipPyramid(makeStone(gts, rng.next())));
    TextureId foliage =
        tm.load("foliage", MipPyramid(makeFoliage(small, rng.next())));

    // --- Geometry ------------------------------------------------------
    Scene &scene = wl.scene;
    const float extent = params.extent;

    // Ground: grass with ~0.25 texture repeats per world unit.
    auto ground = std::make_shared<Mesh>(
        makeGroundGrid(extent, 8, extent * 0.25f));
    scene.addObject(ground, Mat4::identity(), grass, "ground");

    // Two crossing dirt streets through the village center.
    auto street = std::make_shared<Mesh>(
        makeQuadXZ(extent * 0.9f, 6.0f, extent * 0.25f, 1.5f));
    scene.addObject(street, Mat4::translate({0.0f, 0.02f, 0.0f}), road,
                    "street_ew");
    scene.addObject(street,
                    Mat4::translate({0.0f, 0.03f, 0.0f}) *
                        Mat4::rotateY(3.14159265f * 0.5f),
                    road, "street_ns");

    // Houses: rows flanking both streets, with jitter; wall and roof
    // textures drawn from the shared pools (inter-object reuse).
    std::vector<MeshPtr> house_bodies;
    std::vector<MeshPtr> house_roofs;
    for (int i = 0; i < 4; ++i) {
        float sx = 6.0f + static_cast<float>(i);
        float sy = 3.5f + 0.5f * static_cast<float>(i);
        float sz = 5.0f + 0.5f * static_cast<float>(i);
        house_bodies.push_back(
            std::make_shared<Mesh>(makeBox(sx, sy, sz, 0.25f)));
        house_roofs.push_back(std::make_shared<Mesh>(
            makeGabledRoof(sx + 0.8f, sz + 0.8f, sy, sy + 2.5f, 2.0f)));
    }

    int placed = 0;
    const float lot = 13.0f;
    const int ring_max = 6;
    for (int ring = 1; ring <= ring_max && placed < params.houses; ++ring) {
        for (int side = 0; side < 4 && placed < params.houses; ++side) {
            for (int slot = -ring; slot <= ring && placed < params.houses;
                 ++slot) {
                if (std::abs(slot) < 1 && ring == 1)
                    continue; // keep the central plaza open
                float along = static_cast<float>(slot) * lot +
                              rng.uniformf(-2.0f, 2.0f);
                float off = static_cast<float>(ring) * lot +
                            rng.uniformf(-2.0f, 2.0f);
                Vec3 pos;
                switch (side) {
                  case 0: pos = {along, 0.0f, off}; break;
                  case 1: pos = {along, 0.0f, -off}; break;
                  case 2: pos = {off, 0.0f, along}; break;
                  default: pos = {-off, 0.0f, along}; break;
                }
                if (std::abs(pos.x) > extent * 0.45f ||
                    std::abs(pos.z) > extent * 0.45f)
                    continue;
                float yaw = rng.uniformf(0.0f, 6.2831853f);
                Mat4 xf = Mat4::translate(pos) * Mat4::rotateY(yaw);
                int style = rng.range(0, 3);
                TextureId wall =
                    walls[static_cast<size_t>(rng.range(
                        0, params.wall_texture_pool - 1))];
                TextureId roof =
                    roofs[static_cast<size_t>(rng.range(
                        0, params.roof_texture_pool - 1))];
                scene.addObject(house_bodies[static_cast<size_t>(style)], xf,
                                wall, "house_" + std::to_string(placed));
                scene.addObject(house_roofs[static_cast<size_t>(style)], xf,
                                roof, "roof_" + std::to_string(placed));
                if (params.fences && rng.chance(0.7)) {
                    // Yard wall: adds the eye-level overdraw the dense
                    // Village artwork has (texture-before-z counts it).
                    auto fence = std::make_shared<Mesh>(
                        makeBox(10.5f + static_cast<float>(style), 1.1f,
                                9.0f + static_cast<float>(style), 0.4f));
                    TextureId fence_tex =
                        walls[static_cast<size_t>(rng.range(
                            0, params.wall_texture_pool - 1))];
                    scene.addObject(fence, xf, fence_tex,
                                    "fence_" + std::to_string(placed));
                }
                ++placed;
            }
        }
    }

    // Church: a tall stone box + steep roof on the plaza.
    auto church_body = std::make_shared<Mesh>(makeBox(12.0f, 10.0f, 9.0f, 0.2f));
    auto church_roof = std::make_shared<Mesh>(
        makeGabledRoof(13.0f, 10.0f, 10.0f, 16.0f, 3.0f));
    Mat4 church_xf = Mat4::translate({10.0f, 0.0f, 10.0f});
    scene.addObject(church_body, church_xf, church_wall, "church");
    scene.addObject(church_roof, church_xf,
                    roofs[0], "church_roof");

    // Trees: camera-independent crossed billboards.
    auto tree_quad = std::make_shared<Mesh>([] {
        Mesh m = makeQuadXY(4.0f, 5.0f, 1.0f, 1.0f);
        Mesh other = makeQuadXY(4.0f, 5.0f, 1.0f, 1.0f);
        transformMesh(other, Mat4::rotateY(3.14159265f * 0.5f));
        appendMesh(m, other);
        return m;
    }());
    for (int i = 0; i < params.trees; ++i) {
        float x = rng.uniformf(-extent * 0.45f, extent * 0.45f);
        float z = rng.uniformf(-extent * 0.45f, extent * 0.45f);
        if (std::abs(x) < 8.0f || std::abs(z) < 8.0f)
            continue; // keep the streets clear
        scene.addObject(tree_quad, Mat4::translate({x, 0.0f, z}), foliage,
                        "tree_" + std::to_string(i), /*two_sided=*/true);
    }

    // Village well on the plaza.
    auto well = std::make_shared<Mesh>(makeBox(2.0f, 1.2f, 2.0f, 0.5f));
    scene.addObject(well, Mat4::translate({-6.0f, 0.0f, -6.0f}), dirt,
                    "well");

    // Perimeter hills: grassy berms that fill the background behind the
    // houses (layered terrain is a large part of the Village artwork's
    // depth complexity under texture-before-z).
    auto hill = std::make_shared<Mesh>(
        makeGabledRoof(90.0f, 70.0f, 0.0f, 18.0f, 10.0f));
    for (int i = 0; i < 10; ++i) {
        float angle = static_cast<float>(i) * 0.628f;
        float r = extent * rng.uniformf(0.38f, 0.52f);
        Mat4 xf = Mat4::translate({std::cos(angle) * r, 0.0f,
                                   std::sin(angle) * r}) *
                  Mat4::rotateY(rng.uniformf(0.0f, 6.28f));
        scene.addObject(hill, xf, grass, "hill_" + std::to_string(i));
    }

    // Meadow patches: grass detail layers over the base ground.
    auto patch = std::make_shared<Mesh>(makeQuadXZ(36.0f, 36.0f, 9.0f, 9.0f));
    for (int i = 0; i < 24; ++i) {
        float x = rng.uniformf(-extent * 0.42f, extent * 0.42f);
        float z = rng.uniformf(-extent * 0.42f, extent * 0.42f);
        scene.addObject(patch, Mat4::translate({x, 0.05f, z}), grass,
                        "meadow_" + std::to_string(i));
    }

    addSkyWalls(scene, sky, extent * 1.2f, 120.0f);

    // --- Scripted walk-through ------------------------------------------
    // A loop through the streets at eye level, looking ahead.
    const float eye_h = 1.7f;
    struct Waypoint
    {
        float x, z;
    } route[] = {
        {-60.0f, -3.0f}, {-30.0f, -3.0f}, {-5.0f, -3.0f}, {3.0f, -12.0f},
        {3.0f, -40.0f},  {3.0f, -60.0f},  {12.0f, -40.0f}, {18.0f, -12.0f},
        {40.0f, -3.0f},  {62.0f, 3.0f},   {40.0f, 8.0f},   {12.0f, 3.0f},
        {3.0f, 20.0f},   {-3.0f, 45.0f},  {3.0f, 62.0f},   {-12.0f, 40.0f},
        {-25.0f, 12.0f}, {-45.0f, 3.0f},
    };
    const int n = static_cast<int>(sizeof(route) / sizeof(route[0]));
    for (int i = 0; i < n; ++i) {
        const auto &w = route[i];
        const auto &next = route[(i + 1) % n];
        wl.path.addKey({w.x, eye_h, w.z},
                       {next.x, eye_h * 0.9f, next.z});
    }
    return wl;
}

} // namespace mltc
