/**
 * @file
 * Workload container: a scene, its textures and a scripted camera
 * animation — the substitute for the paper's Village (E&S) and City
 * (UCLA) databases driven by the Intel Scene Manager (§3.1).
 */
#ifndef MLTC_WORKLOAD_WORKLOAD_HPP
#define MLTC_WORKLOAD_WORKLOAD_HPP

#include <memory>
#include <string>

#include "scene/camera.hpp"
#include "scene/camera_path.hpp"
#include "scene/scene.hpp"
#include "texture/texture_manager.hpp"

namespace mltc {

/** A complete workload: scene + textures + scripted animation. */
struct Workload
{
    std::string name;
    std::unique_ptr<TextureManager> textures;
    Scene scene;
    CameraPath path;
    int default_frames = 400; ///< paper: 411 (Village) / 525 (City)
    float fovy_degrees = 60.0f;
    float z_near = 0.5f;
    float z_far = 2000.0f;

    /**
     * Camera for frame @p frame of a @p total_frames animation at the
     * given aspect ratio.
     */
    Camera cameraAtFrame(int frame, int total_frames, float aspect) const;
};

} // namespace mltc

#endif // MLTC_WORKLOAD_WORKLOAD_HPP
