#include "workload/workload.hpp"

#include <cmath>

namespace mltc {

Camera
Workload::cameraAtFrame(int frame, int total_frames, float aspect) const
{
    Camera cam(fovy_degrees * 3.14159265358979f / 180.0f, aspect, z_near,
               z_far);
    CameraPose pose = path.atFrame(frame, total_frames);
    cam.lookAt(pose.eye, pose.target);
    return cam;
}

} // namespace mltc
