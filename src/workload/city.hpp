/**
 * @file
 * The procedural City workload.
 *
 * Statistical stand-in for the UCLA City fly-through: a regular downtown
 * grid of towers overflown by a swooping camera. Key properties
 * reproduced (paper Table 1 and §4): each building carries its *own*
 * facade texture (the paper notes the City "does not substantially reuse
 * textures between objects" — only repeats them within an object), depth
 * complexity is moderate (~2), and high altitude gives strong
 * minification, so the per-frame texture footprint is small and drifts
 * very slowly.
 */
#ifndef MLTC_WORKLOAD_CITY_HPP
#define MLTC_WORKLOAD_CITY_HPP

#include <cstdint>

#include "workload/workload.hpp"

namespace mltc {

/** Tunables for the City generator (defaults match the experiments). */
struct CityParams
{
    uint64_t seed = 1998;
    int blocks_x = 10;         ///< building grid
    int blocks_z = 10;
    float block_spacing = 24.0f;
    float footprint = 14.0f;   ///< building base edge
    uint32_t facade_texture_size = 128; ///< per-building facade
    int large_facades = 8;     ///< buildings upgraded to 256^2 facades
    int default_frames = 525;  ///< the paper's City animation length
};

/** Build the City workload. Deterministic in @p params.seed. */
Workload buildCity(const CityParams &params = {});

} // namespace mltc

#endif // MLTC_WORKLOAD_CITY_HPP
