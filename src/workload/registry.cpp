#include "workload/registry.hpp"

#include <stdexcept>

#include "workload/city.hpp"
#include "workload/terrain.hpp"
#include "workload/village.hpp"

namespace mltc {

std::vector<std::string>
workloadNames()
{
    return {"village", "city"};
}

std::vector<std::string>
allWorkloadNames()
{
    return {"village", "city", "terrain"};
}

Workload
buildWorkload(const std::string &name)
{
    if (name == "village")
        return buildVillage();
    if (name == "city")
        return buildCity();
    if (name == "terrain")
        return buildTerrain();
    throw std::invalid_argument("unknown workload: " + name);
}

} // namespace mltc
