#include "workload/terrain.hpp"

#include <cmath>

#include "texture/procedural.hpp"
#include "util/rng.hpp"

namespace mltc {

namespace {

/** Terrain height function: smooth fractal hills. */
float
terrainHeight(float x, float z, float extent, float amplitude,
              uint64_t seed)
{
    // Sample the tiling fractal field in "texel" space.
    float u = (x / extent + 0.5f) * 1024.0f;
    float v = (z / extent + 0.5f) * 1024.0f;
    float n = fractalNoise(static_cast<int32_t>(u), static_cast<int32_t>(v),
                           1024, seed, 5);
    return (n - 0.35f) * amplitude;
}

/**
 * Satellite-style composite image: grass valleys, rocky slopes and
 * snowy peaks driven by the same height field so the texture visually
 * matches the geometry.
 */
Image
makeSatellite(uint32_t size, float extent, float amplitude, uint64_t seed)
{
    Image img(size, size);
    for (uint32_t y = 0; y < size; ++y) {
        for (uint32_t x = 0; x < size; ++x) {
            float wx = (static_cast<float>(x) / static_cast<float>(size) -
                        0.5f) *
                       extent;
            float wz = (static_cast<float>(y) / static_cast<float>(size) -
                        0.5f) *
                       extent;
            float h = terrainHeight(wx, wz, extent, amplitude, seed);
            float t = clampf(h / amplitude + 0.35f, 0.0f, 1.0f);
            float detail = fractalNoise(static_cast<int32_t>(x),
                                        static_cast<int32_t>(y), size,
                                        seed ^ 0x7777ull, 4);
            Vec3 c;
            if (t < 0.45f)
                c = lerp(Vec3{0.16f, 0.38f, 0.12f}, Vec3{0.35f, 0.45f, 0.2f},
                         detail);
            else if (t < 0.75f)
                c = lerp(Vec3{0.45f, 0.4f, 0.33f}, Vec3{0.55f, 0.5f, 0.45f},
                         detail);
            else
                c = lerp(Vec3{0.85f, 0.87f, 0.9f}, Vec3{1.0f, 1.0f, 1.0f},
                         detail);
            auto to8 = [](float v) {
                return static_cast<uint8_t>(clampf(v, 0.0f, 1.0f) * 255.0f);
            };
            img.setTexel(x, y, packRgba(to8(c.x), to8(c.y), to8(c.z)));
        }
    }
    return img;
}

} // namespace

Workload
buildTerrain(const TerrainParams &params)
{
    Workload wl;
    wl.name = "terrain";
    wl.default_frames = params.default_frames;
    wl.z_far = 4000.0f;
    wl.textures = std::make_unique<TextureManager>();
    TextureManager &tm = *wl.textures;
    Rng rng(params.seed);

    TextureId satellite = tm.load(
        "satellite",
        MipPyramid(makeSatellite(params.satellite_texture_size,
                                 params.extent, params.height_amplitude,
                                 params.seed)));
    TextureId rock = tm.load("rock", MipPyramid(makeStone(256, rng.next())));
    TextureId sky = tm.load("sky", MipPyramid(makeSky(512, rng.next())));

    Scene &scene = wl.scene;

    // Heightfield: a displaced grid with the satellite texture mapped
    // exactly once over the whole extent (uv in [0,1] -> no repetition,
    // the texture is never repeated, so nearby terrain cannot share blocks).
    Mesh field = makeGroundGrid(params.extent, params.grid, 1.0f);
    for (auto &v : field.vertices)
        v.position.y = terrainHeight(v.position.x, v.position.z,
                                     params.extent, params.height_amplitude,
                                     params.seed);
    scene.addObject(std::make_shared<Mesh>(std::move(field)),
                    Mat4::identity(), satellite, "terrain");

    // Detail boulders scattered on the slopes.
    auto boulder = std::make_shared<Mesh>(makeBox(6.0f, 4.0f, 5.0f, 0.3f));
    for (int i = 0; i < params.rocks; ++i) {
        float x = rng.uniformf(-params.extent * 0.45f, params.extent * 0.45f);
        float z = rng.uniformf(-params.extent * 0.45f, params.extent * 0.45f);
        float h = terrainHeight(x, z, params.extent, params.height_amplitude,
                                params.seed);
        Mat4 xf = Mat4::translate({x, h - 0.5f, z}) *
                  Mat4::rotateY(rng.uniformf(0.0f, 6.28f));
        scene.addObject(boulder, xf, rock, "rock_" + std::to_string(i));
    }

    // Sky walls.
    {
        float half = params.extent * 0.7f;
        auto wall = std::make_shared<Mesh>(
            makeQuadXY(params.extent * 1.4f, 260.0f, 1.0f, 1.0f));
        struct Placement
        {
            Vec3 pos;
            float yaw;
        } placements[4] = {
            {{0.0f, -30.0f, -half}, 0.0f},
            {{half, -30.0f, 0.0f}, -3.14159265f * 0.5f},
            {{0.0f, -30.0f, half}, 3.14159265f},
            {{-half, -30.0f, 0.0f}, 3.14159265f * 0.5f},
        };
        for (const auto &p : placements)
            scene.addObject(wall,
                            Mat4::translate(p.pos) * Mat4::rotateY(p.yaw),
                            sky, "sky");
    }

    // Terrain-following flight across the diagonal and back along the
    // other diagonal: a wide swath of unique texture enters the view
    // every frame.
    float half = params.extent * 0.42f;
    auto fly = [&](float x, float z, float clearance, float lx, float lz) {
        float h = terrainHeight(x, z, params.extent, params.height_amplitude,
                                params.seed);
        float lh = terrainHeight(lx, lz, params.extent,
                                 params.height_amplitude, params.seed);
        wl.path.addKey({x, h + clearance, z}, {lx, lh + 6.0f, lz});
    };
    fly(-half, -half, 60.0f, 0.0f, 0.0f);
    fly(-half * 0.5f, -half * 0.5f, 35.0f, half * 0.25f, half * 0.25f);
    fly(0.0f, 0.0f, 25.0f, half * 0.5f, half * 0.5f);
    fly(half * 0.5f, half * 0.5f, 30.0f, half, 0.0f);
    fly(half, 0.0f, 40.0f, half * 0.5f, -half * 0.5f);
    fly(half * 0.5f, -half * 0.5f, 30.0f, 0.0f, -half * 0.25f);
    fly(0.0f, -half * 0.4f, 45.0f, -half, half);
    fly(-half * 0.6f, half * 0.4f, 55.0f, -half, half);
    return wl;
}

} // namespace mltc
