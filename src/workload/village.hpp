/**
 * @file
 * The procedural Village workload.
 *
 * Statistical stand-in for the E&S Village walk-through: an eye-level
 * camera loops through a small settlement of textured houses around a
 * central church. Key properties reproduced (paper Table 1 and §4):
 * textures are heavily *shared between objects* (a small pool of wall /
 * roof / ground materials), depth complexity is high (buildings overlap
 * along the view direction, texture-before-z), and the viewpoint moves
 * incrementally so the inter-frame working set drifts slowly.
 */
#ifndef MLTC_WORKLOAD_VILLAGE_HPP
#define MLTC_WORKLOAD_VILLAGE_HPP

#include <cstdint>

#include "workload/workload.hpp"

namespace mltc {

/** Tunables for the Village generator (defaults match the experiments). */
struct VillageParams
{
    uint64_t seed = 42;
    int houses = 96;          ///< houses placed along the streets
    int trees = 220;          ///< billboard trees
    bool fences = true;       ///< low yard walls (adds eye-level overdraw)
    float extent = 280.0f;    ///< ground square edge length (world units)
    uint32_t ground_texture_size = 512;
    uint32_t wall_texture_size = 512;
    int wall_texture_pool = 8; ///< distinct wall materials shared by houses
    int roof_texture_pool = 4;
    int default_frames = 411;  ///< the paper's Village animation length
};

/** Build the Village workload. Deterministic in @p params.seed. */
Workload buildVillage(const VillageParams &params = {});

} // namespace mltc

#endif // MLTC_WORKLOAD_VILLAGE_HPP
