#include "workload/city.hpp"

#include <cmath>

#include "texture/procedural.hpp"
#include "util/rng.hpp"

namespace mltc {

Workload
buildCity(const CityParams &params)
{
    Workload wl;
    wl.name = "city";
    wl.default_frames = params.default_frames;
    wl.z_far = 3000.0f;
    wl.textures = std::make_unique<TextureManager>();
    TextureManager &tm = *wl.textures;
    Rng rng(params.seed);

    const float span_x =
        static_cast<float>(params.blocks_x) * params.block_spacing;
    const float span_z =
        static_cast<float>(params.blocks_z) * params.block_spacing;
    const float extent = std::max(span_x, span_z) * 1.5f;

    // --- Shared infrastructure textures ---------------------------------
    TextureId asphalt = tm.load("asphalt", MipPyramid(makeRoad(256, rng.next())));
    TextureId concrete =
        tm.load("concrete", MipPyramid(makePlaster(256, rng.next())));
    TextureId rooftop =
        tm.load("rooftop", MipPyramid(makeStone(128, rng.next())));
    TextureId sky = tm.load("sky", MipPyramid(makeSky(512, rng.next())));

    Scene &scene = wl.scene;

    // Ground: concrete base with asphalt street grid laid over it.
    auto ground = std::make_shared<Mesh>(
        makeGroundGrid(extent, 8, extent * 0.2f));
    scene.addObject(ground, Mat4::identity(), concrete, "ground");

    auto street_x = std::make_shared<Mesh>(
        makeQuadXZ(span_x * 1.1f, 6.0f, span_x * 0.15f, 1.0f));
    auto street_z = std::make_shared<Mesh>(
        makeQuadXZ(6.0f, span_z * 1.1f, 1.0f, span_z * 0.15f));
    for (int j = 0; j <= params.blocks_z; ++j) {
        float z = (static_cast<float>(j) - 0.5f * params.blocks_z) *
                  params.block_spacing;
        scene.addObject(street_x, Mat4::translate({0.0f, 0.02f, z}), asphalt,
                        "street_x" + std::to_string(j));
    }
    for (int i = 0; i <= params.blocks_x; ++i) {
        float x = (static_cast<float>(i) - 0.5f * params.blocks_x) *
                  params.block_spacing;
        scene.addObject(street_z, Mat4::translate({x, 0.03f, 0.0f}), asphalt,
                        "street_z" + std::to_string(i));
    }

    // --- Buildings: one distinct facade texture per building ------------
    // (the paper observes the City repeats textures within objects but
    // does not share them between objects).
    int total = params.blocks_x * params.blocks_z;
    int big_every = total / std::max(params.large_facades, 1);
    int index = 0;
    for (int j = 0; j < params.blocks_z; ++j) {
        for (int i = 0; i < params.blocks_x; ++i, ++index) {
            float x = (static_cast<float>(i) + 0.5f -
                       0.5f * params.blocks_x) *
                      params.block_spacing;
            float z = (static_cast<float>(j) + 0.5f -
                       0.5f * params.blocks_z) *
                      params.block_spacing;
            float height = rng.uniformf(10.0f, 48.0f);
            // Downtown core: taller towards the center.
            float cx = x / span_x, cz = z / span_z;
            float core = 1.0f - 2.0f * std::sqrt(cx * cx + cz * cz);
            if (core > 0.0f)
                height += core * 42.0f;

            uint32_t stories =
                std::max(2u, static_cast<uint32_t>(height / 3.5f));
            bool big = big_every > 0 && (index % big_every) == 0;
            uint32_t tex_size =
                big ? params.facade_texture_size * 2 : params.facade_texture_size;
            TextureId facade = tm.load(
                "facade_" + std::to_string(index),
                MipPyramid(makeFacade(tex_size, rng.next(),
                                      std::min(stories, 8u), 6)));

            float foot = params.footprint * rng.uniformf(0.8f, 1.05f);
            // Facade wraps once per ~8 world units -> window grid scale.
            auto body = std::make_shared<Mesh>(
                makeBox(foot, height, foot, 1.0f / 8.0f));
            Mat4 xf = Mat4::translate({x, 0.0f, z});
            scene.addObject(body, xf, facade,
                            "building_" + std::to_string(index));

            // Flat roof slab with the shared rooftop texture.
            auto roof = std::make_shared<Mesh>(
                makeQuadXZ(foot, foot, foot * 0.2f, foot * 0.2f));
            scene.addObject(roof, Mat4::translate({x, height + 0.05f, z}),
                            rooftop, "rooftop_" + std::to_string(index));
        }
    }

    // Sky walls (further out and taller for the aerial viewpoint).
    {
        float half = extent * 0.75f;
        auto wall = std::make_shared<Mesh>(
            makeQuadXY(extent * 1.5f, 140.0f, 1.0f, 1.0f));
        struct Placement
        {
            Vec3 pos;
            float yaw;
        } placements[4] = {
            {{0.0f, 0.0f, -half}, 0.0f},
            {{half, 0.0f, 0.0f}, -3.14159265f * 0.5f},
            {{0.0f, 0.0f, half}, 3.14159265f},
            {{-half, 0.0f, 0.0f}, 3.14159265f * 0.5f},
        };
        for (const auto &p : placements)
            scene.addObject(wall,
                            Mat4::translate(p.pos) * Mat4::rotateY(p.yaw),
                            sky, "sky");
    }

    // --- Scripted fly-through --------------------------------------------
    // Swoop in high over one corner, cross the downtown low between the
    // towers, climb out over the opposite corner, circle back.
    float hx = span_x * 0.5f, hz = span_z * 0.5f;
    wl.path.addKey({-hx * 1.6f, 160.0f, -hz * 1.6f}, {0.0f, 0.0f, 0.0f});
    wl.path.addKey({-hx * 1.0f, 110.0f, -hz * 1.0f}, {0.0f, 10.0f, 0.0f});
    wl.path.addKey({-hx * 0.5f, 70.0f, -hz * 0.4f},
                   {hx * 0.3f, 30.0f, hz * 0.3f});
    wl.path.addKey({-4.0f, 50.0f, -hz * 0.1f}, {4.0f, 40.0f, hz * 0.5f});
    wl.path.addKey({4.0f, 42.0f, hz * 0.25f}, {hx * 0.6f, 30.0f, hz * 0.8f});
    wl.path.addKey({hx * 0.5f, 60.0f, hz * 0.6f},
                   {hx * 1.2f, 30.0f, hz * 1.2f});
    wl.path.addKey({hx * 1.1f, 100.0f, hz * 1.1f}, {0.0f, 30.0f, 0.0f});
    wl.path.addKey({hx * 1.5f, 140.0f, 0.0f}, {0.0f, 20.0f, 0.0f});
    wl.path.addKey({hx * 1.1f, 160.0f, -hz * 1.1f}, {0.0f, 10.0f, 0.0f});
    return wl;
}

} // namespace mltc
