/**
 * @file
 * The Terrain workload — a "workload of the future" (paper §6, future
 * work #3).
 *
 * Where the Village and City stress texture *reuse*, Terrain stresses
 * texture *capacity*: one very large, uniquely-mapped satellite texture
 * drapes the whole landscape (no repetition, so block utilisation is
 * below 1 and the inter-frame working set is large), plus a handful of
 * detail materials. A low terrain-following flight keeps a wide swath of
 * the unique texture in view, pushing the working set well past a small
 * L2 and demonstrating where cache capacity starts to matter.
 */
#ifndef MLTC_WORKLOAD_TERRAIN_HPP
#define MLTC_WORKLOAD_TERRAIN_HPP

#include <cstdint>

#include "workload/workload.hpp"

namespace mltc {

/** Tunables for the Terrain generator. */
struct TerrainParams
{
    uint64_t seed = 2001;
    float extent = 1200.0f;      ///< terrain square edge (world units)
    int grid = 48;               ///< heightfield resolution per edge
    float height_amplitude = 55.0f;
    uint32_t satellite_texture_size = 2048; ///< the unique base texture
    int rocks = 40;              ///< detail boulders
    int default_frames = 450;
};

/** Build the Terrain workload. Deterministic in @p params.seed. */
Workload buildTerrain(const TerrainParams &params = {});

} // namespace mltc

#endif // MLTC_WORKLOAD_TERRAIN_HPP
