/**
 * @file
 * Binary texel-access trace recording and replay.
 *
 * Lets a workload be rasterized once and the resulting access stream be
 * replayed into any number of cache configurations later (trace-driven
 * simulation, as the paper's methodology is). Traces of full animations
 * are large, so this is primarily used for short test clips and for
 * decoupling unit tests from the rasterizer.
 */
#ifndef MLTC_TRACE_TRACE_IO_HPP
#define MLTC_TRACE_TRACE_IO_HPP

#include <cstdint>
#include <cstdio>
#include <string>

#include "raster/access_sink.hpp"

namespace mltc {

/** Sink that serialises the access stream to a file. */
class TraceWriter final : public TexelAccessSink
{
  public:
    /** Open @p path; throws std::runtime_error on failure. */
    explicit TraceWriter(const std::string &path);
    ~TraceWriter() override;

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    void bindTexture(TextureId tid) override;
    void access(uint32_t x, uint32_t y, uint32_t mip) override;

    /** Mark a frame boundary. */
    void endFrame();

    /** Flush and close (also done by the destructor). */
    void close();

  private:
    std::FILE *file_ = nullptr;
};

/** Replays a recorded trace into a sink. */
class TraceReader
{
  public:
    /** Open @p path; throws std::runtime_error on failure or bad magic. */
    explicit TraceReader(const std::string &path);
    ~TraceReader();

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    /**
     * Replay events into @p sink until the next frame boundary or end of
     * trace.
     * @return true when a frame was delivered, false at end of trace.
     */
    bool replayFrame(TexelAccessSink &sink);

    /** Replay the whole trace; @return number of frames delivered. */
    uint64_t replayAll(TexelAccessSink &sink);

  private:
    std::FILE *file_ = nullptr;
};

} // namespace mltc

#endif // MLTC_TRACE_TRACE_IO_HPP
