/**
 * @file
 * Binary texel-access trace recording and replay.
 *
 * Lets a workload be rasterized once and the resulting access stream be
 * replayed into any number of cache configurations later (trace-driven
 * simulation, as the paper's methodology is). Traces of full animations
 * are large, so this is primarily used for short test clips and for
 * decoupling unit tests from the rasterizer.
 */
#ifndef MLTC_TRACE_TRACE_IO_HPP
#define MLTC_TRACE_TRACE_IO_HPP

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>

#include "raster/access_sink.hpp"

namespace mltc {

/**
 * Sink that serialises the access stream to a file.
 *
 * Every write is checked: a full disk or a vanished file throws a typed
 * mltc::Exception (ErrorCode::Io) at the offending event rather than
 * silently producing a truncated trace. Call close() before relying on
 * the file — it reports fclose failure; the destructor only closes
 * best-effort.
 */
class TraceWriter final : public TexelAccessSink
{
  public:
    /** Open @p path; throws mltc::Exception (Io) on failure. */
    explicit TraceWriter(const std::string &path);
    ~TraceWriter() override;

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    void bindTexture(TextureId tid) override;
    void access(uint32_t x, uint32_t y, uint32_t mip) override;

    /** Mark a frame boundary. */
    void endFrame();

    /**
     * Flush and close; throws mltc::Exception (Io) when fclose reports
     * failure. The destructor closes silently instead.
     */
    void close();

  private:
    std::FILE *file_ = nullptr;
};

/**
 * Replays a recorded trace into a sink.
 *
 * Malformed input (truncated records, unknown opcodes, bad header) is
 * rejected with a typed mltc::Exception naming the offending offset or
 * opcode — never a crash, hang or silent misparse. mltc::Exception
 * derives std::runtime_error, so existing catch sites keep working.
 */
class TraceReader
{
  public:
    /**
     * Open @p path; throws mltc::Exception (Io / Truncated / BadMagic)
     * on failure, without leaking the handle.
     */
    explicit TraceReader(const std::string &path);
    ~TraceReader();

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    /**
     * Replay events into @p sink until the next frame boundary or end of
     * trace. When batchedAccess() is on, runs of access ops between
     * binds are delivered through accessBatch() (same event sequence).
     * @return true when a frame was delivered, false at end of trace.
     */
    bool replayFrame(TexelAccessSink &sink);

    /** Replay the whole trace; @return number of frames delivered. */
    uint64_t replayAll(TexelAccessSink &sink);

  private:
    /** Max refs buffered per accessBatch() call during batched replay. */
    static constexpr size_t kReplayBatchCap = 4096;

    std::FILE *file_ = nullptr;
};

} // namespace mltc

#endif // MLTC_TRACE_TRACE_IO_HPP
