/**
 * @file
 * Open-addressing hash set of 64-bit keys, tuned for the access-trace
 * hot path: tens of millions of inserts per frame with O(1) clearing.
 *
 * Clearing uses epoch stamping (no memset of the key array), and probing
 * is linear with a strong 64-bit mix, so per-frame reuse is cheap.
 */
#ifndef MLTC_TRACE_FLAT_SET_HPP
#define MLTC_TRACE_FLAT_SET_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/serializer.hpp"

namespace mltc {

/** Insert-only hash set of uint64 keys with epoch-based clear. */
class FlatSet64
{
  public:
    /** @param initial_capacity rounded up to a power of two (>= 64). */
    explicit FlatSet64(size_t initial_capacity = 1024)
    {
        size_t cap = 64;
        while (cap < initial_capacity)
            cap <<= 1;
        keys_.resize(cap);
        epochs_.resize(cap, 0);
        mask_ = cap - 1;
    }

    /** Number of keys inserted since the last clear(). */
    size_t size() const { return size_; }

    /** Remove all keys in O(1) (amortised; epoch wrap handled). */
    void
    clear()
    {
        ++epoch_;
        size_ = 0;
        if (epoch_ == 0) { // wrapped: hard reset the stamps
            std::fill(epochs_.begin(), epochs_.end(), 0);
            epoch_ = 1;
        }
    }

    /**
     * Insert @p key.
     * @return true when the key was not already present.
     */
    bool
    insert(uint64_t key)
    {
        if (size_ + (size_ >> 2) >= capacity())
            grow();
        size_t i = mix(key) & mask_;
        while (epochs_[i] == epoch_) {
            if (keys_[i] == key)
                return false;
            i = (i + 1) & mask_;
        }
        keys_[i] = key;
        epochs_[i] = epoch_;
        ++size_;
        return true;
    }

    /** True when @p key is present. */
    bool
    contains(uint64_t key) const
    {
        size_t i = mix(key) & mask_;
        while (epochs_[i] == epoch_) {
            if (keys_[i] == key)
                return true;
            i = (i + 1) & mask_;
        }
        return false;
    }

    /** Apply @p fn to every key currently in the set. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (size_t i = 0; i < keys_.size(); ++i)
            if (epochs_[i] == epoch_)
                fn(keys_[i]);
    }

    /** Current bucket capacity. */
    size_t capacity() const { return keys_.size(); }

    /**
     * Serialize the member keys (count + key list). The bucket layout is
     * not captured: load() re-inserts, which is order-independent for a
     * set, so round-tripping preserves contents exactly.
     */
    void
    save(SnapshotWriter &w) const
    {
        w.u64(size_);
        forEach([&](uint64_t k) { w.u64(k); });
    }

    /** Replace contents with the keys captured by save(). */
    void
    load(SnapshotReader &r)
    {
        clear();
        const uint64_t n = r.u64();
        for (uint64_t i = 0; i < n; ++i)
            insert(r.u64());
    }

  private:
    static size_t
    mix(uint64_t key)
    {
        key ^= key >> 33;
        key *= 0xff51afd7ed558ccdull;
        key ^= key >> 33;
        return static_cast<size_t>(key);
    }

    void
    grow()
    {
        FlatSet64 bigger(capacity() * 2);
        forEach([&](uint64_t k) { bigger.insert(k); });
        *this = std::move(bigger);
    }

    std::vector<uint64_t> keys_;
    std::vector<uint32_t> epochs_;
    size_t mask_ = 0;
    size_t size_ = 0;
    uint32_t epoch_ = 1;
};

} // namespace mltc

#endif // MLTC_TRACE_FLAT_SET_HPP
