#include "trace/working_set_collector.hpp"

#include <string>

#include "util/error.hpp"

namespace mltc {

WorkingSetCollector::WorkingSetCollector(TextureManager &textures,
                                         std::vector<uint32_t> l2_tiles,
                                         std::vector<uint32_t> l1_tiles)
    : textures_(textures)
{
    for (uint32_t t : l2_tiles) {
        Tracker tr;
        tr.tile = t;
        tr.is_l2 = true;
        trackers_.push_back(std::move(tr));
    }
    for (uint32_t t : l1_tiles) {
        Tracker tr;
        tr.tile = t;
        tr.is_l2 = false;
        trackers_.push_back(std::move(tr));
    }
}

void
WorkingSetCollector::rebindLayouts()
{
    if (bound_ == 0)
        return;
    for (auto &tr : trackers_) {
        // L2 trackers tile by the L2 size (L1 granularity is irrelevant
        // for block counting); L1 trackers use the paper's fixed 16x16
        // L2 granulation with the tracked L1 tile.
        TileSpec spec = tr.is_l2 ? TileSpec{tr.tile, 4}
                                 : TileSpec{16, tr.tile};
        if (spec.l1_tile > spec.l2_tile)
            spec.l2_tile = spec.l1_tile;
        tr.layout = &textures_.layout(bound_, spec);
    }
}

void
WorkingSetCollector::bindTexture(TextureId tid)
{
    bound_ = tid;
    rebindLayouts();
    for (auto &tr : trackers_)
        tr.last_key = ~0ull;
    if (textures_this_frame_.insert(tid))
        push_bytes_ += textures_.texture(tid).hostBytes();
}

void
WorkingSetCollector::access(uint32_t x, uint32_t y, uint32_t mip)
{
    ++pixel_refs_;
    recordTexel(x, y, mip);
}

void
WorkingSetCollector::accessQuad(uint32_t x0, uint32_t y0, uint32_t x1,
                                uint32_t y1, uint32_t mip)
{
    pixel_refs_ += 4;
    // Every tracked tile size is >= 4 texels, so corners sharing a 4x4
    // cell share every tracked block; record the distinct corners only.
    const bool dx = (x0 >> 2) != (x1 >> 2);
    const bool dy = (y0 >> 2) != (y1 >> 2);
    recordTexel(x0, y0, mip);
    if (dx)
        recordTexel(x1, y0, mip);
    if (dy) {
        recordTexel(x0, y1, mip);
        if (dx)
            recordTexel(x1, y1, mip);
    }
}

void
WorkingSetCollector::recordTexel(uint32_t x, uint32_t y, uint32_t mip)
{
    for (auto &tr : trackers_) {
        uint64_t key = tr.layout->blockKeyOf(bound_, x, y, mip);
        if (tr.is_l2)
            key = l2KeyOf(key);
        if (key == tr.last_key)
            continue; // spatially coherent fast path
        tr.last_key = key;
        tr.current.insert(key);
    }
}

FrameWorkingSet
WorkingSetCollector::endFrame()
{
    FrameWorkingSet out;
    out.pixel_refs = pixel_refs_;
    out.textures_touched = textures_this_frame_.size();
    out.push_bytes = push_bytes_;
    out.loaded_bytes = textures_.totalHostBytes();

    for (auto &tr : trackers_) {
        uint64_t total = tr.current.size();
        uint64_t fresh = 0;
        tr.current.forEach([&](uint64_t k) {
            if (!tr.previous.contains(k))
                ++fresh;
        });
        if (tr.is_l2)
            out.l2.push_back({tr.tile, total, fresh});
        else
            out.l1.push_back({tr.tile, total, fresh});

        std::swap(tr.current, tr.previous);
        tr.current.clear();
        tr.last_key = ~0ull;
    }

    textures_this_frame_.clear();
    pixel_refs_ = 0;
    push_bytes_ = 0;
    return out;
}

namespace {
constexpr uint32_t kWscTag = snapTag("WSC ");
} // namespace

void
WorkingSetCollector::save(SnapshotWriter &w) const
{
    w.section(kWscTag);
    w.u32(static_cast<uint32_t>(trackers_.size()));
    for (const auto &tr : trackers_) {
        w.u32(tr.tile);
        w.u8(tr.is_l2 ? 1 : 0);
        w.u64(tr.last_key);
        tr.current.save(w);
        tr.previous.save(w);
    }
    textures_this_frame_.save(w);
    w.u64(pixel_refs_);
    w.u64(push_bytes_);
    w.u32(bound_);
}

void
WorkingSetCollector::load(SnapshotReader &r)
{
    r.expectSection(kWscTag, "WorkingSetCollector");
    const uint32_t count = r.u32();
    if (count != trackers_.size())
        throw Exception(ErrorCode::VersionMismatch,
                        "WorkingSetCollector: snapshot tracks " +
                            std::to_string(count) +
                            " tile sizes, configured " +
                            std::to_string(trackers_.size()));
    for (auto &tr : trackers_) {
        const uint32_t tile = r.u32();
        const uint8_t is_l2 = r.u8();
        if (tile != tr.tile || (is_l2 != 0) != tr.is_l2)
            throw Exception(ErrorCode::VersionMismatch,
                            "WorkingSetCollector: snapshot tile size " +
                                std::to_string(tile) +
                                " does not match configured " +
                                std::to_string(tr.tile));
        tr.last_key = r.u64();
        tr.current.load(r);
        tr.previous.load(r);
    }
    textures_this_frame_.load(r);
    pixel_refs_ = r.u64();
    push_bytes_ = r.u64();
    bound_ = r.u32();
    rebindLayouts();
}

} // namespace mltc
