/**
 * @file
 * Per-frame texture working-set statistics (paper §3.2 and §4.2).
 *
 * Attached to the rasterizer's access stream, the collector tracks, for
 * each configured L2 tile size, the set of L2 blocks touched this frame
 * (total and new versus the previous frame), and for each configured L1
 * tile size the set of L1 tiles touched (total and new). It also tracks
 * the set of textures referenced (for the push-architecture minimum
 * memory) and the raw pixel reference count (for depth complexity and
 * block utilisation).
 *
 * These are exactly the quantities behind the paper's Figures 4, 5 and 6
 * and Table 1.
 */
#ifndef MLTC_TRACE_WORKING_SET_COLLECTOR_HPP
#define MLTC_TRACE_WORKING_SET_COLLECTOR_HPP

#include <cstdint>
#include <vector>

#include "raster/access_sink.hpp"
#include "texture/texture_manager.hpp"
#include "trace/flat_set.hpp"

namespace mltc {

/** Per-frame L2 block-touch statistics for one L2 tile size. */
struct L2WorkingSet
{
    uint32_t l2_tile = 16;
    uint64_t blocks_touched = 0;
    uint64_t blocks_new = 0; ///< touched this frame but not the previous

    /** Bytes at 32-bit cached texels. */
    uint64_t
    bytesTouched() const
    {
        return blocks_touched * l2_tile * l2_tile * 4;
    }

    uint64_t
    bytesNew() const
    {
        return blocks_new * l2_tile * l2_tile * 4;
    }
};

/** Per-frame L1 tile-touch statistics for one L1 tile size. */
struct L1WorkingSet
{
    uint32_t l1_tile = 4;
    uint64_t tiles_touched = 0;
    uint64_t tiles_new = 0;

    /**
     * Minimum download bytes for the pull architecture: every tile hit
     * at least once must be fetched at least once (32-bit texels).
     */
    uint64_t
    bytesTouched() const
    {
        return tiles_touched * l1_tile * l1_tile * 4;
    }

    /** Minimum download bytes with a perfect L2 cache (new tiles only). */
    uint64_t
    bytesNew() const
    {
        return tiles_new * l1_tile * l1_tile * 4;
    }
};

/** Everything measured for one frame. */
struct FrameWorkingSet
{
    uint64_t pixel_refs = 0;      ///< texel references this frame
    uint64_t textures_touched = 0;
    uint64_t push_bytes = 0;      ///< whole-texture bytes touched (original depth)
    uint64_t loaded_bytes = 0;    ///< all textures resident in host memory
    std::vector<L2WorkingSet> l2; ///< one entry per configured L2 tile size
    std::vector<L1WorkingSet> l1; ///< one entry per configured L1 tile size

    /**
     * Block utilisation for L2 entry @p idx: texel references divided by
     * texels covered by touched blocks (>1 means texel reuse, §4.1).
     */
    double
    utilization(size_t idx) const
    {
        const auto &ws = l2[idx];
        uint64_t texels = ws.blocks_touched * ws.l2_tile * ws.l2_tile;
        return texels ? static_cast<double>(pixel_refs) /
                            static_cast<double>(texels)
                      : 0.0;
    }
};

/**
 * Access-stream statistics collector. Feed a frame's accesses, then call
 * endFrame() to harvest the numbers and roll the frame boundary.
 */
class WorkingSetCollector final : public TexelAccessSink
{
  public:
    /**
     * @param textures texture registry (layouts are built through it)
     * @param l2_tiles L2 tile sizes to track (e.g. {8, 16, 32})
     * @param l1_tiles L1 tile sizes to track (e.g. {4, 8})
     */
    WorkingSetCollector(TextureManager &textures,
                        std::vector<uint32_t> l2_tiles,
                        std::vector<uint32_t> l1_tiles);

    void bindTexture(TextureId tid) override;
    void access(uint32_t x, uint32_t y, uint32_t mip) override;
    void accessQuad(uint32_t x0, uint32_t y0, uint32_t x1, uint32_t y1,
                    uint32_t mip) override;

    /** Harvest this frame's statistics and start the next frame. */
    FrameWorkingSet endFrame();

    /** Serialize tracker sets, per-frame accumulators and bound state. */
    void save(SnapshotWriter &w) const;

    /**
     * Restore state captured by save().
     * @throws mltc::Exception (VersionMismatch) when the tracked tile
     *         sizes differ from the snapshot's.
     */
    void load(SnapshotReader &r);

  private:
    /** Record one texel in every tracker (no pixel_refs update). */
    void recordTexel(uint32_t x, uint32_t y, uint32_t mip);

    /**
     * Re-derive the trackers' layout pointers for the bound texture.
     * Pure (no per-frame side effects), so load() can call it without
     * double-counting the bind in textures_this_frame_/push_bytes_.
     */
    void rebindLayouts();

    struct Tracker
    {
        uint32_t tile = 0;
        bool is_l2 = false;            ///< count L2 blocks vs full L1 keys
        const TiledLayout *layout = nullptr; ///< for the bound texture
        uint64_t last_key = ~0ull;     ///< spatial-coherence fast path
        FlatSet64 current{1 << 14};
        FlatSet64 previous{1 << 14};
    };

    TextureManager &textures_;
    std::vector<Tracker> trackers_;
    FlatSet64 textures_this_frame_{256};
    uint64_t pixel_refs_ = 0;
    uint64_t push_bytes_ = 0;
    TextureId bound_ = 0;
};

} // namespace mltc

#endif // MLTC_TRACE_WORKING_SET_COLLECTOR_HPP
