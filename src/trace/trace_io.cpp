#include "trace/trace_io.hpp"

#include <cstring>
#include <vector>

#include "util/error.hpp"

namespace mltc {

namespace {

constexpr char kMagic[8] = {'M', 'L', 'T', 'C', 'T', 'R', 'C', '1'};

enum Opcode : uint8_t { kBind = 1, kAccess = 2, kEndFrame = 3 };

void
writeU32(std::FILE *f, uint32_t v)
{
    if (std::fwrite(&v, sizeof(v), 1, f) != 1)
        throw Exception(ErrorCode::Io, "TraceWriter: short write");
}

void
writeOp(std::FILE *f, uint8_t op)
{
    if (std::fwrite(&op, 1, 1, f) != 1)
        throw Exception(ErrorCode::Io, "TraceWriter: short write");
}

bool
readU32(std::FILE *f, uint32_t &v)
{
    return std::fread(&v, sizeof(v), 1, f) == 1;
}

std::string
offsetOf(std::FILE *f)
{
    const long pos = std::ftell(f);
    return pos < 0 ? std::string("?") : std::to_string(pos);
}

} // namespace

TraceWriter::TraceWriter(const std::string &path)
    : file_(std::fopen(path.c_str(), "wb"))
{
    if (!file_)
        throw Exception(ErrorCode::Io, "TraceWriter: cannot open " + path);
    if (std::fwrite(kMagic, sizeof(kMagic), 1, file_) != 1) {
        std::fclose(file_);
        file_ = nullptr;
        throw Exception(ErrorCode::Io,
                        "TraceWriter: header write failed for " + path);
    }
}

TraceWriter::~TraceWriter()
{
    // Best-effort: destructors must not throw. Call close() explicitly
    // to learn about flush failures (truncated traces fail loudly).
    if (file_) {
        std::fclose(file_);
        file_ = nullptr;
    }
}

void
TraceWriter::close()
{
    if (!file_)
        return;
    std::FILE *f = file_;
    file_ = nullptr;
    if (std::fclose(f) != 0)
        throw Exception(ErrorCode::Io,
                        "TraceWriter: close failed (trace truncated?)");
}

void
TraceWriter::bindTexture(TextureId tid)
{
    writeOp(file_, kBind);
    writeU32(file_, tid);
}

void
TraceWriter::access(uint32_t x, uint32_t y, uint32_t mip)
{
    writeOp(file_, kAccess);
    writeU32(file_, x);
    writeU32(file_, y);
    writeU32(file_, mip);
}

void
TraceWriter::endFrame()
{
    writeOp(file_, kEndFrame);
}

TraceReader::TraceReader(const std::string &path)
    : file_(std::fopen(path.c_str(), "rb"))
{
    if (!file_)
        throw Exception(ErrorCode::Io, "TraceReader: cannot open " + path);
    char magic[8];
    // Close before throwing: a throwing constructor never runs the
    // destructor, so the handle would leak otherwise.
    if (std::fread(magic, sizeof(magic), 1, file_) != 1) {
        std::fclose(file_);
        file_ = nullptr;
        throw Exception(ErrorCode::Truncated,
                        "TraceReader: truncated header in " + path);
    }
    if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
        std::fclose(file_);
        file_ = nullptr;
        throw Exception(ErrorCode::BadMagic,
                        "TraceReader: bad magic in " + path);
    }
}

TraceReader::~TraceReader()
{
    if (file_)
        std::fclose(file_);
}

bool
TraceReader::replayFrame(TexelAccessSink &sink)
{
    // Runs of kAccess ops are buffered into one accessBatch() call; the
    // buffer is drained before every bind (batches never span a texture
    // binding) and at end of frame, so the sink observes the exact same
    // event sequence as the scalar replay.
    const bool batched = batchedAccess();
    std::vector<TexelRef> batch;
    if (batched)
        batch.reserve(kReplayBatchCap);
    auto flush = [&] {
        if (!batch.empty()) {
            sink.accessBatch(batch);
            batch.clear();
        }
    };

    bool any = false;
    uint8_t op = 0;
    while (true) {
        const std::string at = offsetOf(file_);
        if (std::fread(&op, 1, 1, file_) != 1)
            break;
        any = true;
        switch (op) {
          case kBind: {
            uint32_t tid;
            if (!readU32(file_, tid))
                throw Exception(ErrorCode::Truncated,
                                "TraceReader: truncated bind at offset " +
                                    at);
            flush();
            sink.bindTexture(tid);
            break;
          }
          case kAccess: {
            uint32_t x, y, mip;
            if (!readU32(file_, x) || !readU32(file_, y) ||
                !readU32(file_, mip))
                throw Exception(ErrorCode::Truncated,
                                "TraceReader: truncated access at offset " +
                                    at);
            if (batched) {
                batch.push_back(TexelRef::texel(x, y, mip));
                if (batch.size() >= kReplayBatchCap)
                    flush();
            } else {
                sink.access(x, y, mip);
            }
            break;
          }
          case kEndFrame:
            flush();
            return true;
          default:
            throw Exception(ErrorCode::BadOpcode,
                            "TraceReader: bad opcode " +
                                std::to_string(op) + " at offset " + at);
        }
    }
    flush();
    return any;
}

uint64_t
TraceReader::replayAll(TexelAccessSink &sink)
{
    uint64_t frames = 0;
    while (replayFrame(sink))
        ++frames;
    return frames;
}

} // namespace mltc
