#include "trace/trace_io.hpp"

#include <cstring>
#include <stdexcept>

namespace mltc {

namespace {

constexpr char kMagic[8] = {'M', 'L', 'T', 'C', 'T', 'R', 'C', '1'};

enum Opcode : uint8_t { kBind = 1, kAccess = 2, kEndFrame = 3 };

void
writeU32(std::FILE *f, uint32_t v)
{
    if (std::fwrite(&v, sizeof(v), 1, f) != 1)
        throw std::runtime_error("trace write failed");
}

bool
readU32(std::FILE *f, uint32_t &v)
{
    return std::fread(&v, sizeof(v), 1, f) == 1;
}

} // namespace

TraceWriter::TraceWriter(const std::string &path)
    : file_(std::fopen(path.c_str(), "wb"))
{
    if (!file_)
        throw std::runtime_error("TraceWriter: cannot open " + path);
    if (std::fwrite(kMagic, sizeof(kMagic), 1, file_) != 1)
        throw std::runtime_error("TraceWriter: header write failed");
}

TraceWriter::~TraceWriter()
{
    close();
}

void
TraceWriter::close()
{
    if (file_) {
        std::fclose(file_);
        file_ = nullptr;
    }
}

void
TraceWriter::bindTexture(TextureId tid)
{
    uint8_t op = kBind;
    std::fwrite(&op, 1, 1, file_);
    writeU32(file_, tid);
}

void
TraceWriter::access(uint32_t x, uint32_t y, uint32_t mip)
{
    uint8_t op = kAccess;
    std::fwrite(&op, 1, 1, file_);
    writeU32(file_, x);
    writeU32(file_, y);
    writeU32(file_, mip);
}

void
TraceWriter::endFrame()
{
    uint8_t op = kEndFrame;
    std::fwrite(&op, 1, 1, file_);
}

TraceReader::TraceReader(const std::string &path)
    : file_(std::fopen(path.c_str(), "rb"))
{
    if (!file_)
        throw std::runtime_error("TraceReader: cannot open " + path);
    char magic[8];
    if (std::fread(magic, sizeof(magic), 1, file_) != 1 ||
        std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        throw std::runtime_error("TraceReader: bad magic in " + path);
}

TraceReader::~TraceReader()
{
    if (file_)
        std::fclose(file_);
}

bool
TraceReader::replayFrame(TexelAccessSink &sink)
{
    bool any = false;
    uint8_t op = 0;
    while (std::fread(&op, 1, 1, file_) == 1) {
        any = true;
        switch (op) {
          case kBind: {
            uint32_t tid;
            if (!readU32(file_, tid))
                throw std::runtime_error("TraceReader: truncated bind");
            sink.bindTexture(tid);
            break;
          }
          case kAccess: {
            uint32_t x, y, mip;
            if (!readU32(file_, x) || !readU32(file_, y) ||
                !readU32(file_, mip))
                throw std::runtime_error("TraceReader: truncated access");
            sink.access(x, y, mip);
            break;
          }
          case kEndFrame:
            return true;
          default:
            throw std::runtime_error("TraceReader: bad opcode");
        }
    }
    return any;
}

uint64_t
TraceReader::replayAll(TexelAccessSink &sink)
{
    uint64_t frames = 0;
    while (replayFrame(sink))
        ++frames;
    return frames;
}

} // namespace mltc
