/**
 * @file
 * Binary PPM (P6) image output so the examples can dump rendered frames
 * (the paper's Figure 12 snapshots) without any external image library.
 */
#ifndef MLTC_UTIL_PPM_HPP
#define MLTC_UTIL_PPM_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace mltc {

/**
 * Write a 24-bit PPM. @p rgba holds width*height packed 0xAABBGGRR
 * (little-endian byte order R,G,B,A) pixels, row-major, top row first.
 * @return true on success.
 */
bool writePpm(const std::string &path, int width, int height,
              const std::vector<uint32_t> &rgba);

} // namespace mltc

#endif // MLTC_UTIL_PPM_HPP
