#include "util/serializer.hpp"

#include <cstdio>
#include <cstring>

#include <unistd.h>

#include "util/error.hpp"
#include "util/io.hpp"
#include "util/log.hpp"

namespace mltc {

namespace {

constexpr char kMagic[8] = {'M', 'L', 'T', 'C', 'S', 'N', 'P', '1'};

/** Header: magic, version, payload length, payload CRC32. */
constexpr size_t kHeaderSize = sizeof(kMagic) + 4 + 8 + 4;

void
putU32(std::vector<uint8_t> &out, uint32_t v)
{
    out.push_back(static_cast<uint8_t>(v));
    out.push_back(static_cast<uint8_t>(v >> 8));
    out.push_back(static_cast<uint8_t>(v >> 16));
    out.push_back(static_cast<uint8_t>(v >> 24));
}

void
putU64(std::vector<uint8_t> &out, uint64_t v)
{
    putU32(out, static_cast<uint32_t>(v));
    putU32(out, static_cast<uint32_t>(v >> 32));
}

uint32_t
getU32(const uint8_t *p)
{
    return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
           static_cast<uint32_t>(p[2]) << 16 |
           static_cast<uint32_t>(p[3]) << 24;
}

uint64_t
getU64(const uint8_t *p)
{
    return static_cast<uint64_t>(getU32(p)) |
           static_cast<uint64_t>(getU32(p + 4)) << 32;
}

std::string
tagName(uint32_t tag)
{
    std::string s;
    for (int i = 0; i < 4; ++i) {
        char c = static_cast<char>((tag >> (8 * i)) & 0xff);
        s += (c >= 32 && c < 127) ? c : '?';
    }
    return s;
}

} // namespace

uint32_t
crc32(const void *data, size_t size, uint32_t seed)
{
    // IEEE 802.3 reflected polynomial, nibble-at-a-time (no 1 KB table).
    static const uint32_t nibble[16] = {
        0x00000000, 0x1db71064, 0x3b6e20c8, 0x26d930ac,
        0x76dc4190, 0x6b6b51f4, 0x4db26158, 0x5005713c,
        0xedb88320, 0xf00f9344, 0xd6d6a3e8, 0xcb61b38c,
        0x9b64c2b0, 0x86d3d2d4, 0xa00ae278, 0xbdbdf21c};
    uint32_t crc = ~seed;
    const uint8_t *p = static_cast<const uint8_t *>(data);
    for (size_t i = 0; i < size; ++i) {
        crc ^= p[i];
        crc = (crc >> 4) ^ nibble[crc & 0xf];
        crc = (crc >> 4) ^ nibble[crc & 0xf];
    }
    return ~crc;
}

void
SnapshotWriter::u32(uint32_t v)
{
    putU32(payload_, v);
}

void
SnapshotWriter::u64(uint64_t v)
{
    putU64(payload_, v);
}

void
SnapshotWriter::f64(double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
}

void
SnapshotWriter::str(const std::string &s)
{
    u32(static_cast<uint32_t>(s.size()));
    payload_.insert(payload_.end(), s.begin(), s.end());
}

void
SnapshotWriter::u8Vec(const std::vector<uint8_t> &v)
{
    u64(v.size());
    payload_.insert(payload_.end(), v.begin(), v.end());
}

void
SnapshotWriter::u32Vec(const std::vector<uint32_t> &v)
{
    u64(v.size());
    for (uint32_t x : v)
        u32(x);
}

void
SnapshotWriter::u64Vec(const std::vector<uint64_t> &v)
{
    u64(v.size());
    for (uint64_t x : v)
        u64(x);
}

void
SnapshotWriter::finish()
{
    std::vector<uint8_t> image;
    image.reserve(kHeaderSize + payload_.size());
    image.insert(image.end(), kMagic, kMagic + sizeof(kMagic));
    putU32(image, kSnapshotVersion);
    putU64(image, payload_.size());
    putU32(image, crc32(payload_.data(), payload_.size()));
    image.insert(image.end(), payload_.begin(), payload_.end());

    AtomicWriteOptions opts;
    opts.keep_previous = keep_previous_;
    opts.durable = true;
    atomicWriteFile(path_, image.data(), image.size(), opts);
}

SnapshotReader::SnapshotReader(const std::string &path) : name_(path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        throw Exception(ErrorCode::Io,
                        "SnapshotReader: cannot open " + path);
    std::vector<uint8_t> bytes;
    // Close before any throw: a throwing constructor never runs the
    // destructor, so the handle would leak otherwise.
    if (std::fseek(f, 0, SEEK_END) != 0) {
        std::fclose(f);
        throw Exception(ErrorCode::Io,
                        "SnapshotReader: cannot seek in " + path);
    }
    const long end = std::ftell(f);
    if (end < 0) {
        std::fclose(f);
        throw Exception(ErrorCode::Io,
                        "SnapshotReader: cannot tell in " + path);
    }
    std::fseek(f, 0, SEEK_SET);
    bytes.resize(static_cast<size_t>(end));
    if (!bytes.empty() &&
        std::fread(bytes.data(), 1, bytes.size(), f) != bytes.size()) {
        std::fclose(f);
        throw Exception(ErrorCode::Io,
                        "SnapshotReader: short read from " + path);
    }
    std::fclose(f);
    validate(bytes.data(), bytes.size());
}

SnapshotReader::SnapshotReader(const uint8_t *data, size_t size,
                               std::string name)
    : name_(std::move(name))
{
    validate(data, size);
}

void
SnapshotReader::validate(const uint8_t *data, size_t size)
{
    if (size < kHeaderSize)
        throw Exception(ErrorCode::Truncated,
                        "snapshot " + name_ + ": " + std::to_string(size) +
                            " bytes, shorter than the " +
                            std::to_string(kHeaderSize) + "-byte header");
    if (std::memcmp(data, kMagic, sizeof(kMagic)) != 0)
        throw Exception(ErrorCode::BadMagic,
                        "snapshot " + name_ + ": bad magic");
    const uint32_t version = getU32(data + 8);
    if (version != kSnapshotVersion)
        throw Exception(ErrorCode::VersionMismatch,
                        "snapshot " + name_ + ": version " +
                            std::to_string(version) + ", expected " +
                            std::to_string(kSnapshotVersion));
    const uint64_t len = getU64(data + 12);
    if (len != size - kHeaderSize)
        throw Exception(ErrorCode::Truncated,
                        "snapshot " + name_ + ": payload length " +
                            std::to_string(len) + " but " +
                            std::to_string(size - kHeaderSize) +
                            " bytes present");
    const uint32_t want_crc = getU32(data + 20);
    const uint32_t got_crc = crc32(data + kHeaderSize, len);
    if (want_crc != got_crc)
        throw Exception(ErrorCode::Corrupt,
                        "snapshot " + name_ + ": CRC mismatch (stored " +
                            std::to_string(want_crc) + ", computed " +
                            std::to_string(got_crc) + ")");
    payload_.assign(data + kHeaderSize, data + size);
}

void
SnapshotReader::need(size_t bytes, const char *what)
{
    if (remaining() < bytes)
        throw Exception(ErrorCode::Truncated,
                        "snapshot " + name_ + ": truncated " + what +
                            " at payload offset " + std::to_string(cursor_));
}

uint8_t
SnapshotReader::u8()
{
    need(1, "u8");
    return payload_[cursor_++];
}

uint32_t
SnapshotReader::u32()
{
    need(4, "u32");
    uint32_t v = getU32(payload_.data() + cursor_);
    cursor_ += 4;
    return v;
}

uint64_t
SnapshotReader::u64()
{
    need(8, "u64");
    uint64_t v = getU64(payload_.data() + cursor_);
    cursor_ += 8;
    return v;
}

double
SnapshotReader::f64()
{
    uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::string
SnapshotReader::str()
{
    const uint32_t len = u32();
    need(len, "string");
    std::string s(reinterpret_cast<const char *>(payload_.data() + cursor_),
                  len);
    cursor_ += len;
    return s;
}

void
SnapshotReader::u8Vec(std::vector<uint8_t> &out)
{
    const uint64_t n = u64();
    need(n, "u8 vector"); // bounds length before allocating
    out.assign(payload_.begin() + static_cast<long>(cursor_),
               payload_.begin() + static_cast<long>(cursor_ + n));
    cursor_ += n;
}

void
SnapshotReader::u32Vec(std::vector<uint32_t> &out)
{
    const uint64_t n = u64();
    if (n > remaining() / 4) // length checked before any allocation
        need(remaining() + 1, "u32 vector");
    out.resize(n);
    for (uint64_t i = 0; i < n; ++i)
        out[i] = u32();
}

void
SnapshotReader::u64Vec(std::vector<uint64_t> &out)
{
    const uint64_t n = u64();
    if (n > remaining() / 8)
        need(remaining() + 1, "u64 vector");
    out.resize(n);
    for (uint64_t i = 0; i < n; ++i)
        out[i] = u64();
}

void
SnapshotReader::expectSection(uint32_t tag, const char *what)
{
    const size_t at = cursor_;
    const uint32_t got = u32();
    if (got != tag)
        throw Exception(ErrorCode::Corrupt,
                        "snapshot " + name_ + ": expected section '" +
                            tagName(tag) + "' (" + what + ") at offset " +
                            std::to_string(at) + ", found '" +
                            tagName(got) + "'");
}

void
SnapshotReader::expectEnd()
{
    if (remaining() != 0)
        throw Exception(ErrorCode::Corrupt,
                        "snapshot " + name_ + ": " +
                            std::to_string(remaining()) +
                            " unconsumed payload bytes");
}

SnapshotReader
openSnapshotGeneration(const std::string &path, bool *used_previous)
{
    if (used_previous)
        *used_previous = false;
    try {
        return SnapshotReader(path);
    } catch (const Exception &newest_error) {
        const std::string prev = path + kPreviousGenerationSuffix;
        try {
            SnapshotReader r(prev);
            logWarn("snapshot " + path + " unusable (" +
                    newest_error.error().describe() +
                    "); recovered previous generation " + prev);
            if (used_previous)
                *used_previous = true;
            return r;
        } catch (const Exception &) {
            // Report the newest generation's failure: that is the file
            // callers asked for, and its error is the actionable one.
            throw newest_error;
        }
    }
}

} // namespace mltc
