#include "util/log.hpp"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <mutex>

#include "util/json.hpp"

namespace mltc {

namespace {

// Sweep legs run on pool workers, so the logging globals are shared
// mutable state: the level and sink pointer are atomics (hot-path reads
// stay one relaxed load) and the one-time environment application goes
// through std::once_flag.
std::atomic<LogLevel> g_level{LogLevel::Info};
std::atomic<bool> g_env_applied{false};
std::once_flag g_env_once;
std::atomic<JsonlFileSink *> g_jsonl{nullptr};

const char *
levelTag(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Info: return "INFO";
      case LogLevel::Warn: return "WARN";
      case LogLevel::Error: return "ERROR";
      case LogLevel::Off: return "OFF";
    }
    return "?";
}

/** Apply MLTC_LOG exactly once, before the first threshold decision. */
void
applyEnvOnce()
{
    std::call_once(g_env_once, []() {
        if (g_env_applied.exchange(true))
            return; // setLogLevel() already decided; env loses
        const char *env = std::getenv("MLTC_LOG");
        if (!env || !*env)
            return;
        LogLevel level;
        if (parseLogLevel(env, level))
            g_level.store(level);
        else
            std::fprintf(stderr,
                         "[%s] [WARN] MLTC_LOG='%s' is not a level "
                         "(debug|info|warn|error|off); keeping '%s'\n",
                         logTimestampUtc().c_str(), env,
                         logLevelName(g_level.load()));
    });
}

} // namespace

const char *
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Error: return "error";
      case LogLevel::Off: return "off";
    }
    return "?";
}

bool
parseLogLevel(const std::string &name, LogLevel &out)
{
    std::string low;
    low.reserve(name.size());
    for (char c : name)
        low += static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    if (low == "debug")
        out = LogLevel::Debug;
    else if (low == "info")
        out = LogLevel::Info;
    else if (low == "warn" || low == "warning")
        out = LogLevel::Warn;
    else if (low == "error")
        out = LogLevel::Error;
    else if (low == "off" || low == "none")
        out = LogLevel::Off;
    else
        return false;
    return true;
}

void
setLogLevel(LogLevel level)
{
    // An explicit request wins over (and suppresses) the environment.
    g_env_applied.store(true);
    g_level.store(level);
}

LogLevel
logLevel()
{
    applyEnvOnce();
    return g_level.load();
}

void
setLogJsonlSink(JsonlFileSink *sink)
{
    g_jsonl.store(sink);
}

std::string
logTimestampUtc()
{
    using namespace std::chrono;
    const auto now = system_clock::now();
    const std::time_t secs = system_clock::to_time_t(now);
    const auto ms =
        duration_cast<milliseconds>(now.time_since_epoch()).count() % 1000;
    std::tm tm{};
    gmtime_r(&secs, &tm);
    char buf[64];
    std::snprintf(buf, sizeof buf, "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                  tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                  tm.tm_min, tm.tm_sec, static_cast<int>(ms));
    return buf;
}

void
logMessage(LogLevel level, const std::string &msg)
{
    applyEnvOnce();
    if (level < g_level.load(std::memory_order_relaxed))
        return;
    const std::string ts = logTimestampUtc();
    std::fprintf(stderr, "[%s] [%s] %s\n", ts.c_str(), levelTag(level),
                 msg.c_str());
    // Acquire pairs with the installer's store; JsonlFileSink::writeLine
    // is internally mutexed, so concurrent log lines never interleave.
    if (JsonlFileSink *sink = g_jsonl.load(std::memory_order_acquire)) {
        JsonWriter w;
        w.beginObject()
            .kv("ts", ts)
            .kv("level", logLevelName(level))
            .kv("msg", msg)
            .endObject();
        sink->writeLine(w.str());
    }
}

} // namespace mltc
