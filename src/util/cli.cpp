#include "util/cli.hpp"

#include <cerrno>
#include <cstdlib>

#include "util/error.hpp"

namespace mltc {

namespace {

bool
isOption(const std::string &arg)
{
    return arg.size() > 2 && arg[0] == '-' && arg[1] == '-';
}

[[noreturn]] void
badValue(const std::string &name, const std::string &value,
         const char *why)
{
    throw Exception(ErrorCode::BadArgument, "--" + name + ": " + why +
                                                ": '" + value + "'");
}

long
parseLong(const std::string &name, const std::string &value)
{
    errno = 0;
    char *end = nullptr;
    const long v = std::strtol(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0')
        badValue(name, value, "not an integer");
    if (errno == ERANGE)
        badValue(name, value, "integer out of range");
    return v;
}

} // namespace

CommandLine::CommandLine(int argc, const char *const *argv)
{
    if (argc > 0)
        program_ = argv[0];
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (!isOption(arg)) {
            positional_.push_back(arg);
            continue;
        }
        std::string body = arg.substr(2);
        auto eq = body.find('=');
        if (eq != std::string::npos) {
            options_[body.substr(0, eq)] = body.substr(eq + 1);
            continue;
        }
        // `--key value` form: consume the next token unless it is itself
        // an option; otherwise this is a bare flag.
        if (i + 1 < argc && !isOption(argv[i + 1])) {
            options_[body] = argv[++i];
        } else {
            options_[body] = "1";
        }
    }
}

bool
CommandLine::has(const std::string &name) const
{
    return options_.count(name) != 0;
}

std::string
CommandLine::getString(const std::string &name, const std::string &def) const
{
    auto it = options_.find(name);
    return it == options_.end() ? def : it->second;
}

long
CommandLine::getInt(const std::string &name, long def) const
{
    auto it = options_.find(name);
    if (it == options_.end())
        return def;
    return parseLong(name, it->second);
}

unsigned long
CommandLine::getUnsigned(const std::string &name, unsigned long def) const
{
    auto it = options_.find(name);
    if (it == options_.end())
        return def;
    const long v = parseLong(name, it->second);
    if (v < 0)
        badValue(name, it->second, "must be non-negative");
    return static_cast<unsigned long>(v);
}

double
CommandLine::getDouble(const std::string &name, double def) const
{
    auto it = options_.find(name);
    if (it == options_.end())
        return def;
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        badValue(name, it->second, "not a number");
    if (errno == ERANGE)
        badValue(name, it->second, "number out of range");
    return v;
}

bool
CommandLine::getFlag(const std::string &name) const
{
    auto it = options_.find(name);
    if (it == options_.end())
        return false;
    return it->second != "0" && it->second != "false";
}

} // namespace mltc
