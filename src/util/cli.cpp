#include "util/cli.hpp"

#include <cstdlib>

namespace mltc {

namespace {

bool
isOption(const std::string &arg)
{
    return arg.size() > 2 && arg[0] == '-' && arg[1] == '-';
}

} // namespace

CommandLine::CommandLine(int argc, const char *const *argv)
{
    if (argc > 0)
        program_ = argv[0];
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (!isOption(arg)) {
            positional_.push_back(arg);
            continue;
        }
        std::string body = arg.substr(2);
        auto eq = body.find('=');
        if (eq != std::string::npos) {
            options_[body.substr(0, eq)] = body.substr(eq + 1);
            continue;
        }
        // `--key value` form: consume the next token unless it is itself
        // an option; otherwise this is a bare flag.
        if (i + 1 < argc && !isOption(argv[i + 1])) {
            options_[body] = argv[++i];
        } else {
            options_[body] = "1";
        }
    }
}

bool
CommandLine::has(const std::string &name) const
{
    return options_.count(name) != 0;
}

std::string
CommandLine::getString(const std::string &name, const std::string &def) const
{
    auto it = options_.find(name);
    return it == options_.end() ? def : it->second;
}

long
CommandLine::getInt(const std::string &name, long def) const
{
    auto it = options_.find(name);
    if (it == options_.end())
        return def;
    char *end = nullptr;
    long v = std::strtol(it->second.c_str(), &end, 10);
    return (end && *end == '\0') ? v : def;
}

double
CommandLine::getDouble(const std::string &name, double def) const
{
    auto it = options_.find(name);
    if (it == options_.end())
        return def;
    char *end = nullptr;
    double v = std::strtod(it->second.c_str(), &end);
    return (end && *end == '\0') ? v : def;
}

bool
CommandLine::getFlag(const std::string &name) const
{
    auto it = options_.find(name);
    if (it == options_.end())
        return false;
    return it->second != "0" && it->second != "false";
}

} // namespace mltc
