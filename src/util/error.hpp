/**
 * @file
 * Error taxonomy shared by the robustness-hardened layers (host download
 * path, trace I/O): a small closed set of error codes, an `Error` value
 * carrying code + human-readable message, a `Result<T>` for call sites
 * that prefer values over exceptions, and an `Exception` wrapper (derived
 * from std::runtime_error so legacy catch sites keep working) for call
 * sites that throw.
 */
#ifndef MLTC_UTIL_ERROR_HPP
#define MLTC_UTIL_ERROR_HPP

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace mltc {

/** Closed error taxonomy (see docs/fault_model.md). */
enum class ErrorCode : uint8_t
{
    None = 0,
    Io,             ///< OS-level file/stream failure (open/write/close)
    Truncated,      ///< input ended mid-record
    BadMagic,       ///< file header is not the expected format
    BadOpcode,      ///< record tag outside the known opcode set
    Corrupt,        ///< payload failed an integrity check
    Timeout,        ///< a transfer exceeded its latency budget
    Transient,      ///< a retryable transfer failure (drop / outage)
    RetryExhausted, ///< all retry attempts / the backoff budget consumed
    OutOfRange,     ///< index outside a structure's valid range
    BadArgument,    ///< malformed command-line / configuration value
    VersionMismatch,///< snapshot version or configuration skew on resume
    AuditViolation, ///< a state invariant check failed (core/audit.hpp)
};

/** Stable lowercase name of @p code for logs and CSVs. */
const char *errorCodeName(ErrorCode code);

/** An error value: what went wrong plus a message naming where. */
struct Error
{
    ErrorCode code = ErrorCode::None;
    std::string message;

    /** "[code] message" for logs. */
    std::string describe() const;
};

/**
 * Exception carrying a typed Error. Derives std::runtime_error so
 * pre-taxonomy `catch (const std::runtime_error &)` sites still work.
 */
class Exception : public std::runtime_error
{
  public:
    Exception(ErrorCode code, std::string message)
        : std::runtime_error(message), error_{code, std::move(message)}
    {
    }

    const Error &error() const { return error_; }
    ErrorCode code() const { return error_.code; }

  private:
    Error error_;
};

/**
 * Value-or-Error result for APIs where failure is an expected outcome
 * (the host download path) rather than a programming error.
 */
template <typename T>
class Result
{
  public:
    /* implicit */ Result(T value) : v_(std::move(value)) {}
    /* implicit */ Result(Error error) : v_(std::move(error)) {}

    bool ok() const { return std::holds_alternative<T>(v_); }
    explicit operator bool() const { return ok(); }

    /** The value; only valid when ok(). */
    const T &value() const { return std::get<T>(v_); }
    T &value() { return std::get<T>(v_); }

    /** The error; only valid when !ok(). */
    const Error &error() const { return std::get<Error>(v_); }

  private:
    std::variant<T, Error> v_;
};

} // namespace mltc

#endif // MLTC_UTIL_ERROR_HPP
