/**
 * @file
 * Minimal JSON support for the observability layer: a streaming writer
 * (used by the metrics JSONL sink, the Chrome-trace emitter and the
 * bench/perf baseline), a small recursive-descent parser (used by the
 * trace-schema validator and tests), and a shared line-oriented JSONL
 * file sink.
 *
 * The writer produces compact, valid JSON only — keys and values are
 * escaped, doubles are emitted with enough precision to round-trip, and
 * NaN/Inf (not representable in JSON) are written as null. The parser
 * accepts exactly RFC 8259 JSON and throws typed mltc::Exception
 * (Corrupt) with a byte offset on malformed input.
 */
#ifndef MLTC_UTIL_JSON_HPP
#define MLTC_UTIL_JSON_HPP

#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mltc {

/** Escape @p s for use inside a JSON string literal (no quotes added). */
std::string jsonEscape(const std::string &s);

/**
 * Streaming JSON writer building into an internal string. Structural
 * calls (beginObject/endObject/beginArray/endArray) nest; key() must
 * precede each value inside an object. Commas are inserted
 * automatically. Misuse (value without key inside an object, endObject
 * inside an array, ...) throws mltc::Exception (BadArgument) — writer
 * bugs must fail loudly, not emit unparseable telemetry.
 */
class JsonWriter
{
  public:
    JsonWriter();

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Object member key; must be followed by exactly one value. */
    JsonWriter &key(const std::string &name);

    JsonWriter &value(const std::string &s);
    JsonWriter &value(const char *s);
    JsonWriter &value(bool b);
    JsonWriter &value(double d);
    JsonWriter &value(int64_t v);
    JsonWriter &value(uint64_t v);
    JsonWriter &value(int v) { return value(static_cast<int64_t>(v)); }
    JsonWriter &value(unsigned v) { return value(static_cast<uint64_t>(v)); }
    JsonWriter &nullValue();

    /** Convenience: key + value. */
    template <typename T>
    JsonWriter &
    kv(const std::string &name, T &&v)
    {
        key(name);
        return value(std::forward<T>(v));
    }

    /** The document so far. Complete once all scopes are closed. */
    const std::string &str() const { return out_; }

    /** True when every opened scope has been closed. */
    bool complete() const { return stack_.empty() && wrote_root_; }

    /** Discard everything and start a fresh document. */
    void reset();

  private:
    enum class Scope : uint8_t { Object, Array };

    void beforeValue();

    std::string out_;
    std::vector<Scope> stack_;
    std::vector<bool> first_;  ///< parallel to stack_: no comma yet
    bool pending_key_ = false; ///< key() emitted, value expected
    bool wrote_root_ = false;
};

/** Parsed JSON value (tree form; for validators and tests). */
class JsonValue
{
  public:
    enum class Type : uint8_t { Null, Bool, Number, String, Array, Object };

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    /** Value accessors; throw (BadArgument) on type mismatch. */
    bool asBool() const;
    double asNumber() const;
    const std::string &asString() const;
    const std::vector<JsonValue> &asArray() const;
    const std::map<std::string, JsonValue> &asObject() const;

    /** Object member lookup; null pointer when absent or not an object. */
    const JsonValue *find(const std::string &name) const;

    /** Shorthand: member @p name must exist; throws (Corrupt) if not. */
    const JsonValue &at(const std::string &name) const;

    static JsonValue makeNull() { return JsonValue(); }
    static JsonValue makeBool(bool b);
    static JsonValue makeNumber(double d);
    static JsonValue makeString(std::string s);
    static JsonValue makeArray(std::vector<JsonValue> v);
    static JsonValue makeObject(std::map<std::string, JsonValue> m);

  private:
    Type type_ = Type::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<JsonValue> arr_;
    std::map<std::string, JsonValue> obj_;
};

/**
 * Parse one complete JSON document from @p text.
 * @throws mltc::Exception (Corrupt) naming the byte offset on any
 *         syntax error, trailing garbage, or unterminated construct.
 */
JsonValue parseJson(const std::string &text);

/**
 * Append-oriented JSONL (one JSON document per line) file sink, shared
 * by the metrics registry and the structured log sink. Lines are
 * flushed as they are written so a crashed run keeps every complete
 * row. Telemetry is never load-bearing: the first write failure
 * disables the sink (further lines are counted as dropped instead of
 * killing the run) and the loss is reported via droppedLines() and a
 * typed (Io) throw at close().
 */
class JsonlFileSink
{
  public:
    /**
     * Open (truncate) @p path for writing.
     * @throws mltc::Exception (Io) when the file cannot be opened.
     */
    explicit JsonlFileSink(const std::string &path);
    ~JsonlFileSink();

    JsonlFileSink(const JsonlFileSink &) = delete;
    JsonlFileSink &operator=(const JsonlFileSink &) = delete;

    /**
     * Write one document (no trailing newline in @p line) as a line.
     * Thread-safe: lines from concurrent writers never interleave
     * (each writeLine is one atomic append under an internal mutex).
     */
    void writeLine(const std::string &line);

    const std::string &path() const { return path_; }

    /** Lines written so far. */
    uint64_t lines() const;

    /** Lines lost after the sink self-disabled on a write failure. */
    uint64_t droppedLines() const;

    /** True once a write failure has disabled the sink. */
    bool disabled() const;

    /**
     * Flush and close.
     * @throws mltc::Exception (Io) if any write or the close failed.
     */
    void close();

  private:
    std::string path_;
    std::FILE *file_ = nullptr;
    mutable std::mutex mutex_;
    uint64_t lines_ = 0;
    uint64_t dropped_ = 0;
    bool failed_ = false;
};

} // namespace mltc

#endif // MLTC_UTIL_JSON_HPP
