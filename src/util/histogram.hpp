/**
 * @file
 * Small integer histogram for distribution analyses (e.g. the clock
 * algorithm's victim-search lengths, §5.4.2's "pesky" study).
 */
#ifndef MLTC_UTIL_HISTOGRAM_HPP
#define MLTC_UTIL_HISTOGRAM_HPP

#include <algorithm>
#include <cstdint>
#include <vector>

namespace mltc {

/**
 * Histogram over non-negative integer samples. Values above the
 * configured cap land in an overflow bucket but still contribute to the
 * max and count.
 */
class Histogram
{
  public:
    /** @param max_value largest value with its own bucket. */
    explicit Histogram(uint32_t max_value = 4096)
        : buckets_(max_value + 2, 0), cap_(max_value)
    {
    }

    /** Record one sample. */
    void
    add(uint64_t value)
    {
        ++count_;
        sum_ += value;
        max_ = std::max(max_, value);
        size_t idx = value > cap_ ? cap_ + 1 : static_cast<size_t>(value);
        ++buckets_[idx];
    }

    /** Number of samples recorded. */
    uint64_t count() const { return count_; }

    /** Largest sample. */
    uint64_t max() const { return max_; }

    /** Mean sample (0 when empty). */
    double
    mean() const
    {
        return count_ ? static_cast<double>(sum_) /
                            static_cast<double>(count_)
                      : 0.0;
    }

    /**
     * Smallest value v such that at least @p q of the samples are <= v
     * (q in [0, 1]). Samples above the cap report cap+1.
     */
    uint64_t
    percentile(double q) const
    {
        if (count_ == 0)
            return 0;
        uint64_t target = static_cast<uint64_t>(
            q * static_cast<double>(count_) + 0.5);
        if (target == 0)
            target = 1;
        uint64_t seen = 0;
        for (size_t i = 0; i < buckets_.size(); ++i) {
            seen += buckets_[i];
            if (seen >= target)
                return static_cast<uint64_t>(i);
        }
        return cap_ + 1;
    }

    /** Samples exactly equal to @p value (values above cap aggregate). */
    uint64_t
    bucket(uint64_t value) const
    {
        size_t idx = value > cap_ ? cap_ + 1 : static_cast<size_t>(value);
        return buckets_[idx];
    }

    /** Fraction of samples <= @p value. */
    double
    cdf(uint64_t value) const
    {
        if (count_ == 0)
            return 0.0;
        uint64_t seen = 0;
        size_t limit = value > cap_ ? cap_ + 1 : static_cast<size_t>(value);
        for (size_t i = 0; i <= limit; ++i)
            seen += buckets_[i];
        return static_cast<double>(seen) / static_cast<double>(count_);
    }

    /** Forget everything. */
    void
    clear()
    {
        std::fill(buckets_.begin(), buckets_.end(), 0);
        count_ = 0;
        sum_ = 0;
        max_ = 0;
    }

  private:
    std::vector<uint64_t> buckets_;
    uint32_t cap_;
    uint64_t count_ = 0;
    uint64_t sum_ = 0;
    uint64_t max_ = 0;
};

} // namespace mltc

#endif // MLTC_UTIL_HISTOGRAM_HPP
