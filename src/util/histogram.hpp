/**
 * @file
 * Small integer histogram for distribution analyses (e.g. the clock
 * algorithm's victim-search lengths, §5.4.2's "pesky" study, and the
 * host fetch-latency distribution under fault injection).
 */
#ifndef MLTC_UTIL_HISTOGRAM_HPP
#define MLTC_UTIL_HISTOGRAM_HPP

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/json.hpp"
#include "util/serializer.hpp"

namespace mltc {

/**
 * Histogram over non-negative integer samples. Values above the
 * configured cap land in an overflow bucket but still contribute to the
 * max and count.
 */
class Histogram
{
  public:
    /** @param max_value largest value with its own bucket. */
    explicit Histogram(uint32_t max_value = 4096)
        : buckets_(max_value + 2, 0), cap_(max_value)
    {
    }

    /** Record one sample. */
    void
    add(uint64_t value)
    {
        ++count_;
        sum_ += value;
        max_ = std::max(max_, value);
        size_t idx = value > cap_ ? cap_ + 1 : static_cast<size_t>(value);
        ++buckets_[idx];
    }

    /** Number of samples recorded. */
    uint64_t count() const { return count_; }

    /** Largest sample. */
    uint64_t max() const { return max_; }

    /** Mean sample (0 when empty). */
    double
    mean() const
    {
        return count_ ? static_cast<double>(sum_) /
                            static_cast<double>(count_)
                      : 0.0;
    }

    /**
     * Smallest value v such that at least @p q of the samples are <= v
     * (q in [0, 1]). Samples above the cap report cap+1.
     */
    uint64_t
    percentile(double q) const
    {
        if (count_ == 0)
            return 0;
        uint64_t target = static_cast<uint64_t>(
            q * static_cast<double>(count_) + 0.5);
        if (target == 0)
            target = 1;
        uint64_t seen = 0;
        for (size_t i = 0; i < buckets_.size(); ++i) {
            seen += buckets_[i];
            if (seen >= target)
                return static_cast<uint64_t>(i);
        }
        return cap_ + 1;
    }

    /** Samples exactly equal to @p value (values above cap aggregate). */
    uint64_t
    bucket(uint64_t value) const
    {
        size_t idx = value > cap_ ? cap_ + 1 : static_cast<size_t>(value);
        return buckets_[idx];
    }

    /** Fraction of samples <= @p value. */
    double
    cdf(uint64_t value) const
    {
        if (count_ == 0)
            return 0.0;
        uint64_t seen = 0;
        size_t limit = value > cap_ ? cap_ + 1 : static_cast<size_t>(value);
        for (size_t i = 0; i <= limit; ++i)
            seen += buckets_[i];
        return static_cast<double>(seen) / static_cast<double>(count_);
    }

    /** Sum of all samples. */
    uint64_t sum() const { return sum_; }

    /** Largest value with its own bucket (overflow aggregates above). */
    uint32_t cap() const { return cap_; }

    /**
     * Fold another histogram's samples into this one.
     * @throws mltc::Exception (BadArgument) when the bucket caps differ
     *         — merging across geometries would silently misbucket.
     */
    void
    merge(const Histogram &o)
    {
        if (o.cap_ != cap_)
            throw Exception(ErrorCode::BadArgument,
                            "Histogram::merge: bucket cap mismatch (" +
                                std::to_string(cap_) + " vs " +
                                std::to_string(o.cap_) + ")");
        for (size_t i = 0; i < buckets_.size(); ++i)
            buckets_[i] += o.buckets_[i];
        count_ += o.count_;
        sum_ += o.sum_;
        max_ = std::max(max_, o.max_);
    }

    /**
     * CSV rendering: `value,count` rows for every non-empty bucket, a
     * final `overflow,count` row when samples exceeded the cap.
     */
    std::string
    toCsv() const
    {
        std::string out = "value,count\n";
        for (size_t i = 0; i + 1 < buckets_.size(); ++i)
            if (buckets_[i])
                out += std::to_string(i) + ',' +
                       std::to_string(buckets_[i]) + '\n';
        if (buckets_.back())
            out += "overflow," + std::to_string(buckets_.back()) + '\n';
        return out;
    }

    /**
     * JSON rendering: summary stats plus sparse non-empty buckets, as
     * one value into @p w (callers place it under their own key).
     */
    void
    writeJson(JsonWriter &w) const
    {
        w.beginObject()
            .kv("count", count_)
            .kv("sum", sum_)
            .kv("max", max_)
            .kv("mean", mean())
            .kv("p50", percentile(0.50))
            .kv("p90", percentile(0.90))
            .kv("p99", percentile(0.99))
            .kv("overflow", buckets_.back());
        w.key("buckets").beginObject();
        for (size_t i = 0; i + 1 < buckets_.size(); ++i)
            if (buckets_[i])
                w.kv(std::to_string(i), buckets_[i]);
        w.endObject().endObject();
    }

    /** Serialize for a checkpoint (see docs/checkpoint_format.md). */
    void
    save(SnapshotWriter &w) const
    {
        w.u32(cap_);
        w.u64(count_);
        w.u64(sum_);
        w.u64(max_);
        w.u64Vec(buckets_);
    }

    /**
     * Restore state captured by save().
     * @throws mltc::Exception (VersionMismatch) when the snapshot was
     *         taken under a different bucket cap, (Corrupt) when the
     *         bucket vector length is inconsistent with the cap.
     */
    void
    load(SnapshotReader &r)
    {
        const uint32_t cap = r.u32();
        if (cap != cap_)
            throw Exception(ErrorCode::VersionMismatch,
                            "Histogram: snapshot cap " +
                                std::to_string(cap) +
                                " does not match configured cap " +
                                std::to_string(cap_));
        count_ = r.u64();
        sum_ = r.u64();
        max_ = r.u64();
        r.u64Vec(buckets_);
        if (buckets_.size() != static_cast<size_t>(cap_) + 2)
            throw Exception(ErrorCode::Corrupt,
                            "Histogram: snapshot bucket count " +
                                std::to_string(buckets_.size()) +
                                " inconsistent with cap " +
                                std::to_string(cap_));
    }

    /** Forget everything. */
    void
    clear()
    {
        std::fill(buckets_.begin(), buckets_.end(), 0);
        count_ = 0;
        sum_ = 0;
        max_ = 0;
    }

  private:
    std::vector<uint64_t> buckets_;
    uint32_t cap_;
    uint64_t count_ = 0;
    uint64_t sum_ = 0;
    uint64_t max_ = 0;
};

} // namespace mltc

#endif // MLTC_UTIL_HISTOGRAM_HPP
