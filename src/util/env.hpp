/**
 * @file
 * Environment-variable knobs shared by benches and examples.
 *
 * `MLTC_FRAMES` overrides the number of animation frames simulated by the
 * bench binaries (the paper uses 411/525; benches default lower to keep
 * single-core runtimes short). `MLTC_OUT_DIR` redirects CSV output.
 */
#ifndef MLTC_UTIL_ENV_HPP
#define MLTC_UTIL_ENV_HPP

#include <string>

namespace mltc {

/** Integer env var, or @p def when unset/unparseable. */
long envInt(const char *name, long def);

/** String env var, or @p def when unset. */
std::string envString(const char *name, const std::string &def);

/**
 * Frame count a bench should simulate: MLTC_FRAMES if set, else
 * @p bench_default.
 */
int benchFrameCount(int bench_default);

/** Directory for bench CSV output: MLTC_OUT_DIR if set, else ".". */
std::string benchOutputDir();

} // namespace mltc

#endif // MLTC_UTIL_ENV_HPP
