#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace mltc {

TextTable::TextTable(std::vector<std::string> header)
    : width_(header.size())
{
    rows_.push_back(std::move(header));
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    cells.resize(width_);
    rows_.push_back(std::move(cells));
}

void
TextTable::addRow(const std::string &label, const std::vector<double> &values,
                  int precision)
{
    std::vector<std::string> cells;
    cells.reserve(values.size() + 1);
    cells.push_back(label);
    for (double v : values)
        cells.push_back(formatDouble(v, precision));
    addRow(std::move(cells));
}

std::string
TextTable::render() const
{
    std::vector<size_t> widths(width_, 0);
    for (const auto &row : rows_)
        for (size_t c = 0; c < width_; ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream os;
    for (size_t r = 0; r < rows_.size(); ++r) {
        for (size_t c = 0; c < width_; ++c) {
            os << rows_[r][c]
               << std::string(widths[c] - rows_[r][c].size(), ' ');
            if (c + 1 < width_)
                os << "  ";
        }
        os << "\n";
        if (r == 0) {
            size_t total = 0;
            for (size_t c = 0; c < width_; ++c)
                total += widths[c] + (c + 1 < width_ ? 2 : 0);
            os << std::string(total, '-') << "\n";
        }
    }
    return os.str();
}

void
TextTable::print() const
{
    std::fputs(render().c_str(), stdout);
}

std::string
formatBytes(double bytes)
{
    const char *units[] = {"B", "KB", "MB", "GB", "TB"};
    int u = 0;
    while (bytes >= 1024.0 && u < 4) {
        bytes /= 1024.0;
        ++u;
    }
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.2f %s", bytes, units[u]);
    return buf;
}

std::string
formatDouble(double v, int precision)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
formatPercent(double ratio, int precision)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, ratio * 100.0);
    return buf;
}

} // namespace mltc
