/**
 * @file
 * Aligned plain-text table printer used to reproduce the paper's tables
 * on stdout in the bench binaries.
 */
#ifndef MLTC_UTIL_TABLE_HPP
#define MLTC_UTIL_TABLE_HPP

#include <string>
#include <vector>

namespace mltc {

/**
 * Column-aligned table built row by row and rendered with a separator
 * under the header, in the spirit of the paper's tables.
 */
class TextTable
{
  public:
    /** Create a table with the given header cells. */
    explicit TextTable(std::vector<std::string> header);

    /** Append a data row (padded/truncated to header width). */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format doubles with @p precision and append. */
    void addRow(const std::string &label, const std::vector<double> &values,
                int precision = 2);

    /** Render the table to a string. */
    std::string render() const;

    /** Render to stdout. */
    void print() const;

  private:
    std::vector<std::vector<std::string>> rows_;
    size_t width_;
};

/** Format a byte count as a human-readable "12.3 MB" style string. */
std::string formatBytes(double bytes);

/** Format @p v with @p precision fractional digits. */
std::string formatDouble(double v, int precision = 2);

/** Format a ratio in [0,1] as a percentage like "93.4%". */
std::string formatPercent(double ratio, int precision = 1);

} // namespace mltc

#endif // MLTC_UTIL_TABLE_HPP
