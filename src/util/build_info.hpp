/**
 * @file
 * Build provenance shared by every perf-bearing artifact.
 *
 * Perf numbers are meaningless without knowing what produced them, so
 * the bench JSON (`BENCH_perf.json`), the telemetry run manifest
 * (`/runz`) and every profile JSON header carry the same provenance
 * object:
 *
 *     {"git_sha":"6cd607c...","compiler":"gcc 13.2.0",
 *      "flags":"-O2 ... (Release)","cpu_model":"AMD EPYC ...",
 *      "cores":32}
 *
 * git SHA and flags are baked in at configure time (CMake injects
 * MLTC_GIT_SHA / MLTC_BUILD_FLAGS onto build_info.cpp; a stale
 * configure shows the SHA of the last cmake run, which is the honest
 * answer for an incremental build). Compiler identity comes from the
 * compiler's own macros; CPU model and core count are read once at
 * runtime, so the same binary reports correctly when moved between
 * machines.
 */
#ifndef MLTC_UTIL_BUILD_INFO_HPP
#define MLTC_UTIL_BUILD_INFO_HPP

#include <string>

#include "util/json.hpp"

namespace mltc {

/** Resolved provenance of this binary on this machine. */
struct BuildInfo
{
    std::string git_sha;   ///< configure-time HEAD ("unknown" outside git)
    std::string compiler;  ///< e.g. "gcc 13.2.0" / "clang 17.0.6"
    std::string flags;     ///< CMAKE_CXX_FLAGS + build type
    std::string cpu_model; ///< /proc/cpuinfo model name ("unknown" elsewhere)
    unsigned cores = 0;    ///< std::thread::hardware_concurrency()
};

/** The process-wide provenance, resolved once on first use. */
const BuildInfo &buildInfo();

/**
 * Append the provenance as one JSON object value. The caller supplies
 * the position (typically `w.key("build")` first).
 */
void appendBuildInfo(JsonWriter &w);

/** The provenance as a standalone JSON object string. */
std::string buildInfoJson();

} // namespace mltc

#endif // MLTC_UTIL_BUILD_INFO_HPP
