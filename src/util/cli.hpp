/**
 * @file
 * Tiny command-line option parser used by examples and bench drivers.
 *
 * Supports `--flag`, `--key=value` and `--key value` forms plus
 * positional arguments. All lookups are typed with defaults so drivers
 * stay one-liners.
 */
#ifndef MLTC_UTIL_CLI_HPP
#define MLTC_UTIL_CLI_HPP

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mltc {

/** Parsed command line: options (key -> last value) and positionals. */
class CommandLine
{
  public:
    /**
     * Parse argv. `--key=value` and `--key value` set options; a `--key`
     * followed by another option or end of argv becomes a boolean flag
     * with value "1". Everything else is positional.
     */
    CommandLine(int argc, const char *const *argv);

    /** True if --name was given (with or without a value). */
    bool has(const std::string &name) const;

    /** String value of --name, or @p def if absent. */
    std::string getString(const std::string &name, const std::string &def) const;

    /**
     * Integer value of --name, or @p def if absent.
     * @throws mltc::Exception (BadArgument) naming the flag when the
     *         value has trailing junk, is not a number, or overflows —
     *         malformed input must never be silently truncated to a
     *         default or a wrapped value.
     */
    long getInt(const std::string &name, long def) const;

    /**
     * Non-negative integer value of --name, or @p def if absent.
     * @throws mltc::Exception (BadArgument) naming the flag on junk,
     *         overflow or a negative value.
     */
    unsigned long getUnsigned(const std::string &name,
                              unsigned long def) const;

    /**
     * Double value of --name, or @p def if absent.
     * @throws mltc::Exception (BadArgument) naming the flag on junk or
     *         overflow.
     */
    double getDouble(const std::string &name, double def) const;

    /** Boolean flag: present and not "0"/"false". */
    bool getFlag(const std::string &name) const;

    /** Positional arguments in order. */
    const std::vector<std::string> &positional() const { return positional_; }

    /** Program name (argv[0]). */
    const std::string &program() const { return program_; }

  private:
    std::string program_;
    std::map<std::string, std::string> options_;
    std::vector<std::string> positional_;
};

} // namespace mltc

#endif // MLTC_UTIL_CLI_HPP
