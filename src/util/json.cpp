#include "util/json.hpp"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstring>

#include "util/error.hpp"
#include "util/io.hpp"
#include "util/log.hpp"

namespace mltc {

// ---------------------------------------------------------------------------
// Escaping / writer

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char raw : s) {
        const unsigned char c = static_cast<unsigned char>(raw);
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

JsonWriter::JsonWriter() { out_.reserve(256); }

void
JsonWriter::beforeValue()
{
    if (wrote_root_ && stack_.empty())
        throw Exception(ErrorCode::BadArgument,
                        "JsonWriter: more than one root value");
    if (!stack_.empty() && stack_.back() == Scope::Object && !pending_key_)
        throw Exception(ErrorCode::BadArgument,
                        "JsonWriter: object value without a key");
    if (!stack_.empty() && stack_.back() == Scope::Array) {
        if (!first_.back())
            out_ += ',';
        first_.back() = false;
    }
    pending_key_ = false;
}

JsonWriter &
JsonWriter::beginObject()
{
    beforeValue();
    out_ += '{';
    stack_.push_back(Scope::Object);
    first_.push_back(true);
    wrote_root_ = true;
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    if (stack_.empty() || stack_.back() != Scope::Object || pending_key_)
        throw Exception(ErrorCode::BadArgument,
                        "JsonWriter: endObject outside an object");
    out_ += '}';
    stack_.pop_back();
    first_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    beforeValue();
    out_ += '[';
    stack_.push_back(Scope::Array);
    first_.push_back(true);
    wrote_root_ = true;
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    if (stack_.empty() || stack_.back() != Scope::Array)
        throw Exception(ErrorCode::BadArgument,
                        "JsonWriter: endArray outside an array");
    out_ += ']';
    stack_.pop_back();
    first_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    if (stack_.empty() || stack_.back() != Scope::Object || pending_key_)
        throw Exception(ErrorCode::BadArgument,
                        "JsonWriter: key() outside an object");
    if (!first_.back())
        out_ += ',';
    first_.back() = false;
    out_ += '"';
    out_ += jsonEscape(name);
    out_ += "\":";
    pending_key_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &s)
{
    beforeValue();
    out_ += '"';
    out_ += jsonEscape(s);
    out_ += '"';
    wrote_root_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const char *s)
{
    return value(std::string(s));
}

JsonWriter &
JsonWriter::value(bool b)
{
    beforeValue();
    out_ += b ? "true" : "false";
    wrote_root_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(double d)
{
    beforeValue();
    if (std::isfinite(d)) {
        char buf[40];
        std::snprintf(buf, sizeof buf, "%.17g", d);
        out_ += buf;
    } else {
        out_ += "null"; // NaN/Inf are not representable in JSON
    }
    wrote_root_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(int64_t v)
{
    beforeValue();
    char buf[32];
    std::snprintf(buf, sizeof buf, "%" PRId64, v);
    out_ += buf;
    wrote_root_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(uint64_t v)
{
    beforeValue();
    char buf[32];
    std::snprintf(buf, sizeof buf, "%" PRIu64, v);
    out_ += buf;
    wrote_root_ = true;
    return *this;
}

JsonWriter &
JsonWriter::nullValue()
{
    beforeValue();
    out_ += "null";
    wrote_root_ = true;
    return *this;
}

void
JsonWriter::reset()
{
    out_.clear();
    stack_.clear();
    first_.clear();
    pending_key_ = false;
    wrote_root_ = false;
}

// ---------------------------------------------------------------------------
// JsonValue

bool
JsonValue::asBool() const
{
    if (type_ != Type::Bool)
        throw Exception(ErrorCode::BadArgument, "JsonValue: not a bool");
    return bool_;
}

double
JsonValue::asNumber() const
{
    if (type_ != Type::Number)
        throw Exception(ErrorCode::BadArgument, "JsonValue: not a number");
    return num_;
}

const std::string &
JsonValue::asString() const
{
    if (type_ != Type::String)
        throw Exception(ErrorCode::BadArgument, "JsonValue: not a string");
    return str_;
}

const std::vector<JsonValue> &
JsonValue::asArray() const
{
    if (type_ != Type::Array)
        throw Exception(ErrorCode::BadArgument, "JsonValue: not an array");
    return arr_;
}

const std::map<std::string, JsonValue> &
JsonValue::asObject() const
{
    if (type_ != Type::Object)
        throw Exception(ErrorCode::BadArgument, "JsonValue: not an object");
    return obj_;
}

const JsonValue *
JsonValue::find(const std::string &name) const
{
    if (type_ != Type::Object)
        return nullptr;
    auto it = obj_.find(name);
    return it == obj_.end() ? nullptr : &it->second;
}

const JsonValue &
JsonValue::at(const std::string &name) const
{
    const JsonValue *v = find(name);
    if (!v)
        throw Exception(ErrorCode::Corrupt,
                        "JsonValue: missing member '" + name + "'");
    return *v;
}

JsonValue
JsonValue::makeBool(bool b)
{
    JsonValue v;
    v.type_ = Type::Bool;
    v.bool_ = b;
    return v;
}

JsonValue
JsonValue::makeNumber(double d)
{
    JsonValue v;
    v.type_ = Type::Number;
    v.num_ = d;
    return v;
}

JsonValue
JsonValue::makeString(std::string s)
{
    JsonValue v;
    v.type_ = Type::String;
    v.str_ = std::move(s);
    return v;
}

JsonValue
JsonValue::makeArray(std::vector<JsonValue> a)
{
    JsonValue v;
    v.type_ = Type::Array;
    v.arr_ = std::move(a);
    return v;
}

JsonValue
JsonValue::makeObject(std::map<std::string, JsonValue> m)
{
    JsonValue v;
    v.type_ = Type::Object;
    v.obj_ = std::move(m);
    return v;
}

// ---------------------------------------------------------------------------
// Parser

namespace {

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    JsonValue
    parseDocument()
    {
        skipWs();
        JsonValue v = parseValue(0);
        skipWs();
        if (pos_ != text_.size())
            fail("trailing garbage after document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw Exception(ErrorCode::Corrupt, "JSON parse error at byte " +
                                                std::to_string(pos_) + ": " +
                                                what);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
                ++pos_;
            else
                break;
        }
    }

    char
    peek() const
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    char
    take()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_++];
    }

    void
    expectLiteral(const char *lit)
    {
        size_t n = std::strlen(lit);
        if (text_.compare(pos_, n, lit) != 0)
            fail(std::string("expected '") + lit + "'");
        pos_ += n;
    }

    JsonValue
    parseValue(int depth)
    {
        if (depth > 256)
            fail("nesting too deep");
        skipWs();
        switch (peek()) {
          case '{': return parseObject(depth);
          case '[': return parseArray(depth);
          case '"': return JsonValue::makeString(parseString());
          case 't': expectLiteral("true"); return JsonValue::makeBool(true);
          case 'f': expectLiteral("false"); return JsonValue::makeBool(false);
          case 'n': expectLiteral("null"); return JsonValue::makeNull();
          default: return parseNumber();
        }
    }

    JsonValue
    parseObject(int depth)
    {
        take(); // '{'
        std::map<std::string, JsonValue> m;
        skipWs();
        if (peek() == '}') {
            take();
            return JsonValue::makeObject(std::move(m));
        }
        for (;;) {
            skipWs();
            if (peek() != '"')
                fail("expected object key string");
            std::string k = parseString();
            skipWs();
            if (take() != ':')
                fail("expected ':' after object key");
            m[std::move(k)] = parseValue(depth + 1);
            skipWs();
            char c = take();
            if (c == '}')
                break;
            if (c != ',')
                fail("expected ',' or '}' in object");
        }
        return JsonValue::makeObject(std::move(m));
    }

    JsonValue
    parseArray(int depth)
    {
        take(); // '['
        std::vector<JsonValue> a;
        skipWs();
        if (peek() == ']') {
            take();
            return JsonValue::makeArray(std::move(a));
        }
        for (;;) {
            a.push_back(parseValue(depth + 1));
            skipWs();
            char c = take();
            if (c == ']')
                break;
            if (c != ',')
                fail("expected ',' or ']' in array");
        }
        return JsonValue::makeArray(std::move(a));
    }

    std::string
    parseString()
    {
        take(); // '"'
        std::string out;
        for (;;) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            unsigned char c = static_cast<unsigned char>(text_[pos_++]);
            if (c == '"')
                break;
            if (c < 0x20)
                fail("raw control character in string");
            if (c != '\\') {
                out += static_cast<char>(c);
                continue;
            }
            char e = take();
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = take();
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape");
                }
                // Encode the code point as UTF-8 (surrogate pairs are
                // passed through as two 3-byte sequences; the validator
                // does not need full surrogate decoding).
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default: fail("bad escape character");
            }
        }
        return out;
    }

    JsonValue
    parseNumber()
    {
        size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        if (!std::isdigit(static_cast<unsigned char>(peek())))
            fail("expected a value");
        if (peek() == '0')
            ++pos_;
        else
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        if (peek() == '.') {
            ++pos_;
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                fail("expected digits after decimal point");
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-')
                ++pos_;
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                fail("expected exponent digits");
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        return JsonValue::makeNumber(
            std::strtod(text_.c_str() + start, nullptr));
    }

    const std::string &text_;
    size_t pos_ = 0;
};

} // namespace

JsonValue
parseJson(const std::string &text)
{
    return Parser(text).parseDocument();
}

// ---------------------------------------------------------------------------
// JSONL sink

JsonlFileSink::JsonlFileSink(const std::string &path) : path_(path)
{
    file_ = FileBackend::instance().open(path, "wb");
    if (!file_)
        throw Exception(ErrorCode::Io,
                        "JsonlFileSink: cannot open '" + path + "'");
}

JsonlFileSink::~JsonlFileSink()
{
    if (file_)
        FileBackend::instance().close(file_);
}

void
JsonlFileSink::writeLine(const std::string &line)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!file_) {
        if (failed_)
            ++dropped_; // sink self-disabled earlier; count the loss
        return;
    }
    FileBackend &fs = FileBackend::instance();
    std::string out;
    out.reserve(line.size() + 1);
    out += line;
    out += '\n';
    if (!fs.write(file_, out.data(), out.size()) || !fs.flush(file_)) {
        // Telemetry must never take the run down: on the first I/O
        // failure the sink disables itself (the rest of the artefact
        // would be a lie anyway) and the loss is reported via
        // droppedLines() and the typed throw at close().
        failed_ = true;
        fs.close(file_);
        file_ = nullptr;
        ++dropped_;
        logWarn("JsonlFileSink: write failed on '" + path_ +
                "'; sink disabled, further lines dropped");
        return;
    }
    ++lines_;
}

uint64_t
JsonlFileSink::lines() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return lines_;
}

uint64_t
JsonlFileSink::droppedLines() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return dropped_;
}

bool
JsonlFileSink::disabled() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return failed_;
}

void
JsonlFileSink::close()
{
    bool rc = true;
    bool failed = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        failed = failed_;
        if (!file_) {
            if (!failed)
                return; // already cleanly closed
        } else {
            rc = FileBackend::instance().close(file_);
            file_ = nullptr;
        }
    }
    if (!rc || failed)
        throw Exception(ErrorCode::Io,
                        "JsonlFileSink: write failure on '" + path_ + "'");
}

} // namespace mltc
