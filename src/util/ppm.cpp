#include "util/ppm.hpp"

#include <cstdio>

namespace mltc {

bool
writePpm(const std::string &path, int width, int height,
         const std::vector<uint32_t> &rgba)
{
    if (width <= 0 || height <= 0 ||
        rgba.size() < static_cast<size_t>(width) * static_cast<size_t>(height))
        return false;

    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    std::fprintf(f, "P6\n%d %d\n255\n", width, height);
    std::vector<uint8_t> row(static_cast<size_t>(width) * 3);
    for (int y = 0; y < height; ++y) {
        const uint32_t *src = &rgba[static_cast<size_t>(y) *
                                    static_cast<size_t>(width)];
        for (int x = 0; x < width; ++x) {
            uint32_t p = src[x];
            row[static_cast<size_t>(x) * 3 + 0] = static_cast<uint8_t>(p & 0xff);
            row[static_cast<size_t>(x) * 3 + 1] =
                static_cast<uint8_t>((p >> 8) & 0xff);
            row[static_cast<size_t>(x) * 3 + 2] =
                static_cast<uint8_t>((p >> 16) & 0xff);
        }
        if (std::fwrite(row.data(), 1, row.size(), f) != row.size()) {
            std::fclose(f);
            return false;
        }
    }
    std::fclose(f);
    return true;
}

} // namespace mltc
