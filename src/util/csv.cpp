#include "util/csv.hpp"

#include <sstream>
#include <stdexcept>

#include "util/error.hpp"

namespace mltc {

CsvWriter::CsvWriter(const std::string &path,
                     const std::vector<std::string> &columns)
    : path_(path), out_(path), columns_(columns.size())
{
    if (!out_)
        throw Exception(ErrorCode::Io, "CsvWriter: cannot open " + path);
    for (size_t i = 0; i < columns.size(); ++i)
        out_ << (i ? "," : "") << columns[i];
    out_ << "\n";
    checkStream();
}

void
CsvWriter::checkStream()
{
    // A full disk or vanished file must fail loudly at the offending
    // row, not silently truncate the bench's CSV artefact.
    if (!out_)
        throw Exception(ErrorCode::Io,
                        "CsvWriter: write failed for " + path_);
}

void
CsvWriter::row(const std::vector<double> &values)
{
    if (values.size() != columns_)
        throw std::invalid_argument("CsvWriter: row width mismatch");
    std::ostringstream os;
    for (size_t i = 0; i < values.size(); ++i)
        os << (i ? "," : "") << values[i];
    out_ << os.str() << "\n";
    checkStream();
}

void
CsvWriter::rowStrings(const std::vector<std::string> &values)
{
    if (values.size() != columns_)
        throw std::invalid_argument("CsvWriter: row width mismatch");
    for (size_t i = 0; i < values.size(); ++i)
        out_ << (i ? "," : "") << values[i];
    out_ << "\n";
    checkStream();
}

void
CsvWriter::close()
{
    if (!out_.is_open())
        return;
    out_.flush();
    checkStream();
    out_.close();
    if (out_.fail())
        throw Exception(ErrorCode::Io,
                        "CsvWriter: close failed for " + path_ +
                            " (file truncated?)");
}

} // namespace mltc
