#include "util/csv.hpp"

#include <sstream>
#include <stdexcept>

#include "util/error.hpp"
#include "util/io.hpp"

namespace mltc {

CsvWriter::CsvWriter(const std::string &path,
                     const std::vector<std::string> &columns)
    : path_(path), columns_(columns.size())
{
    // Probe-open so an unwritable destination fails at construction
    // (where the caller names the artefact), not at commit time deep in
    // a sweep. fopen is never fault-injected, so this probe cannot
    // spuriously kill a chaos run.
    std::FILE *f = FileBackend::instance().open(path, "wb");
    if (!f)
        throw Exception(ErrorCode::Io, "CsvWriter: cannot open " + path);
    FileBackend::instance().close(f);
    for (size_t i = 0; i < columns.size(); ++i) {
        if (i)
            buf_ += ',';
        buf_ += columns[i];
    }
    buf_ += '\n';
}

CsvWriter::~CsvWriter()
{
    try {
        close();
    } catch (...) {
        // Destructor commit is best-effort; close() reports failure.
    }
}

void
CsvWriter::row(const std::vector<double> &values)
{
    if (values.size() != columns_)
        throw std::invalid_argument("CsvWriter: row width mismatch");
    std::ostringstream os;
    for (size_t i = 0; i < values.size(); ++i)
        os << (i ? "," : "") << values[i];
    buf_ += os.str();
    buf_ += '\n';
}

void
CsvWriter::rowStrings(const std::vector<std::string> &values)
{
    if (values.size() != columns_)
        throw std::invalid_argument("CsvWriter: row width mismatch");
    for (size_t i = 0; i < values.size(); ++i) {
        if (i)
            buf_ += ',';
        buf_ += values[i];
    }
    buf_ += '\n';
}

void
CsvWriter::close()
{
    if (closed_)
        return;
    closed_ = true;
    AtomicWriteOptions opts;
    opts.max_attempts = 8;
    opts.durable = false; // CSV artefacts need atomicity, not durability
    atomicWriteFile(path_, buf_.data(), buf_.size(), opts);
}

} // namespace mltc
