#include "util/csv.hpp"

#include <sstream>
#include <stdexcept>

namespace mltc {

CsvWriter::CsvWriter(const std::string &path,
                     const std::vector<std::string> &columns)
    : path_(path), out_(path), columns_(columns.size())
{
    if (!out_)
        throw std::runtime_error("CsvWriter: cannot open " + path);
    for (size_t i = 0; i < columns.size(); ++i)
        out_ << (i ? "," : "") << columns[i];
    out_ << "\n";
}

void
CsvWriter::row(const std::vector<double> &values)
{
    if (values.size() != columns_)
        throw std::invalid_argument("CsvWriter: row width mismatch");
    std::ostringstream os;
    for (size_t i = 0; i < values.size(); ++i)
        os << (i ? "," : "") << values[i];
    out_ << os.str() << "\n";
}

void
CsvWriter::rowStrings(const std::vector<std::string> &values)
{
    if (values.size() != columns_)
        throw std::invalid_argument("CsvWriter: row width mismatch");
    for (size_t i = 0; i < values.size(); ++i)
        out_ << (i ? "," : "") << values[i];
    out_ << "\n";
}

} // namespace mltc
