#include "util/io.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "util/error.hpp"

namespace mltc {

const char *
ioFaultKindName(IoFaultKind kind)
{
    switch (kind) {
    case IoFaultKind::None:
        return "none";
    case IoFaultKind::Eio:
        return "eio";
    case IoFaultKind::Enospc:
        return "enospc";
    case IoFaultKind::ShortWrite:
        return "short_write";
    case IoFaultKind::FsyncFail:
        return "fsync_fail";
    case IoFaultKind::TornRename:
        return "torn_rename";
    }
    return "?";
}

namespace {

/** Kind named by a spec token key; None for an unknown key. */
IoFaultKind
kindForKey(const std::string &key)
{
    if (key == "eio")
        return IoFaultKind::Eio;
    if (key == "enospc")
        return IoFaultKind::Enospc;
    if (key == "short")
        return IoFaultKind::ShortWrite;
    if (key == "fsync")
        return IoFaultKind::FsyncFail;
    if (key == "torn")
        return IoFaultKind::TornRename;
    return IoFaultKind::None;
}

/** Operation class a fault kind injects on. */
IoOp
opForKind(IoFaultKind kind)
{
    switch (kind) {
    case IoFaultKind::FsyncFail:
        return IoOp::Fsync;
    case IoFaultKind::TornRename:
        return IoOp::Rename;
    default:
        return IoOp::Write;
    }
}

double
parseRate(const std::string &token, const std::string &value)
{
    char *end = nullptr;
    errno = 0;
    const double v = std::strtod(value.c_str(), &end);
    if (value.empty() || !end || *end != '\0' || errno != 0 || v < 0.0 ||
        v > 1.0)
        throw Exception(ErrorCode::BadArgument,
                        "--io-faults: '" + token +
                            "': rate must be a number in [0,1]");
    return v;
}

uint64_t
parseCount(const std::string &token, const std::string &value)
{
    char *end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
    if (value.empty() || !end || *end != '\0' || errno != 0 ||
        value[0] == '-')
        throw Exception(ErrorCode::BadArgument,
                        "--io-faults: '" + token +
                            "': expected an unsigned integer");
    return v;
}

} // namespace

IoFaultConfig
parseIoFaultSpec(const std::string &spec)
{
    IoFaultConfig cfg;
    size_t pos = 0;
    while (pos <= spec.size()) {
        const size_t comma = spec.find(',', pos);
        const std::string token =
            spec.substr(pos, comma == std::string::npos ? std::string::npos
                                                        : comma - pos);
        pos = comma == std::string::npos ? spec.size() + 1 : comma + 1;
        if (token.empty())
            continue;

        const size_t eq = token.find('=');
        const size_t colon = token.find(':');
        if (eq != std::string::npos && (colon == std::string::npos ||
                                        eq < colon)) {
            const std::string key = token.substr(0, eq);
            const std::string value = token.substr(eq + 1);
            if (key == "seed") {
                cfg.seed = parseCount(token, value);
                continue;
            }
            const IoFaultKind kind = kindForKey(key);
            const double rate = parseRate(token, value);
            switch (kind) {
            case IoFaultKind::Eio:
                cfg.eio_rate = rate;
                break;
            case IoFaultKind::Enospc:
                cfg.enospc_rate = rate;
                break;
            case IoFaultKind::ShortWrite:
                cfg.short_rate = rate;
                break;
            case IoFaultKind::FsyncFail:
                cfg.fsync_rate = rate;
                break;
            case IoFaultKind::TornRename:
                cfg.torn_rate = rate;
                break;
            default:
                throw Exception(ErrorCode::BadArgument,
                                "--io-faults: unknown fault '" + key +
                                    "' in '" + token + "'");
            }
            continue;
        }
        if (colon != std::string::npos) {
            const std::string key = token.substr(0, colon);
            const IoFaultKind kind = kindForKey(key);
            if (kind == IoFaultKind::None)
                throw Exception(ErrorCode::BadArgument,
                                "--io-faults: unknown fault '" + key +
                                    "' in '" + token + "'");
            const uint64_t nth = parseCount(token, token.substr(colon + 1));
            if (nth == 0)
                throw Exception(ErrorCode::BadArgument,
                                "--io-faults: '" + token +
                                    "': ordinals are 1-based");
            cfg.schedule.push_back({kind, nth});
            continue;
        }
        throw Exception(ErrorCode::BadArgument,
                        "--io-faults: malformed token '" + token +
                            "' (want key=rate, key:N or seed=S)");
    }
    return cfg;
}

IoFaultInjector::IoFaultInjector(const IoFaultConfig &config)
    : cfg_(config), rng_(config.seed)
{
}

IoFaultKind
IoFaultInjector::decide(IoOp op)
{
    uint64_t ordinal = 0;
    switch (op) {
    case IoOp::Write:
        ordinal = ++stats_.writes;
        break;
    case IoOp::Fsync:
        ordinal = ++stats_.fsyncs;
        break;
    case IoOp::Rename:
        ordinal = ++stats_.renames;
        break;
    }

    // One uniform draw per adjudication, consumed unconditionally, so
    // the PRNG stream (and with it the whole scenario) does not depend
    // on which rates are enabled.
    const double u = rng_.uniform();

    IoFaultKind kind = IoFaultKind::None;
    for (const IoFaultConfig::ScheduleEntry &e : cfg_.schedule)
        if (opForKind(e.kind) == op && e.nth == ordinal) {
            kind = e.kind;
            break;
        }
    if (kind == IoFaultKind::None) {
        switch (op) {
        case IoOp::Write:
            if (u < cfg_.eio_rate)
                kind = IoFaultKind::Eio;
            else if (u < cfg_.eio_rate + cfg_.enospc_rate)
                kind = IoFaultKind::Enospc;
            else if (u < cfg_.eio_rate + cfg_.enospc_rate + cfg_.short_rate)
                kind = IoFaultKind::ShortWrite;
            break;
        case IoOp::Fsync:
            if (u < cfg_.fsync_rate)
                kind = IoFaultKind::FsyncFail;
            break;
        case IoOp::Rename:
            if (u < cfg_.torn_rate)
                kind = IoFaultKind::TornRename;
            break;
        }
    }

    switch (kind) {
    case IoFaultKind::Eio:
        ++stats_.eio;
        break;
    case IoFaultKind::Enospc:
        ++stats_.enospc;
        break;
    case IoFaultKind::ShortWrite:
        ++stats_.short_writes;
        break;
    case IoFaultKind::FsyncFail:
        ++stats_.fsync_failures;
        break;
    case IoFaultKind::TornRename:
        ++stats_.torn_renames;
        break;
    case IoFaultKind::None:
        break;
    }
    return kind;
}

FileBackend &
FileBackend::instance()
{
    static FileBackend backend;
    return backend;
}

void
FileBackend::installInjector(IoFaultInjector *injector)
{
    std::lock_guard<std::mutex> lock(mutex_);
    injector_ = injector;
}

IoFaultInjector *
FileBackend::injector() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return injector_;
}

std::FILE *
FileBackend::open(const std::string &path, const char *mode)
{
    return std::fopen(path.c_str(), mode);
}

bool
FileBackend::write(std::FILE *f, const void *data, size_t size)
{
    IoFaultKind kind = IoFaultKind::None;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (injector_)
            kind = injector_->decide(IoOp::Write);
    }
    switch (kind) {
    case IoFaultKind::Eio:
        errno = EIO;
        return false;
    case IoFaultKind::Enospc:
        errno = ENOSPC;
        return false;
    case IoFaultKind::ShortWrite:
        // A prefix really lands, as a partial fwrite would leave it.
        std::fwrite(data, 1, size / 2, f);
        errno = EIO;
        return false;
    default:
        break;
    }
    if (size == 0)
        return true;
    return std::fwrite(data, 1, size, f) == size;
}

bool
FileBackend::flush(std::FILE *f)
{
    return std::fflush(f) == 0;
}

bool
FileBackend::sync(std::FILE *f)
{
    IoFaultKind kind = IoFaultKind::None;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (injector_)
            kind = injector_->decide(IoOp::Fsync);
    }
    if (std::fflush(f) != 0)
        return false;
    if (kind == IoFaultKind::FsyncFail) {
        errno = EIO;
        return false;
    }
    return ::fsync(fileno(f)) == 0;
}

bool
FileBackend::close(std::FILE *f)
{
    return std::fclose(f) == 0;
}

bool
FileBackend::rename(const std::string &from, const std::string &to)
{
    IoFaultKind kind = IoFaultKind::None;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (injector_)
            kind = injector_->decide(IoOp::Rename);
    }
    if (kind == IoFaultKind::TornRename) {
        // Model the crash-consistent worst case: the directory entry
        // points at a half-written destination and the source is gone.
        std::FILE *src = std::fopen(from.c_str(), "rb");
        if (src) {
            std::fseek(src, 0, SEEK_END);
            const long size = std::ftell(src);
            std::fseek(src, 0, SEEK_SET);
            std::vector<uint8_t> bytes(
                size > 0 ? static_cast<size_t>(size) / 2 : 0);
            if (!bytes.empty() &&
                std::fread(bytes.data(), 1, bytes.size(), src) !=
                    bytes.size())
                bytes.clear();
            std::fclose(src);
            if (std::FILE *dst = std::fopen(to.c_str(), "wb")) {
                if (!bytes.empty())
                    std::fwrite(bytes.data(), 1, bytes.size(), dst);
                std::fclose(dst);
            }
            std::remove(from.c_str());
        }
        errno = EIO;
        return false;
    }
    return std::rename(from.c_str(), to.c_str()) == 0;
}

void
FileBackend::remove(const std::string &path)
{
    std::remove(path.c_str());
}

bool
FileBackend::exists(const std::string &path) const
{
    return ::access(path.c_str(), F_OK) == 0;
}

bool
FileBackend::syncDir(const std::string &child)
{
    IoFaultKind kind = IoFaultKind::None;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (injector_)
            kind = injector_->decide(IoOp::Fsync);
    }
    if (kind == IoFaultKind::FsyncFail) {
        errno = EIO;
        return false;
    }
    const size_t slash = child.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : child.substr(0, slash);
    const int fd = ::open(dir.empty() ? "/" : dir.c_str(),
                          O_RDONLY | O_DIRECTORY);
    if (fd < 0)
        return false;
    const bool ok = ::fsync(fd) == 0;
    ::close(fd);
    return ok;
}

void
atomicWriteFile(const std::string &path, const void *data, size_t size,
                const AtomicWriteOptions &opts)
{
    FileBackend &be = FileBackend::instance();
    const std::string tmp = path + ".tmp";
    const std::string prev = path + kPreviousGenerationSuffix;
    std::string last_error = "no attempts made";
    // Rotate the previous generation at most once per commit: if the
    // final rename tears and leaves a truncated destination, a retry
    // must not clobber the good .prev with that garbage.
    bool rotated = false;

    for (int attempt = 0; attempt < std::max(1, opts.max_attempts);
         ++attempt) {
        std::FILE *f = be.open(tmp, "wb");
        if (!f) {
            last_error = "cannot open " + tmp + ": " +
                         std::string(std::strerror(errno));
            continue;
        }
        bool ok = be.write(f, data, size);
        if (ok && opts.durable)
            ok = be.sync(f);
        else if (ok)
            ok = be.flush(f);
        const int saved_errno = ok ? 0 : errno;
        ok = be.close(f) && ok;
        if (!ok) {
            be.remove(tmp);
            last_error = "write/sync failed for " + tmp + ": " +
                         std::string(std::strerror(
                             saved_errno ? saved_errno : errno));
            continue;
        }
        if (opts.keep_previous && !rotated && be.exists(path)) {
            if (be.rename(path, prev))
                rotated = true;
            else {
                // The destination may now be torn; the commit below
                // still replaces it, so only the old generation is at
                // risk — carry on rather than fail the commit.
                rotated = true;
            }
        }
        if (!be.rename(tmp, path)) {
            be.remove(tmp);
            last_error = "cannot rename " + tmp + " to " + path + ": " +
                         std::string(std::strerror(errno));
            continue;
        }
        if (opts.durable && !be.syncDir(path)) {
            // The data is committed under the final name; only the
            // directory entry's durability is in doubt. Re-commit so a
            // crash cannot lose it.
            last_error = "cannot fsync parent directory of " + path + ": " +
                         std::string(std::strerror(errno));
            continue;
        }
        return;
    }
    throw Exception(ErrorCode::Io, "atomicWriteFile: " + last_error +
                                       " (after " +
                                       std::to_string(std::max(
                                           1, opts.max_attempts)) +
                                       " attempts)");
}

namespace {

/** Owns the process-lifetime injector installed from the CLI. */
std::unique_ptr<IoFaultInjector> g_process_injector;
std::mutex g_process_injector_mutex;

} // namespace

IoFaultInjector &
installProcessIoFaults(const IoFaultConfig &config)
{
    std::lock_guard<std::mutex> lock(g_process_injector_mutex);
    auto injector = std::make_unique<IoFaultInjector>(config);
    FileBackend::instance().installInjector(injector.get());
    g_process_injector = std::move(injector);
    return *g_process_injector;
}

void
clearProcessIoFaults()
{
    std::lock_guard<std::mutex> lock(g_process_injector_mutex);
    FileBackend::instance().installInjector(nullptr);
    g_process_injector.reset();
}

bool
installIoFaultsFromCli(const CommandLine &cli)
{
    if (!cli.has("io-faults"))
        return false;
    const std::string spec = cli.getString("io-faults", "");
    if (spec.empty())
        throw Exception(ErrorCode::BadArgument,
                        "--io-faults: expected a fault spec "
                        "(e.g. eio=0.02,fsync=0.05,torn:3,seed=7)");
    const IoFaultConfig cfg = parseIoFaultSpec(spec);
    installProcessIoFaults(cfg);
    return true;
}

} // namespace mltc
