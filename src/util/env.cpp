#include "util/env.hpp"

#include <cstdlib>

namespace mltc {

long
envInt(const char *name, long def)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return def;
    char *end = nullptr;
    long out = std::strtol(v, &end, 10);
    return (end && *end == '\0') ? out : def;
}

std::string
envString(const char *name, const std::string &def)
{
    const char *v = std::getenv(name);
    return (v && *v) ? v : def;
}

int
benchFrameCount(int bench_default)
{
    return static_cast<int>(envInt("MLTC_FRAMES", bench_default));
}

std::string
benchOutputDir()
{
    return envString("MLTC_OUT_DIR", ".");
}

} // namespace mltc
