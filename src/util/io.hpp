/**
 * @file
 * Fault-injectable file I/O layer: every byte the system persists
 * (snapshots, CSVs, metrics/trace JSONL, manifests) flows through the
 * process-global FileBackend, so disk failures are a first-class,
 * deterministically injectable fault domain exactly like the host
 * download path (host/fault_injector.hpp, docs/fault_model.md).
 *
 * The injector adjudicates every write / fsync / rename *attempt* from
 * a seeded PRNG plus a deterministic nth-operation schedule, so an I/O
 * fault scenario is a pure function of (seed, op ordinal) and any chaos
 * run can be replayed bit-identically. Injected failures surface
 * exactly like real ones — errno set, failure return — so the recovery
 * ladder above (retry, atomic re-commit, generational fallback,
 * skip-with-backoff, sink self-disable) is proven against the same
 * paths a real full disk or dying device would take.
 */
#ifndef MLTC_UTIL_IO_HPP
#define MLTC_UTIL_IO_HPP

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/cli.hpp"
#include "util/rng.hpp"

namespace mltc {

/** What the injector decrees for one file-system operation attempt. */
enum class IoFaultKind : uint8_t
{
    None,       ///< the operation runs against the real filesystem
    Eio,        ///< write fails outright (errno EIO), nothing lands
    Enospc,     ///< write fails with errno ENOSPC, nothing lands
    ShortWrite, ///< only a prefix of the bytes lands, then failure
    FsyncFail,  ///< fsync (file or directory) reports EIO
    TornRename, ///< rename leaves a truncated destination, source gone
};

/** Stable name of @p kind for logs and stats tables. */
const char *ioFaultKindName(IoFaultKind kind);

/** Operation classes the injector adjudicates. */
enum class IoOp : uint8_t
{
    Write,  ///< buffered data write (fwrite)
    Fsync,  ///< durability barrier (fflush + fsync, file or directory)
    Rename, ///< atomic-commit rename
};

/**
 * A seeded I/O fault scenario. All-zero rates with an empty schedule
 * model a perfect disk. Rates apply per eligible operation; schedule
 * entries deterministically fail the Nth (1-based) operation of the
 * matching class regardless of the rates.
 */
struct IoFaultConfig
{
    uint64_t seed = 42;        ///< PRNG seed; same seed => same storm
    double eio_rate = 0.0;     ///< P(write fails with EIO)
    double enospc_rate = 0.0;  ///< P(write fails with ENOSPC)
    double short_rate = 0.0;   ///< P(write lands only a prefix)
    double fsync_rate = 0.0;   ///< P(fsync fails)
    double torn_rate = 0.0;    ///< P(rename is torn)

    /** Deterministic one-shot: fail the Nth op of the kind's class. */
    struct ScheduleEntry
    {
        IoFaultKind kind = IoFaultKind::None;
        uint64_t nth = 0; ///< 1-based ordinal within the op class
    };
    std::vector<ScheduleEntry> schedule;

    /** True when any fault source is active. */
    bool
    anyFaults() const
    {
        return eio_rate > 0.0 || enospc_rate > 0.0 || short_rate > 0.0 ||
               fsync_rate > 0.0 || torn_rate > 0.0 || !schedule.empty();
    }
};

/**
 * Parse the --io-faults spec grammar: a comma-separated list of
 *
 *   eio=R | enospc=R | short=R | fsync=R | torn=R   rates in [0,1]
 *   eio:N | enospc:N | short:N | fsync:N | torn:N   fail the Nth op
 *   seed=S                                          PRNG seed
 *
 * e.g. "eio=0.02,fsync=0.05,torn:3,seed=7". See docs/fault_model.md.
 * @throws mltc::Exception (BadArgument) naming the malformed token.
 */
IoFaultConfig parseIoFaultSpec(const std::string &spec);

/** Cumulative injector counters (process-wide, across all files). */
struct IoFaultStats
{
    uint64_t writes = 0;  ///< write ops adjudicated
    uint64_t fsyncs = 0;  ///< fsync ops adjudicated
    uint64_t renames = 0; ///< rename ops adjudicated
    uint64_t eio = 0;
    uint64_t enospc = 0;
    uint64_t short_writes = 0;
    uint64_t fsync_failures = 0;
    uint64_t torn_renames = 0;

    uint64_t
    injected() const
    {
        return eio + enospc + short_writes + fsync_failures + torn_renames;
    }
};

/**
 * The injector proper. Externally synchronized: FileBackend holds its
 * own mutex around every decide() call, so the adjudication order — and
 * with it the scenario — is a single process-wide sequence.
 */
class IoFaultInjector
{
  public:
    explicit IoFaultInjector(const IoFaultConfig &config);

    /** Adjudicate the next operation of class @p op. */
    IoFaultKind decide(IoOp op);

    const IoFaultConfig &config() const { return cfg_; }
    const IoFaultStats &stats() const { return stats_; }

  private:
    IoFaultConfig cfg_;
    Rng rng_;
    IoFaultStats stats_;
};

/**
 * Process-global shim between the persistence layers and the
 * filesystem. Without an installed injector every method is a thin
 * checked wrapper over stdio/POSIX; with one, write/fsync/rename
 * attempts are adjudicated first and injected failures are
 * indistinguishable from real ones at the call site.
 *
 * Thread-safe: a single internal mutex orders all adjudications (the
 * underlying stdio calls are themselves thread-safe; the mutex exists
 * to keep the injector's decision stream a single sequence).
 */
class FileBackend
{
  public:
    static FileBackend &instance();

    /** Install @p injector (not owned; null uninstalls). */
    void installInjector(IoFaultInjector *injector);

    /** The installed injector, null when faults are off. */
    IoFaultInjector *injector() const;

    /** fopen; never injected (the fault model covers data paths). */
    std::FILE *open(const std::string &path, const char *mode);

    /** Write all @p size bytes. False on failure (errno says why). */
    bool write(std::FILE *f, const void *data, size_t size);

    /** fflush. */
    bool flush(std::FILE *f);

    /** Durability barrier: fflush + fsync. */
    bool sync(std::FILE *f);

    /** fclose; false when the close itself reports failure. */
    bool close(std::FILE *f);

    /** Atomic-commit rename. A torn rename (injected) leaves the
     *  destination truncated and removes the source — the on-disk state
     *  a crash between the metadata and data updates would leave. */
    bool rename(const std::string &from, const std::string &to);

    /** Best-effort unlink. */
    void remove(const std::string &path);

    /** True when @p path exists. */
    bool exists(const std::string &path) const;

    /** fsync the parent directory of @p child, making a completed
     *  rename durable (adjudicated as an Fsync op). */
    bool syncDir(const std::string &child);

  private:
    FileBackend() = default;

    mutable std::mutex mutex_;
    IoFaultInjector *injector_ = nullptr;
};

/** Suffix of the previous snapshot generation (see atomicWriteFile). */
inline constexpr const char *kPreviousGenerationSuffix = ".prev";

/** Commit policy for atomicWriteFile. */
struct AtomicWriteOptions
{
    /** Whole-commit attempts before giving up (injected or real). */
    int max_attempts = 6;
    /** Rotate an existing destination to `<path>.prev` first, so the
     *  last good generation survives a torn commit. */
    bool keep_previous = false;
    /** fsync the file and its directory (checkpoints yes, CSVs no). */
    bool durable = true;
};

/**
 * Atomically replace @p path with @p size bytes: write `<path>.tmp`,
 * optionally fsync, rotate the previous generation when requested,
 * rename into place, optionally fsync the parent directory. Any failed
 * step discards the tmp file and retries the whole commit, so the final
 * bytes are independent of which attempts faulted.
 * @throws mltc::Exception (Io) naming the path once attempts exhaust.
 */
void atomicWriteFile(const std::string &path, const void *data, size_t size,
                     const AtomicWriteOptions &opts = {});

/**
 * Parse --io-faults=SPEC and install a process-lifetime injector on the
 * global FileBackend (replacing any previous one). Returns true when a
 * scenario was installed.
 * @throws mltc::Exception (BadArgument) on a malformed spec.
 */
bool installIoFaultsFromCli(const CommandLine &cli);

/** Install @p config as the process-lifetime scenario (tests/benches). */
IoFaultInjector &installProcessIoFaults(const IoFaultConfig &config);

/** Uninstall the process-lifetime injector (faults off). */
void clearProcessIoFaults();

} // namespace mltc

#endif // MLTC_UTIL_IO_HPP
