#include "util/http.hpp"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/error.hpp"

namespace mltc {

namespace {

const char *
statusReason(int status)
{
    switch (status) {
    case 200:
        return "OK";
    case 404:
        return "Not Found";
    case 405:
        return "Method Not Allowed";
    case 500:
        return "Internal Server Error";
    }
    return "Unknown";
}

/** Write all of @p data to @p fd; false on any failure. */
bool
sendAll(int fd, const char *data, size_t size)
{
    size_t off = 0;
    while (off < size) {
        const ssize_t n =
            ::send(fd, data + off, size - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<size_t>(n);
    }
    return true;
}

void
setRecvTimeout(int fd, int ms)
{
    timeval tv;
    tv.tv_sec = ms / 1000;
    tv.tv_usec = (ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
}

} // namespace

HttpServer::~HttpServer()
{
    stop();
}

void
HttpServer::start(uint16_t port, HttpHandler handler)
{
    if (running_.load())
        throw Exception(ErrorCode::BadArgument,
                        "HttpServer: already started");
    handler_ = std::move(handler);

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        throw Exception(ErrorCode::Io,
                        std::string("HttpServer: socket: ") +
                            std::strerror(errno));
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof addr) != 0) {
        const int err = errno;
        ::close(fd);
        throw Exception(ErrorCode::Io,
                        "HttpServer: cannot bind 127.0.0.1:" +
                            std::to_string(port) + ": " +
                            std::strerror(err));
    }
    if (::listen(fd, 8) != 0) {
        const int err = errno;
        ::close(fd);
        throw Exception(ErrorCode::Io,
                        std::string("HttpServer: listen: ") +
                            std::strerror(err));
    }

    socklen_t len = sizeof addr;
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&addr), &len) !=
        0) {
        const int err = errno;
        ::close(fd);
        throw Exception(ErrorCode::Io,
                        std::string("HttpServer: getsockname: ") +
                            std::strerror(err));
    }
    listen_fd_ = fd;
    port_ = ntohs(addr.sin_port);
    running_.store(true);
    thread_ = std::thread([this]() { serveLoop(); });
}

void
HttpServer::stop()
{
    if (!running_.exchange(false)) {
        if (thread_.joinable())
            thread_.join();
        return;
    }
    // The serving thread polls with a short timeout and re-checks
    // running_, so it exits within one poll interval.
    if (thread_.joinable())
        thread_.join();
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
}

void
HttpServer::serveLoop()
{
    while (running_.load()) {
        pollfd pfd{};
        pfd.fd = listen_fd_;
        pfd.events = POLLIN;
        const int n = ::poll(&pfd, 1, 100 /* ms */);
        if (n <= 0)
            continue; // timeout, EINTR — re-check running_
        if (!(pfd.revents & POLLIN))
            continue;
        const int client = ::accept(listen_fd_, nullptr, nullptr);
        if (client < 0)
            continue;
        handleClient(client);
        ::close(client);
    }
}

void
HttpServer::handleClient(int fd)
{
    // Read until the end of the header block (or a small cap — the
    // telemetry endpoints take no bodies, so 8 KB is generous).
    setRecvTimeout(fd, 2000);
    std::string raw;
    char buf[1024];
    while (raw.size() < 8192 &&
           raw.find("\r\n\r\n") == std::string::npos &&
           raw.find("\n\n") == std::string::npos) {
        const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            break;
        }
        raw.append(buf, static_cast<size_t>(n));
    }

    HttpRequest req;
    const size_t eol = raw.find_first_of("\r\n");
    const std::string line =
        eol == std::string::npos ? raw : raw.substr(0, eol);
    const size_t sp1 = line.find(' ');
    const size_t sp2 =
        sp1 == std::string::npos ? std::string::npos
                                 : line.find(' ', sp1 + 1);
    HttpResponse resp;
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
        resp.status = 500;
        resp.body = "malformed request\n";
    } else {
        req.method = line.substr(0, sp1);
        req.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
        try {
            resp = handler_(req);
        } catch (const std::exception &e) {
            resp = HttpResponse{};
            resp.status = 500;
            resp.body = std::string("handler error: ") + e.what() + "\n";
        } catch (...) {
            resp = HttpResponse{};
            resp.status = 500;
            resp.body = "handler error\n";
        }
    }

    std::string head = "HTTP/1.0 " + std::to_string(resp.status) + " " +
                       statusReason(resp.status) +
                       "\r\nContent-Type: " + resp.content_type +
                       "\r\nContent-Length: " +
                       std::to_string(resp.body.size()) +
                       "\r\nConnection: close\r\n\r\n";
    if (sendAll(fd, head.data(), head.size()))
        sendAll(fd, resp.body.data(), resp.body.size());
    served_.fetch_add(1);
}

std::string
httpGet(uint16_t port, const std::string &target, int *status_out,
        int timeout_ms)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        throw Exception(ErrorCode::Io,
                        std::string("httpGet: socket: ") +
                            std::strerror(errno));
    setRecvTimeout(fd, timeout_ms);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof addr) != 0) {
        const int err = errno;
        ::close(fd);
        throw Exception(ErrorCode::Io,
                        "httpGet: cannot connect to 127.0.0.1:" +
                            std::to_string(port) + ": " +
                            std::strerror(err));
    }

    const std::string request =
        "GET " + target + " HTTP/1.0\r\nHost: 127.0.0.1\r\n\r\n";
    if (!sendAll(fd, request.data(), request.size())) {
        const int err = errno;
        ::close(fd);
        throw Exception(ErrorCode::Io,
                        std::string("httpGet: send: ") +
                            std::strerror(err));
    }

    std::string raw;
    char buf[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            const int err = errno;
            ::close(fd);
            throw Exception(ErrorCode::Io,
                            std::string("httpGet: recv: ") +
                                std::strerror(err));
        }
        if (n == 0)
            break;
        raw.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);

    // "HTTP/1.0 200 OK\r\n...headers...\r\n\r\nbody"
    if (raw.compare(0, 5, "HTTP/") != 0)
        throw Exception(ErrorCode::Io, "httpGet: not an HTTP response");
    const size_t sp = raw.find(' ');
    if (sp == std::string::npos)
        throw Exception(ErrorCode::Io, "httpGet: malformed status line");
    if (status_out)
        *status_out = std::atoi(raw.c_str() + sp + 1);
    size_t body = raw.find("\r\n\r\n");
    size_t skip = 4;
    if (body == std::string::npos) {
        body = raw.find("\n\n");
        skip = 2;
    }
    if (body == std::string::npos)
        throw Exception(ErrorCode::Io, "httpGet: no header terminator");
    return raw.substr(body + skip);
}

} // namespace mltc
