/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * Workloads must be exactly reproducible across runs and platforms, so we
 * use our own SplitMix64/xoshiro256** implementation rather than the
 * standard library engines (whose distributions are not
 * implementation-defined-stable).
 */
#ifndef MLTC_UTIL_RNG_HPP
#define MLTC_UTIL_RNG_HPP

#include <cstdint>

namespace mltc {

/**
 * xoshiro256** PRNG seeded via SplitMix64.
 *
 * Deterministic across platforms; adequate statistical quality for
 * procedural geometry and texture synthesis.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded through SplitMix64). */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

    /** Re-initialise state from @p seed. */
    void
    reseed(uint64_t seed)
    {
        uint64_t x = seed;
        for (auto &word : state_)
            word = splitMix64(x);
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform float in [lo, hi). */
    float
    uniformf(float lo, float hi)
    {
        return lo + (hi - lo) * static_cast<float>(uniform());
    }

    /** Uniform integer in [0, n); n must be > 0. */
    uint64_t
    below(uint64_t n)
    {
        // Multiply-shift rejection-free mapping; bias is negligible for
        // the small ranges used in workload synthesis.
        return static_cast<uint64_t>(
            (static_cast<__uint128_t>(next()) * n) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int
    range(int lo, int hi)
    {
        return lo + static_cast<int>(below(static_cast<uint64_t>(hi - lo + 1)));
    }

    /** Bernoulli draw with probability @p p of returning true. */
    bool chance(double p) { return uniform() < p; }

    /**
     * Copy the raw engine state (exactly 4 words) for checkpointing;
     * restoring it with loadState() resumes the stream bit-identically.
     */
    void
    saveState(uint64_t out[4]) const
    {
        for (int i = 0; i < 4; ++i)
            out[i] = state_[i];
    }

    /** Restore engine state captured by saveState(). */
    void
    loadState(const uint64_t in[4])
    {
        for (int i = 0; i < 4; ++i)
            state_[i] = in[i];
    }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    static uint64_t
    splitMix64(uint64_t &x)
    {
        uint64_t z = (x += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    uint64_t state_[4] = {};
};

} // namespace mltc

#endif // MLTC_UTIL_RNG_HPP
