#include "util/build_info.hpp"

#include <cstdio>
#include <cstring>
#include <thread>

namespace mltc {

namespace {

#ifndef MLTC_GIT_SHA
#define MLTC_GIT_SHA "unknown"
#endif
#ifndef MLTC_BUILD_FLAGS
#define MLTC_BUILD_FLAGS "unknown"
#endif

std::string
compilerIdent()
{
#if defined(__clang__)
    return "clang " + std::to_string(__clang_major__) + "." +
           std::to_string(__clang_minor__) + "." +
           std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
    return "gcc " + std::to_string(__GNUC__) + "." +
           std::to_string(__GNUC_MINOR__) + "." +
           std::to_string(__GNUC_PATCHLEVEL__);
#else
    return "unknown";
#endif
}

/** First "model name : ..." line of /proc/cpuinfo, if the OS has one. */
std::string
cpuModel()
{
    std::FILE *f = std::fopen("/proc/cpuinfo", "r");
    if (!f)
        return "unknown";
    char line[512];
    std::string model = "unknown";
    while (std::fgets(line, sizeof(line), f)) {
        if (std::strncmp(line, "model name", 10) != 0)
            continue;
        const char *colon = std::strchr(line, ':');
        if (!colon)
            continue;
        ++colon;
        while (*colon == ' ' || *colon == '\t')
            ++colon;
        model = colon;
        while (!model.empty() &&
               (model.back() == '\n' || model.back() == '\r'))
            model.pop_back();
        break;
    }
    std::fclose(f);
    return model;
}

BuildInfo
resolve()
{
    BuildInfo info;
    info.git_sha = MLTC_GIT_SHA;
    info.compiler = compilerIdent();
    info.flags = MLTC_BUILD_FLAGS;
    info.cpu_model = cpuModel();
    info.cores = std::thread::hardware_concurrency();
    return info;
}

} // namespace

const BuildInfo &
buildInfo()
{
    static const BuildInfo info = resolve();
    return info;
}

void
appendBuildInfo(JsonWriter &w)
{
    const BuildInfo &b = buildInfo();
    w.beginObject()
        .kv("git_sha", b.git_sha)
        .kv("compiler", b.compiler)
        .kv("flags", b.flags)
        .kv("cpu_model", b.cpu_model)
        .kv("cores", static_cast<uint64_t>(b.cores))
        .endObject();
}

std::string
buildInfoJson()
{
    JsonWriter w;
    appendBuildInfo(w);
    return w.str();
}

} // namespace mltc
