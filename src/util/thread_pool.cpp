#include "util/thread_pool.hpp"

#include <algorithm>

#include "util/env.hpp"

namespace mltc {

namespace {

/**
 * Identifies the pool (and worker slot) the current thread belongs to,
 * so nested submits can go to the submitting worker's own deque.
 */
thread_local ThreadPool *t_pool = nullptr;
thread_local unsigned t_worker = 0;

} // namespace

unsigned
ThreadPool::defaultJobs()
{
    long env = envInt("MLTC_JOBS", 0);
    if (env > 0)
        return static_cast<unsigned>(env);
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(unsigned workers)
{
    if (workers == 0)
        workers = defaultJobs();
    queues_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        queues_.push_back(std::make_unique<WorkerQueue>());
    workers_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        workers_.emplace_back([this, i]() { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_work_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
ThreadPool::post(std::function<void()> fn)
{
    if (t_pool == this) {
        WorkerQueue &q = *queues_[t_worker];
        std::lock_guard<std::mutex> lock(q.mutex);
        q.jobs.push_back(std::move(fn));
    } else {
        std::lock_guard<std::mutex> lock(mutex_);
        injected_.push_back(std::move(fn));
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++queued_;
        ++unfinished_;
    }
    cv_work_.notify_one();
}

std::function<void()>
ThreadPool::findJob(unsigned self)
{
    // Own deque first, newest task (LIFO keeps nested work hot).
    {
        WorkerQueue &q = *queues_[self];
        std::lock_guard<std::mutex> lock(q.mutex);
        if (!q.jobs.empty()) {
            std::function<void()> fn = std::move(q.jobs.back());
            q.jobs.pop_back();
            return fn;
        }
    }
    // Then the global injection queue, oldest first.
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!injected_.empty()) {
            std::function<void()> fn = std::move(injected_.front());
            injected_.pop_front();
            return fn;
        }
    }
    // Finally steal from a sibling's front (FIFO — oldest, least likely
    // to be what the victim touches next).
    const unsigned n = static_cast<unsigned>(queues_.size());
    for (unsigned off = 1; off < n; ++off) {
        WorkerQueue &q = *queues_[(self + off) % n];
        std::lock_guard<std::mutex> lock(q.mutex);
        if (!q.jobs.empty()) {
            std::function<void()> fn = std::move(q.jobs.front());
            q.jobs.pop_front();
            return fn;
        }
    }
    return nullptr;
}

void
ThreadPool::workerLoop(unsigned self)
{
    t_pool = this;
    t_worker = self;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_work_.wait(lock,
                          [this]() { return stop_ || queued_ > 0; });
            if (queued_ == 0) {
                if (stop_)
                    return; // drained: no queued work left anywhere
                continue;
            }
        }
        std::function<void()> fn = findJob(self);
        if (!fn)
            continue; // a sibling got there first; re-wait
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --queued_;
        }
        fn(); // packaged_task: exceptions land in the future
        bool idle = false;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            idle = --unfinished_ == 0;
        }
        if (idle)
            cv_idle_.notify_all();
        // More work may remain; make sure no sibling sleeps through it.
        cv_work_.notify_one();
    }
}

void
ThreadPool::waitIdle()
{
    std::unique_lock<std::mutex> lock(mutex_);
    cv_idle_.wait(lock, [this]() { return unfinished_ == 0; });
}

} // namespace mltc
