/**
 * @file
 * Small work-stealing thread pool for coarse-grained sweep legs.
 *
 * Each worker owns a deque: the owner pushes/pops at the back (LIFO,
 * cache-friendly for nested submits) while idle workers steal from the
 * front (FIFO, oldest-first). External threads inject through a global
 * queue. Tasks are type-erased closures; submit() returns a
 * std::future so exceptions thrown inside a task propagate to whoever
 * awaits it instead of terminating the process.
 *
 * The pool is intended for leg-level parallelism (one task == one
 * complete simulation leg, seconds of work), so queues are plain
 * mutex-protected deques — contention is unmeasurable at that grain
 * and the simple locking is trivially ThreadSanitizer-clean.
 *
 * Shutdown drains: the destructor lets queued tasks finish before
 * joining, so dropping a pool never loses submitted work.
 */
#ifndef MLTC_UTIL_THREAD_POOL_HPP
#define MLTC_UTIL_THREAD_POOL_HPP

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace mltc {

class ThreadPool
{
public:
    /** Spin up @p workers threads; 0 means defaultJobs(). */
    explicit ThreadPool(unsigned workers = 0);

    /** Drains every queued task, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned workerCount() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /**
     * Queue @p fn for execution. The returned future yields fn's result
     * and rethrows anything fn throws. Safe from any thread, including
     * from inside a running task (nested submits go to the submitting
     * worker's own deque).
     */
    template <typename F>
    auto submit(F &&fn) -> std::future<std::invoke_result_t<F>>
    {
        using R = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        std::future<R> fut = task->get_future();
        post([task]() { (*task)(); });
        return fut;
    }

    /** Block until every task submitted so far has run to completion. */
    void waitIdle();

    /**
     * Worker count policy shared by every --jobs consumer: the MLTC_JOBS
     * environment variable when set to a positive integer, otherwise
     * std::thread::hardware_concurrency() (minimum 1).
     */
    static unsigned defaultJobs();

private:
    struct WorkerQueue
    {
        std::mutex mutex;
        std::deque<std::function<void()>> jobs;
    };

    void post(std::function<void()> fn);
    void workerLoop(unsigned self);
    std::function<void()> findJob(unsigned self);

    std::vector<std::unique_ptr<WorkerQueue>> queues_;
    std::vector<std::thread> workers_;

    std::mutex mutex_; ///< guards queued_/unfinished_/stop_ + global queue
    std::condition_variable cv_work_;
    std::condition_variable cv_idle_;
    std::deque<std::function<void()>> injected_;
    size_t queued_ = 0;     ///< tasks sitting in some queue
    size_t unfinished_ = 0; ///< tasks queued or currently running
    bool stop_ = false;
};

} // namespace mltc

#endif // MLTC_UTIL_THREAD_POOL_HPP
