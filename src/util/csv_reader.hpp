/**
 * @file
 * CSV reading for post-processing the bench artifacts (the counterpart
 * of CsvWriter): header-aware, numeric column extraction, summary
 * statistics.
 */
#ifndef MLTC_UTIL_CSV_READER_HPP
#define MLTC_UTIL_CSV_READER_HPP

#include <string>
#include <vector>

namespace mltc {

/** A parsed CSV: header plus string cells, rectangular. */
class CsvTable
{
  public:
    /**
     * Parse @p path.
     * @throws mltc::Exception — Io (cannot open), Truncated (empty, or
     *         the file does not end in a newline — a crashed writer's
     *         partial artefact), Corrupt (ragged row). Exception
     *         derives std::runtime_error, so legacy catch sites work.
     */
    static CsvTable load(const std::string &path);

    /**
     * Parse CSV text directly (for tests). Same shape errors as load()
     * but no trailing-newline requirement (string literals in tests
     * routinely omit it).
     */
    static CsvTable parse(const std::string &text);

    const std::vector<std::string> &header() const { return header_; }

    size_t rowCount() const { return rows_.size(); }

    size_t columnCount() const { return header_.size(); }

    /** Cell (row, col) as text. */
    const std::string &cell(size_t row, size_t col) const;

    /**
     * Index of the column named @p name.
     * @return -1 when absent.
     */
    int columnIndex(const std::string &name) const;

    /**
     * Column @p name parsed as doubles; non-numeric cells become NaN.
     * @throws std::invalid_argument for unknown columns.
     */
    std::vector<double> numericColumn(const std::string &name) const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Summary statistics of a numeric series (NaNs skipped). */
struct SeriesSummary
{
    size_t count = 0;
    double min = 0;
    double max = 0;
    double mean = 0;
    double total = 0;
};

/** Summarise @p values, ignoring NaNs. */
SeriesSummary summarize(const std::vector<double> &values);

} // namespace mltc

#endif // MLTC_UTIL_CSV_READER_HPP
