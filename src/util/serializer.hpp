/**
 * @file
 * Crash-safe binary snapshot serialization for checkpoint/resume.
 *
 * A snapshot is a single file: an 8-byte magic, a format version, the
 * payload length and a CRC32 over the payload, then the payload itself.
 * SnapshotWriter buffers the payload in memory and commits it atomically
 * (`tmp + fsync + rename`), so a crash mid-write can never leave a
 * half-written checkpoint under the final name. SnapshotReader validates
 * magic, version and CRC up front and bounds-checks every read, so a
 * truncated or bit-flipped file yields a typed mltc::Exception — never a
 * crash or silently-loaded garbage (see docs/checkpoint_format.md).
 *
 * Components serialize themselves with `save(SnapshotWriter&)` /
 * `load(SnapshotReader&)` member functions, each framed by a section tag
 * so a mismatched or reordered stream fails naming the structure.
 */
#ifndef MLTC_UTIL_SERIALIZER_HPP
#define MLTC_UTIL_SERIALIZER_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace mltc {

/** Snapshot format version; bump on any layout change. */
constexpr uint32_t kSnapshotVersion = 5;

/** CRC32 (IEEE 802.3, reflected) of @p data. */
uint32_t crc32(const void *data, size_t size, uint32_t seed = 0);

/** Four-character section tag, e.g. snapTag("L1C "). */
constexpr uint32_t
snapTag(const char (&s)[5])
{
    return static_cast<uint32_t>(static_cast<unsigned char>(s[0])) |
           static_cast<uint32_t>(static_cast<unsigned char>(s[1])) << 8 |
           static_cast<uint32_t>(static_cast<unsigned char>(s[2])) << 16 |
           static_cast<uint32_t>(static_cast<unsigned char>(s[3])) << 24;
}

/**
 * Buffers a snapshot payload and commits it atomically. Nothing touches
 * the filesystem until finish(): the payload is written to
 * `<path>.tmp`, flushed, fsync'ed, closed and renamed over the final
 * path, so readers only ever see either the previous complete snapshot
 * or the new complete snapshot.
 */
class SnapshotWriter
{
  public:
    explicit SnapshotWriter(std::string path) : path_(std::move(path)) {}

    void u8(uint8_t v) { payload_.push_back(v); }
    void u32(uint32_t v);
    void u64(uint64_t v);
    void f64(double v);

    /** Length-prefixed string. */
    void str(const std::string &s);

    /** Length-prefixed vectors. */
    void u8Vec(const std::vector<uint8_t> &v);
    void u32Vec(const std::vector<uint32_t> &v);
    void u64Vec(const std::vector<uint64_t> &v);

    /** Open a component section (reader must expect the same tag). */
    void section(uint32_t tag) { u32(tag); }

    /**
     * Generational commit: rotate an existing snapshot to
     * `<path>.prev` before renaming the new one into place, so the
     * last good generation survives a torn commit (checkpoint sites
     * enable this; see openSnapshotGeneration()).
     */
    void keepPrevious(bool keep) { keep_previous_ = keep; }

    /**
     * Write header + payload to `<path>.tmp`, fsync, rename into
     * place and fsync the parent directory — all through the
     * fault-injectable FileBackend, with the whole commit retried on
     * (injected or real) failure.
     * @throws mltc::Exception (Io) naming the path once retries exhaust.
     */
    void finish();

    /** Payload bytes buffered so far. */
    size_t size() const { return payload_.size(); }

    /** Buffered payload bytes (in-memory snapshot comparison in tests). */
    const std::vector<uint8_t> &payload() const { return payload_; }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
    std::vector<uint8_t> payload_;
    bool keep_previous_ = false;
};

/**
 * Reads a snapshot written by SnapshotWriter. The whole file is read and
 * validated in the constructor; subsequent reads only walk the verified
 * payload and throw (Truncated) when a read would run past its end.
 */
class SnapshotReader
{
  public:
    /**
     * Open and validate @p path.
     * @throws mltc::Exception — Io (cannot open/read), Truncated (file
     *         shorter than header or payload), BadMagic, VersionMismatch
     *         (version skew) or Corrupt (CRC failure).
     */
    explicit SnapshotReader(const std::string &path);

    /** Parse an in-memory snapshot image (for fuzzing). Same errors. */
    SnapshotReader(const uint8_t *data, size_t size, std::string name);

    uint8_t u8();
    uint32_t u32();
    uint64_t u64();
    double f64();
    std::string str();
    void u8Vec(std::vector<uint8_t> &out);
    void u32Vec(std::vector<uint32_t> &out);
    void u64Vec(std::vector<uint64_t> &out);

    /**
     * Consume a section tag and verify it is @p tag.
     * @throws mltc::Exception (Corrupt) naming @p what on mismatch.
     */
    void expectSection(uint32_t tag, const char *what);

    /** Bytes of payload not yet consumed. */
    size_t remaining() const { return payload_.size() - cursor_; }

    /** @throws mltc::Exception (Corrupt) unless all payload was read. */
    void expectEnd();

  private:
    void validate(const uint8_t *data, size_t size);
    void need(size_t bytes, const char *what);

    std::string name_;
    std::vector<uint8_t> payload_;
    size_t cursor_ = 0;
};

/**
 * Open the newest valid generation of a generational snapshot: try
 * @p path, and when it is missing or damaged (any typed validation
 * failure) fall back to `<path>.prev` — the rotation SnapshotWriter
 * performs under keepPrevious(true). The original error is rethrown
 * when no generation validates.
 * @param used_previous set true when the fallback generation loaded.
 */
SnapshotReader openSnapshotGeneration(const std::string &path,
                                      bool *used_previous = nullptr);

} // namespace mltc

#endif // MLTC_UTIL_SERIALIZER_HPP
