#include "util/csv_reader.hpp"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "util/error.hpp"

namespace mltc {

namespace {

std::vector<std::string>
splitLine(const std::string &line)
{
    std::vector<std::string> cells;
    std::string cell;
    std::stringstream ss(line);
    while (std::getline(ss, cell, ','))
        cells.push_back(cell);
    if (!line.empty() && line.back() == ',')
        cells.emplace_back();
    return cells;
}

} // namespace

CsvTable
CsvTable::load(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw Exception(ErrorCode::Io, "CsvTable: cannot open " + path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();
    // Every writer in this codebase terminates the last row with '\n';
    // a file that stops mid-line was truncated (crash, full disk) and
    // summarizing the partial data would silently understate results.
    if (!text.empty() && text.back() != '\n')
        throw Exception(ErrorCode::Truncated,
                        "CsvTable: " + path +
                            " does not end in a newline (truncated?)");
    return parse(text);
}

CsvTable
CsvTable::parse(const std::string &text)
{
    CsvTable table;
    std::stringstream ss(text);
    std::string line;
    bool first = true;
    while (std::getline(ss, line)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty())
            continue;
        auto cells = splitLine(line);
        if (first) {
            table.header_ = std::move(cells);
            first = false;
        } else {
            if (cells.size() != table.header_.size())
                throw Exception(ErrorCode::Corrupt,
                                "CsvTable: row " +
                                    std::to_string(table.rows_.size() + 1) +
                                    " has " + std::to_string(cells.size()) +
                                    " cells, header has " +
                                    std::to_string(table.header_.size()));
            table.rows_.push_back(std::move(cells));
        }
    }
    if (first)
        throw Exception(ErrorCode::Truncated, "CsvTable: empty input");
    return table;
}

const std::string &
CsvTable::cell(size_t row, size_t col) const
{
    return rows_.at(row).at(col);
}

int
CsvTable::columnIndex(const std::string &name) const
{
    for (size_t i = 0; i < header_.size(); ++i)
        if (header_[i] == name)
            return static_cast<int>(i);
    return -1;
}

std::vector<double>
CsvTable::numericColumn(const std::string &name) const
{
    int idx = columnIndex(name);
    if (idx < 0)
        throw std::invalid_argument("CsvTable: no column " + name);
    std::vector<double> out;
    out.reserve(rows_.size());
    for (const auto &row : rows_) {
        const std::string &cell_text = row[static_cast<size_t>(idx)];
        char *end = nullptr;
        double v = std::strtod(cell_text.c_str(), &end);
        out.push_back((end && *end == '\0' && !cell_text.empty())
                          ? v
                          : std::numeric_limits<double>::quiet_NaN());
    }
    return out;
}

SeriesSummary
summarize(const std::vector<double> &values)
{
    SeriesSummary s;
    for (double v : values) {
        if (std::isnan(v))
            continue;
        if (s.count == 0) {
            s.min = s.max = v;
        } else {
            s.min = std::min(s.min, v);
            s.max = std::max(s.max, v);
        }
        s.total += v;
        ++s.count;
    }
    s.mean = s.count ? s.total / static_cast<double>(s.count) : 0.0;
    return s;
}

} // namespace mltc
