/**
 * @file
 * CSV emission for per-frame series (the paper's figures are line charts
 * over frame number; benches dump them as CSV next to the binary output).
 */
#ifndef MLTC_UTIL_CSV_HPP
#define MLTC_UTIL_CSV_HPP

#include <fstream>
#include <string>
#include <vector>

namespace mltc {

/**
 * Streaming CSV writer. Columns are fixed at construction; each row is
 * appended with exactly that many values.
 *
 * Every write is checked: a full disk or vanished file throws a typed
 * mltc::Exception (ErrorCode::Io) naming the path at the offending row
 * rather than silently truncating the artefact. Call close() before
 * relying on the file — it reports flush failure; the destructor only
 * closes best-effort.
 */
class CsvWriter
{
  public:
    /**
     * Open @p path for writing and emit the header row.
     * @throws mltc::Exception (Io) when the file cannot be opened.
     */
    CsvWriter(const std::string &path, const std::vector<std::string> &columns);

    /** Append one row; size must match the header. */
    void row(const std::vector<double> &values);

    /** Append one row of preformatted strings; size must match. */
    void rowStrings(const std::vector<std::string> &values);

    /**
     * Flush and close; throws mltc::Exception (Io) naming the path when
     * the flush fails. The destructor closes silently instead.
     */
    void close();

    /** Path the writer was opened with. */
    const std::string &path() const { return path_; }

  private:
    void checkStream();

    std::string path_;
    std::ofstream out_;
    size_t columns_;
};

} // namespace mltc

#endif // MLTC_UTIL_CSV_HPP
