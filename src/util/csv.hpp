/**
 * @file
 * CSV emission for per-frame series (the paper's figures are line charts
 * over frame number; benches dump them as CSV next to the binary output).
 */
#ifndef MLTC_UTIL_CSV_HPP
#define MLTC_UTIL_CSV_HPP

#include <string>
#include <vector>

namespace mltc {

/**
 * Buffered CSV writer with an atomic commit. Columns are fixed at
 * construction; each row is appended with exactly that many values.
 *
 * Rows accumulate in memory and land on disk only at close(), which
 * commits the whole artefact atomically (tmp + rename, retried) through
 * the fault-injectable FileBackend — so under an I/O fault storm the
 * final file is either the previous complete artefact or the new
 * complete one, never a truncated mix. A disk that stays broken through
 * every retry throws a typed mltc::Exception (ErrorCode::Io) naming the
 * path. The destructor commits best-effort and swallows failure; call
 * close() before relying on the file.
 */
class CsvWriter
{
  public:
    /**
     * Record @p path, probe that it is writable, and buffer the header
     * row.
     * @throws mltc::Exception (Io) when the file cannot be created.
     */
    CsvWriter(const std::string &path, const std::vector<std::string> &columns);

    ~CsvWriter();

    CsvWriter(const CsvWriter &) = delete;
    CsvWriter &operator=(const CsvWriter &) = delete;

    /** Append one row; size must match the header. */
    void row(const std::vector<double> &values);

    /** Append one row of preformatted strings; size must match. */
    void rowStrings(const std::vector<std::string> &values);

    /**
     * Atomically commit the buffered artefact; throws mltc::Exception
     * (Io) naming the path once commit retries exhaust. Idempotent —
     * the destructor then has nothing left to do.
     */
    void close();

    /** Path the writer was opened with. */
    const std::string &path() const { return path_; }

  private:
    std::string path_;
    std::string buf_;
    size_t columns_;
    bool closed_ = false;
};

} // namespace mltc

#endif // MLTC_UTIL_CSV_HPP
