/**
 * @file
 * CSV emission for per-frame series (the paper's figures are line charts
 * over frame number; benches dump them as CSV next to the binary output).
 */
#ifndef MLTC_UTIL_CSV_HPP
#define MLTC_UTIL_CSV_HPP

#include <fstream>
#include <string>
#include <vector>

namespace mltc {

/**
 * Streaming CSV writer. Columns are fixed at construction; each row is
 * appended with exactly that many values.
 */
class CsvWriter
{
  public:
    /**
     * Open @p path for writing and emit the header row.
     * @throws std::runtime_error when the file cannot be opened.
     */
    CsvWriter(const std::string &path, const std::vector<std::string> &columns);

    /** Append one row; size must match the header. */
    void row(const std::vector<double> &values);

    /** Append one row of preformatted strings; size must match. */
    void rowStrings(const std::vector<std::string> &values);

    /** Path the writer was opened with. */
    const std::string &path() const { return path_; }

  private:
    std::string path_;
    std::ofstream out_;
    size_t columns_;
};

} // namespace mltc

#endif // MLTC_UTIL_CSV_HPP
