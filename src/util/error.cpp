#include "util/error.hpp"

namespace mltc {

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::None: return "none";
      case ErrorCode::Io: return "io";
      case ErrorCode::Truncated: return "truncated";
      case ErrorCode::BadMagic: return "bad-magic";
      case ErrorCode::BadOpcode: return "bad-opcode";
      case ErrorCode::Corrupt: return "corrupt";
      case ErrorCode::Timeout: return "timeout";
      case ErrorCode::Transient: return "transient";
      case ErrorCode::RetryExhausted: return "retry-exhausted";
      case ErrorCode::OutOfRange: return "out-of-range";
      case ErrorCode::BadArgument: return "bad-argument";
      case ErrorCode::VersionMismatch: return "version-mismatch";
      case ErrorCode::AuditViolation: return "audit-violation";
    }
    return "?";
}

std::string
Error::describe() const
{
    return "[" + std::string(errorCodeName(code)) + "] " + message;
}

} // namespace mltc
