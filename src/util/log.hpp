/**
 * @file
 * Minimal leveled logging for the simulator.
 *
 * The simulator is single-threaded and log volume is low (per-frame or
 * per-run messages), so this is deliberately simple: a global level and
 * printf-style helpers writing to stderr. Every emitted line carries an
 * ISO-8601 UTC timestamp and a level tag:
 *
 *     [2026-08-06T12:34:56.789Z] [WARN] message
 *
 * The startup threshold can be set without code changes through the
 * `MLTC_LOG` environment variable (debug|info|warn|error|off); an
 * explicit setLogLevel() always wins over the environment. An optional
 * JSONL sink (shared with the metrics layer, util/json.hpp) mirrors
 * every passing message as a structured row:
 *
 *     {"ts":"2026-08-06T12:34:56.789Z","level":"warn","msg":"..."}
 */
#ifndef MLTC_UTIL_LOG_HPP
#define MLTC_UTIL_LOG_HPP

#include <sstream>
#include <string>

namespace mltc {

class JsonlFileSink;

/** Severity of a log message. */
enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/** Stable lowercase name of @p level ("debug", "info", ...). */
const char *logLevelName(LogLevel level);

/**
 * Parse a level name (case-insensitive: debug|info|warn|error|off).
 * @return true and set @p out on success; false on an unknown name.
 */
bool parseLogLevel(const std::string &name, LogLevel &out);

/** Set the global log threshold; messages below it are dropped. */
void setLogLevel(LogLevel level);

/**
 * Current global log threshold. The first query applies `MLTC_LOG` from
 * the environment (unknown values are ignored with a warning line).
 */
LogLevel logLevel();

/**
 * Mirror every passing message to @p sink as a JSONL row (in addition
 * to stderr). Pass nullptr to detach. The sink is not owned and must
 * outlive logging (or be detached first).
 */
void setLogJsonlSink(JsonlFileSink *sink);

/** Current ISO-8601 UTC timestamp with millisecond precision. */
std::string logTimestampUtc();

/** Emit @p msg at @p level if it passes the global threshold. */
void logMessage(LogLevel level, const std::string &msg);

namespace detail {

template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    static_cast<void>((os << ... << args));
    return os.str();
}

} // namespace detail

/** Log at Debug level; arguments are streamed together. */
template <typename... Args>
void
logDebug(Args &&...args)
{
    if (logLevel() <= LogLevel::Debug)
        logMessage(LogLevel::Debug, detail::concat(std::forward<Args>(args)...));
}

/** Log at Info level; arguments are streamed together. */
template <typename... Args>
void
logInfo(Args &&...args)
{
    if (logLevel() <= LogLevel::Info)
        logMessage(LogLevel::Info, detail::concat(std::forward<Args>(args)...));
}

/** Log at Warn level; arguments are streamed together. */
template <typename... Args>
void
logWarn(Args &&...args)
{
    if (logLevel() <= LogLevel::Warn)
        logMessage(LogLevel::Warn, detail::concat(std::forward<Args>(args)...));
}

/** Log at Error level; arguments are streamed together. */
template <typename... Args>
void
logError(Args &&...args)
{
    if (logLevel() <= LogLevel::Error)
        logMessage(LogLevel::Error, detail::concat(std::forward<Args>(args)...));
}

} // namespace mltc

#endif // MLTC_UTIL_LOG_HPP
