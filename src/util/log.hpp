/**
 * @file
 * Minimal leveled logging for the simulator.
 *
 * The simulator is single-threaded and log volume is low (per-frame or
 * per-run messages), so this is deliberately simple: a global level and
 * printf-style helpers writing to stderr.
 */
#ifndef MLTC_UTIL_LOG_HPP
#define MLTC_UTIL_LOG_HPP

#include <sstream>
#include <string>

namespace mltc {

/** Severity of a log message. */
enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/** Set the global log threshold; messages below it are dropped. */
void setLogLevel(LogLevel level);

/** Current global log threshold. */
LogLevel logLevel();

/** Emit @p msg at @p level if it passes the global threshold. */
void logMessage(LogLevel level, const std::string &msg);

namespace detail {

template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

/** Log at Debug level; arguments are streamed together. */
template <typename... Args>
void
logDebug(Args &&...args)
{
    if (logLevel() <= LogLevel::Debug)
        logMessage(LogLevel::Debug, detail::concat(std::forward<Args>(args)...));
}

/** Log at Info level; arguments are streamed together. */
template <typename... Args>
void
logInfo(Args &&...args)
{
    if (logLevel() <= LogLevel::Info)
        logMessage(LogLevel::Info, detail::concat(std::forward<Args>(args)...));
}

/** Log at Warn level; arguments are streamed together. */
template <typename... Args>
void
logWarn(Args &&...args)
{
    if (logLevel() <= LogLevel::Warn)
        logMessage(LogLevel::Warn, detail::concat(std::forward<Args>(args)...));
}

/** Log at Error level; arguments are streamed together. */
template <typename... Args>
void
logError(Args &&...args)
{
    if (logLevel() <= LogLevel::Error)
        logMessage(LogLevel::Error, detail::concat(std::forward<Args>(args)...));
}

} // namespace mltc

#endif // MLTC_UTIL_LOG_HPP
