/**
 * @file
 * Minimal embedded HTTP support for the live telemetry plane: a
 * poll(2)-based loopback server (no third-party dependencies) plus the
 * tiny blocking GET client the tests and benches use to scrape it.
 *
 * The server is deliberately small: it binds 127.0.0.1 only (telemetry
 * is an operator loopback interface, not a network service), accepts
 * one connection at a time on a single background thread, answers
 * HTTP/1.0-style GET requests through a user handler and closes the
 * connection after each response. That is exactly what a Prometheus
 * scraper (or curl in CI) needs, and nothing the simulation can ever
 * block on: the serving thread shares no state with the run except
 * what the handler itself synchronizes.
 */
#ifndef MLTC_UTIL_HTTP_HPP
#define MLTC_UTIL_HTTP_HPP

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace mltc {

/** One parsed request line; the server ignores headers and bodies. */
struct HttpRequest
{
    std::string method; ///< "GET", "HEAD", ...
    std::string target; ///< request path, e.g. "/metrics"
};

/** What a handler returns; the server adds framing headers. */
struct HttpResponse
{
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
};

/** Request handler; runs on the serving thread, may be called after
 *  start() returns and until stop() joins. Exceptions become 500s. */
using HttpHandler = std::function<HttpResponse(const HttpRequest &)>;

/**
 * Poll-based loopback HTTP server on a background thread. Lifecycle:
 * construct, start() (binds and begins serving), stop() (idempotent;
 * also run by the destructor). Requests are served strictly serially.
 */
class HttpServer
{
  public:
    HttpServer() = default;

    /** Joins the serving thread and closes the socket. */
    ~HttpServer();

    HttpServer(const HttpServer &) = delete;
    HttpServer &operator=(const HttpServer &) = delete;

    /**
     * Bind 127.0.0.1:@p port (0 = kernel-assigned, see port()) and
     * start the serving thread.
     * @throws mltc::Exception (Io) when the socket cannot be bound.
     */
    void start(uint16_t port, HttpHandler handler);

    /** The bound port (resolved after start(), also for port 0). */
    uint16_t port() const { return port_; }

    /** True between a successful start() and stop(). */
    bool running() const { return running_.load(); }

    /** Requests answered so far (any status). */
    uint64_t requestsServed() const { return served_.load(); }

    /** Stop serving and join the thread. Idempotent, never throws. */
    void stop();

  private:
    void serveLoop();
    void handleClient(int fd);

    int listen_fd_ = -1;
    uint16_t port_ = 0;
    std::atomic<bool> running_{false};
    std::atomic<uint64_t> served_{0};
    HttpHandler handler_;
    std::thread thread_;
};

/**
 * Blocking HTTP GET against 127.0.0.1:@p port. Returns the response
 * body; the status code lands in @p status_out when non-null.
 * @throws mltc::Exception (Io) on connect/read failure or a response
 *         that is not parseable HTTP.
 */
std::string httpGet(uint16_t port, const std::string &target,
                    int *status_out = nullptr, int timeout_ms = 5000);

} // namespace mltc

#endif // MLTC_UTIL_HTTP_HPP
