#include "util/exposition.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace mltc {

namespace {

bool
legalNameChar(char c, bool first, bool allow_colon)
{
    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_')
        return true;
    if (c == ':' && allow_colon)
        return true;
    return !first && c >= '0' && c <= '9';
}

std::string
sanitizeName(const std::string &name, bool allow_colon)
{
    std::string out;
    out.reserve(name.size());
    for (size_t i = 0; i < name.size(); ++i) {
        const char c = name[i];
        out += legalNameChar(c, out.empty(), allow_colon) ? c : '_';
    }
    if (out.empty())
        out = "_";
    return out;
}

} // namespace

std::string
expositionMetricName(const std::string &name)
{
    return "mltc_" + sanitizeName(name, true);
}

std::string
expositionLabelName(const std::string &name)
{
    return sanitizeName(name, false);
}

std::string
expositionLabelValue(const std::string &value)
{
    std::string out;
    out.reserve(value.size());
    for (char c : value) {
        switch (c) {
          case '\\':
            out += "\\\\";
            break;
          case '"':
            out += "\\\"";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            out += c;
        }
    }
    return out;
}

std::string
expositionValue(double v)
{
    if (std::isnan(v))
        return "NaN";
    if (std::isinf(v))
        return v > 0 ? "+Inf" : "-Inf";
    // Shortest round-trip: try increasing precision until strtod gives
    // the exact bits back, so 0.15 renders "0.15" rather than the
    // %.17g tail, and every scrape of the same state is byte-equal.
    char buf[40];
    for (int prec = 1; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof buf, "%.*g", prec, v);
        if (std::strtod(buf, nullptr) == v)
            break;
    }
    return buf;
}

std::string
expositionValue(uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(v));
    return buf;
}

std::string
expositionLabels(
    const std::vector<std::pair<std::string, std::string>> &labels)
{
    if (labels.empty())
        return "";
    std::string out = "{";
    for (size_t i = 0; i < labels.size(); ++i) {
        if (i)
            out += ',';
        out += expositionLabelName(labels[i].first);
        out += "=\"";
        out += expositionLabelValue(labels[i].second);
        out += '"';
    }
    out += '}';
    return out;
}

} // namespace mltc
