/**
 * @file
 * Prometheus text-exposition encoding primitives (format version
 * 0.0.4): metric-name sanitization, label-value escaping and the
 * deterministic number formatting the /metrics endpoint and its golden
 * tests share. The registry-aware renderer lives in
 * obs/telemetry_server.hpp; these helpers are dependency-free so the
 * encoding rules are unit-testable in isolation.
 *
 * Encoding rules:
 *  - metric names must match [a-zA-Z_:][a-zA-Z0-9_:]*; the registry's
 *    dotted names ("l2.stream_miss_rate") map dots and any other
 *    illegal character to '_' and gain the "mltc_" namespace prefix;
 *  - label names follow the same rule minus ':';
 *  - label values are backslash-escaped ('\\', '"', '\n') and quoted;
 *  - sample values render as the shortest string that round-trips the
 *    double exactly, so scrapes of identical state are byte-identical.
 */
#ifndef MLTC_UTIL_EXPOSITION_HPP
#define MLTC_UTIL_EXPOSITION_HPP

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace mltc {

/** Sanitize @p name into a legal, "mltc_"-prefixed metric name. */
std::string expositionMetricName(const std::string &name);

/** Sanitize @p name into a legal label name (no ':', no prefix). */
std::string expositionLabelName(const std::string &name);

/** Escape @p value for a quoted label value (no quotes added). */
std::string expositionLabelValue(const std::string &value);

/** Shortest decimal string that parses back to exactly @p v. */
std::string expositionValue(double v);

/** expositionValue for counters: exact integer rendering. */
std::string expositionValue(uint64_t v);

/**
 * Render one label set `{k1="v1",k2="v2"}` (empty string for no
 * labels); keys are sanitized, values escaped, order preserved.
 */
std::string
expositionLabels(const std::vector<std::pair<std::string, std::string>> &labels);

} // namespace mltc

#endif // MLTC_UTIL_EXPOSITION_HPP
