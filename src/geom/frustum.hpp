/**
 * @file
 * View-frustum plane extraction and box/frustum tests for the scene
 * manager's object-space visibility culling (paper §3: "object-space
 * visibility culling" is part of the ISM pipeline we substitute).
 */
#ifndef MLTC_GEOM_FRUSTUM_HPP
#define MLTC_GEOM_FRUSTUM_HPP

#include "geom/aabb.hpp"
#include "geom/mat4.hpp"

namespace mltc {

/** Plane in constant-normal form: normal.dot(p) + d >= 0 is inside. */
struct Plane
{
    Vec3 normal;
    float d = 0.0f;

    /** Signed distance from @p p to the plane. */
    float distance(Vec3 p) const { return normal.dot(p) + d; }
};

/** Result of a frustum/box test. */
enum class CullResult { Outside, Intersecting, Inside };

/** Six-plane view frustum extracted from a view-projection matrix. */
class Frustum
{
  public:
    Frustum() = default;

    /**
     * Extract planes from @p view_proj (Gribb/Hartmann method). Planes
     * are normalised so distances are metric.
     */
    explicit Frustum(const Mat4 &view_proj);

    /** Classify an AABB against the frustum. */
    CullResult classify(const Aabb &box) const;

    /** True when the box is at least partially inside. */
    bool
    intersects(const Aabb &box) const
    {
        return classify(box) != CullResult::Outside;
    }

    /** Access plane @p i (0..5: left,right,bottom,top,near,far). */
    const Plane &plane(int i) const { return planes_[i]; }

  private:
    Plane planes_[6];
};

} // namespace mltc

#endif // MLTC_GEOM_FRUSTUM_HPP
