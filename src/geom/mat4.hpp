/**
 * @file
 * 4x4 matrix with the usual modelling/viewing/projection constructors.
 * Column-vector convention: transformed = M * v.
 */
#ifndef MLTC_GEOM_MAT4_HPP
#define MLTC_GEOM_MAT4_HPP

#include "geom/vec.hpp"

namespace mltc {

/** Row-major 4x4 matrix; m[r][c]. */
struct Mat4
{
    float m[4][4] = {};

    /** Identity matrix. */
    static Mat4 identity();

    /** Translation by @p t. */
    static Mat4 translate(Vec3 t);

    /** Non-uniform scale. */
    static Mat4 scale(Vec3 s);

    /** Rotation about the X axis by @p radians. */
    static Mat4 rotateX(float radians);

    /** Rotation about the Y axis by @p radians. */
    static Mat4 rotateY(float radians);

    /** Rotation about the Z axis by @p radians. */
    static Mat4 rotateZ(float radians);

    /**
     * Right-handed look-at view matrix.
     * @param eye camera position
     * @param target point the camera looks at
     * @param up approximate up direction
     */
    static Mat4 lookAt(Vec3 eye, Vec3 target, Vec3 up);

    /**
     * Right-handed perspective projection mapping the view frustum to
     * clip space with z in [-w, w] (OpenGL convention).
     * @param fovy_radians vertical field of view
     * @param aspect width / height
     * @param z_near positive near-plane distance
     * @param z_far positive far-plane distance
     */
    static Mat4 perspective(float fovy_radians, float aspect, float z_near,
                            float z_far);

    /** Matrix product this * o. */
    Mat4 operator*(const Mat4 &o) const;

    /** Transform homogeneous vector: this * v. */
    Vec4 operator*(Vec4 v) const;

    /** Transform a point (w = 1) and return xyz (no divide). */
    Vec3 transformPoint(Vec3 p) const;

    /** Transform a direction (w = 0). */
    Vec3 transformDirection(Vec3 d) const;
};

} // namespace mltc

#endif // MLTC_GEOM_MAT4_HPP
