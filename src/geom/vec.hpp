/**
 * @file
 * Small fixed-size vector types used throughout the geometry pipeline.
 *
 * Single-precision floats match 1998-era rasterization hardware
 * arithmetic and keep the access-stream generation fast.
 */
#ifndef MLTC_GEOM_VEC_HPP
#define MLTC_GEOM_VEC_HPP

#include <cmath>

namespace mltc {

/** 2D vector (texture coordinates, screen positions). */
struct Vec2
{
    float x = 0.0f;
    float y = 0.0f;

    constexpr Vec2() = default;
    constexpr Vec2(float xv, float yv) : x(xv), y(yv) {}

    constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
    constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
    constexpr Vec2 operator*(float s) const { return {x * s, y * s}; }
    constexpr Vec2 operator/(float s) const { return {x / s, y / s}; }
    constexpr float dot(Vec2 o) const { return x * o.x + y * o.y; }
    float length() const { return std::sqrt(dot(*this)); }
};

/** 3D vector (positions, normals, colors). */
struct Vec3
{
    float x = 0.0f;
    float y = 0.0f;
    float z = 0.0f;

    constexpr Vec3() = default;
    constexpr Vec3(float xv, float yv, float zv) : x(xv), y(yv), z(zv) {}

    constexpr Vec3 operator+(Vec3 o) const { return {x + o.x, y + o.y, z + o.z}; }
    constexpr Vec3 operator-(Vec3 o) const { return {x - o.x, y - o.y, z - o.z}; }
    constexpr Vec3 operator-() const { return {-x, -y, -z}; }
    constexpr Vec3 operator*(float s) const { return {x * s, y * s, z * s}; }
    constexpr Vec3 operator/(float s) const { return {x / s, y / s, z / s}; }

    constexpr Vec3 &
    operator+=(Vec3 o)
    {
        x += o.x;
        y += o.y;
        z += o.z;
        return *this;
    }

    constexpr float dot(Vec3 o) const { return x * o.x + y * o.y + z * o.z; }

    constexpr Vec3
    cross(Vec3 o) const
    {
        return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
    }

    float length() const { return std::sqrt(dot(*this)); }

    Vec3
    normalized() const
    {
        float len = length();
        return len > 0.0f ? *this / len : Vec3{};
    }
};

/** Homogeneous 4D vector (clip-space positions). */
struct Vec4
{
    float x = 0.0f;
    float y = 0.0f;
    float z = 0.0f;
    float w = 0.0f;

    constexpr Vec4() = default;
    constexpr Vec4(float xv, float yv, float zv, float wv)
        : x(xv), y(yv), z(zv), w(wv)
    {}
    constexpr Vec4(Vec3 v, float wv) : x(v.x), y(v.y), z(v.z), w(wv) {}

    constexpr Vec4 operator+(Vec4 o) const
    {
        return {x + o.x, y + o.y, z + o.z, w + o.w};
    }
    constexpr Vec4 operator-(Vec4 o) const
    {
        return {x - o.x, y - o.y, z - o.z, w - o.w};
    }
    constexpr Vec4 operator*(float s) const
    {
        return {x * s, y * s, z * s, w * s};
    }

    constexpr float
    dot(Vec4 o) const
    {
        return x * o.x + y * o.y + z * o.z + w * o.w;
    }

    constexpr Vec3 xyz() const { return {x, y, z}; }
};

/** Linear interpolation between @p a and @p b at parameter @p t. */
constexpr float
lerp(float a, float b, float t)
{
    return a + (b - a) * t;
}

/** Componentwise linear interpolation. */
constexpr Vec3
lerp(Vec3 a, Vec3 b, float t)
{
    return a + (b - a) * t;
}

/** Clamp @p v to [lo, hi]. */
constexpr float
clampf(float v, float lo, float hi)
{
    return v < lo ? lo : (v > hi ? hi : v);
}

} // namespace mltc

#endif // MLTC_GEOM_VEC_HPP
