#include "geom/mat4.hpp"

#include <cmath>

namespace mltc {

Mat4
Mat4::identity()
{
    Mat4 r;
    for (int i = 0; i < 4; ++i)
        r.m[i][i] = 1.0f;
    return r;
}

Mat4
Mat4::translate(Vec3 t)
{
    Mat4 r = identity();
    r.m[0][3] = t.x;
    r.m[1][3] = t.y;
    r.m[2][3] = t.z;
    return r;
}

Mat4
Mat4::scale(Vec3 s)
{
    Mat4 r;
    r.m[0][0] = s.x;
    r.m[1][1] = s.y;
    r.m[2][2] = s.z;
    r.m[3][3] = 1.0f;
    return r;
}

Mat4
Mat4::rotateX(float radians)
{
    Mat4 r = identity();
    float c = std::cos(radians), s = std::sin(radians);
    r.m[1][1] = c;
    r.m[1][2] = -s;
    r.m[2][1] = s;
    r.m[2][2] = c;
    return r;
}

Mat4
Mat4::rotateY(float radians)
{
    Mat4 r = identity();
    float c = std::cos(radians), s = std::sin(radians);
    r.m[0][0] = c;
    r.m[0][2] = s;
    r.m[2][0] = -s;
    r.m[2][2] = c;
    return r;
}

Mat4
Mat4::rotateZ(float radians)
{
    Mat4 r = identity();
    float c = std::cos(radians), s = std::sin(radians);
    r.m[0][0] = c;
    r.m[0][1] = -s;
    r.m[1][0] = s;
    r.m[1][1] = c;
    return r;
}

Mat4
Mat4::lookAt(Vec3 eye, Vec3 target, Vec3 up)
{
    Vec3 f = (target - eye).normalized();
    if (f.length() < 0.5f)
        f = {0.0f, 0.0f, -1.0f}; // degenerate eye==target: pick -Z
    Vec3 s = f.cross(up).normalized();
    if (s.length() < 0.5f)
        s = {1.0f, 0.0f, 0.0f}; // view parallel to up: pick +X
    Vec3 u = s.cross(f);

    Mat4 r = identity();
    r.m[0][0] = s.x;
    r.m[0][1] = s.y;
    r.m[0][2] = s.z;
    r.m[1][0] = u.x;
    r.m[1][1] = u.y;
    r.m[1][2] = u.z;
    r.m[2][0] = -f.x;
    r.m[2][1] = -f.y;
    r.m[2][2] = -f.z;
    r.m[0][3] = -s.dot(eye);
    r.m[1][3] = -u.dot(eye);
    r.m[2][3] = f.dot(eye);
    return r;
}

Mat4
Mat4::perspective(float fovy_radians, float aspect, float z_near, float z_far)
{
    float f = 1.0f / std::tan(fovy_radians * 0.5f);
    Mat4 r;
    r.m[0][0] = f / aspect;
    r.m[1][1] = f;
    r.m[2][2] = (z_far + z_near) / (z_near - z_far);
    r.m[2][3] = 2.0f * z_far * z_near / (z_near - z_far);
    r.m[3][2] = -1.0f;
    return r;
}

Mat4
Mat4::operator*(const Mat4 &o) const
{
    Mat4 r;
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j) {
            float acc = 0.0f;
            for (int k = 0; k < 4; ++k)
                acc += m[i][k] * o.m[k][j];
            r.m[i][j] = acc;
        }
    return r;
}

Vec4
Mat4::operator*(Vec4 v) const
{
    return {
        m[0][0] * v.x + m[0][1] * v.y + m[0][2] * v.z + m[0][3] * v.w,
        m[1][0] * v.x + m[1][1] * v.y + m[1][2] * v.z + m[1][3] * v.w,
        m[2][0] * v.x + m[2][1] * v.y + m[2][2] * v.z + m[2][3] * v.w,
        m[3][0] * v.x + m[3][1] * v.y + m[3][2] * v.z + m[3][3] * v.w,
    };
}

Vec3
Mat4::transformPoint(Vec3 p) const
{
    Vec4 r = *this * Vec4{p, 1.0f};
    return r.xyz();
}

Vec3
Mat4::transformDirection(Vec3 d) const
{
    Vec4 r = *this * Vec4{d, 0.0f};
    return r.xyz();
}

} // namespace mltc
