#include "geom/frustum.hpp"

#include <cmath>

namespace mltc {

namespace {

Plane
normalize(Plane p)
{
    float len = p.normal.length();
    if (len > 0.0f) {
        p.normal = p.normal / len;
        p.d /= len;
    }
    return p;
}

} // namespace

Frustum::Frustum(const Mat4 &vp)
{
    // Rows of the view-projection matrix (row-major storage).
    auto row = [&](int i) {
        return Vec4{vp.m[i][0], vp.m[i][1], vp.m[i][2], vp.m[i][3]};
    };
    Vec4 r0 = row(0), r1 = row(1), r2 = row(2), r3 = row(3);

    auto toPlane = [](Vec4 v) {
        return normalize(Plane{{v.x, v.y, v.z}, v.w});
    };

    planes_[0] = toPlane(r3 + r0); // left
    planes_[1] = toPlane(r3 - r0); // right
    planes_[2] = toPlane(r3 + r1); // bottom
    planes_[3] = toPlane(r3 - r1); // top
    planes_[4] = toPlane(r3 + r2); // near
    planes_[5] = toPlane(r3 - r2); // far
}

CullResult
Frustum::classify(const Aabb &box) const
{
    if (box.empty())
        return CullResult::Outside;

    bool intersecting = false;
    for (const Plane &p : planes_) {
        // Positive-vertex test: find the corner farthest along the
        // plane normal; if even it is outside, the whole box is.
        Vec3 pos{p.normal.x >= 0.0f ? box.max.x : box.min.x,
                 p.normal.y >= 0.0f ? box.max.y : box.min.y,
                 p.normal.z >= 0.0f ? box.max.z : box.min.z};
        if (p.distance(pos) < 0.0f)
            return CullResult::Outside;

        Vec3 neg{p.normal.x >= 0.0f ? box.min.x : box.max.x,
                 p.normal.y >= 0.0f ? box.min.y : box.max.y,
                 p.normal.z >= 0.0f ? box.min.z : box.max.z};
        if (p.distance(neg) < 0.0f)
            intersecting = true;
    }
    return intersecting ? CullResult::Intersecting : CullResult::Inside;
}

} // namespace mltc
