/**
 * @file
 * Axis-aligned bounding box used for object-space visibility culling.
 */
#ifndef MLTC_GEOM_AABB_HPP
#define MLTC_GEOM_AABB_HPP

#include <limits>

#include "geom/vec.hpp"

namespace mltc {

/** Axis-aligned box; empty until a point is added. */
struct Aabb
{
    Vec3 min{std::numeric_limits<float>::max(),
             std::numeric_limits<float>::max(),
             std::numeric_limits<float>::max()};
    Vec3 max{std::numeric_limits<float>::lowest(),
             std::numeric_limits<float>::lowest(),
             std::numeric_limits<float>::lowest()};

    /** True when no point has been added. */
    bool
    empty() const
    {
        return min.x > max.x;
    }

    /** Grow to include @p p. */
    void
    extend(Vec3 p)
    {
        if (p.x < min.x) min.x = p.x;
        if (p.y < min.y) min.y = p.y;
        if (p.z < min.z) min.z = p.z;
        if (p.x > max.x) max.x = p.x;
        if (p.y > max.y) max.y = p.y;
        if (p.z > max.z) max.z = p.z;
    }

    /** Grow to include another box. */
    void
    extend(const Aabb &o)
    {
        if (o.empty())
            return;
        extend(o.min);
        extend(o.max);
    }

    /** Box center (undefined when empty). */
    Vec3 center() const { return (min + max) * 0.5f; }

    /** Half the diagonal length (bounding-sphere radius). */
    float radius() const { return (max - min).length() * 0.5f; }

    /** Corner @p i in [0,8). */
    Vec3
    corner(int i) const
    {
        return {(i & 1) ? max.x : min.x, (i & 2) ? max.y : min.y,
                (i & 4) ? max.z : min.z};
    }
};

} // namespace mltc

#endif // MLTC_GEOM_AABB_HPP
