#include "model/performance_model.hpp"

#include <stdexcept>

namespace mltc {

double
fractionalAdvantage(const PerformanceInputs &in)
{
    const double c = in.full_miss_cost;
    if (c <= 0.0)
        throw std::invalid_argument("full_miss_cost must be positive");
    return c - (c - 0.5) * in.l2_full_hit_rate -
           (c - 1.0) * in.l2_partial_hit_rate;
}

double
pullAverageAccessCost(const PerformanceInputs &in)
{
    return (1.0 - in.l1_hit_rate);
}

double
l2AverageAccessCost(const PerformanceInputs &in)
{
    return (1.0 - in.l1_hit_rate) * fractionalAdvantage(in);
}

double
l2Speedup(const PerformanceInputs &in)
{
    double l2 = l2AverageAccessCost(in);
    return l2 > 0.0 ? pullAverageAccessCost(in) / l2 : 0.0;
}

} // namespace mltc
