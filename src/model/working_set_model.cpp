#include "model/working_set_model.hpp"

#include <stdexcept>

namespace mltc {

double
expectedWorkingSetBytes(uint64_t resolution_pixels, double depth_complexity,
                        double utilization)
{
    if (utilization <= 0.0)
        throw std::invalid_argument("utilization must be positive");
    return static_cast<double>(resolution_pixels) * depth_complexity * 4.0 /
           utilization;
}

double
measuredUtilization(uint64_t pixel_refs, uint64_t blocks_touched,
                    uint32_t l2_tile)
{
    if (blocks_touched == 0)
        return 0.0;
    double texels = static_cast<double>(blocks_touched) *
                    static_cast<double>(l2_tile) *
                    static_cast<double>(l2_tile);
    return static_cast<double>(pixel_refs) / texels;
}

} // namespace mltc
