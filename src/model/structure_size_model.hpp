/**
 * @file
 * Memory requirements of the L2 caching structures (paper §5.4.1,
 * Table 4): texture page table and Block Replacement List sizes as a
 * function of host texture capacity, L2 cache size and tile sizes.
 */
#ifndef MLTC_MODEL_STRUCTURE_SIZE_MODEL_HPP
#define MLTC_MODEL_STRUCTURE_SIZE_MODEL_HPP

#include <cstdint>

namespace mltc {

/** Structure-size model inputs. */
struct StructureSizeParams
{
    uint64_t host_texture_bytes = 32ull << 20; ///< texture capacity in host memory
    uint64_t l2_cache_bytes = 2ull << 20;
    uint32_t l2_tile = 16; ///< texels per edge
    uint32_t l1_tile = 4;
};

/** Structure-size model outputs (all in bytes). */
struct StructureSizes
{
    uint64_t page_table_entries = 0;
    uint64_t page_table_bytes = 0;     ///< t_table[]
    uint64_t brl_active_bits_bytes = 0; ///< on-chip SRAM (1 bit/block)
    uint64_t brl_index_bytes = 0;      ///< t_index fields (external DRAM)
    uint64_t l2_blocks = 0;
};

/**
 * Size the L2 caching structures per §5.4.1: page-table entries are one
 * per L2 block of host texture (sector bits + 16-bit block number,
 * 16-bit aligned), the BRL holds one entry per physical L2 block.
 */
StructureSizes computeStructureSizes(const StructureSizeParams &params);

} // namespace mltc

#endif // MLTC_MODEL_STRUCTURE_SIZE_MODEL_HPP
