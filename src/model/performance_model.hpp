/**
 * @file
 * Average-access-time performance model (paper §5.4.2, Tables 5-7).
 *
 * With L1 hit rate h1, conditional L2 full/partial hit rates h2full and
 * h2partial (given an L1 miss), and a full L2 miss costing c times an
 * L1-block host download t3:
 *
 *   A_pull = t1 + (1 - h1) * t3
 *   A_L2   = t1 + (1 - h1) * f * t3
 *   f      = c - (c - 1/2) * h2full - (c - 1) * h2partial
 *
 * f < 1 means the L2 architecture beats the pull architecture on every
 * L1 miss on average (the "fractional advantage").
 */
#ifndef MLTC_MODEL_PERFORMANCE_MODEL_HPP
#define MLTC_MODEL_PERFORMANCE_MODEL_HPP

namespace mltc {

/** Inputs to the §5.4.2 model. */
struct PerformanceInputs
{
    double l1_hit_rate = 0.0;        ///< h1
    double l2_full_hit_rate = 0.0;   ///< h2full, conditional on L1 miss
    double l2_partial_hit_rate = 0.0; ///< h2partial, conditional on L1 miss
    double full_miss_cost = 8.0;     ///< c = t2miss / t3 (paper uses 8)
};

/**
 * Fractional advantage f (ratio of the L2 architecture's average cost on
 * an L1 miss to the pull architecture's).
 */
double fractionalAdvantage(const PerformanceInputs &in);

/**
 * Average texel access time of the pull architecture in units of t3
 * (host download time), taking t1 = 0 so only the miss path is scored.
 */
double pullAverageAccessCost(const PerformanceInputs &in);

/** Average texel access time of the L2 architecture in units of t3. */
double l2AverageAccessCost(const PerformanceInputs &in);

/** Speedup of L2 over pull under this model (>1 means L2 wins). */
double l2Speedup(const PerformanceInputs &in);

} // namespace mltc

#endif // MLTC_MODEL_PERFORMANCE_MODEL_HPP
