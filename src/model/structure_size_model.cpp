#include "model/structure_size_model.hpp"

#include <stdexcept>

namespace mltc {

StructureSizes
computeStructureSizes(const StructureSizeParams &params)
{
    if (params.l1_tile == 0 || params.l2_tile < params.l1_tile)
        throw std::invalid_argument("bad tile sizes");

    StructureSizes out;
    const uint64_t block_bytes =
        static_cast<uint64_t>(params.l2_tile) * params.l2_tile * 4;
    out.page_table_entries = params.host_texture_bytes / block_bytes;

    // Entry: sector bit-vector (one bit per L1 sub-block, 16 bits for
    // 16x16/4x4) plus the 16-bit physical block number, aligned to
    // 16-bit boundaries (paper Table 4 assumption).
    const uint32_t per_edge = params.l2_tile / params.l1_tile;
    const uint32_t sector_bits = per_edge * per_edge;
    const uint64_t sector_words = (sector_bits + 15) / 16;
    const uint64_t entry_bytes = (sector_words + 1) * 2;
    out.page_table_bytes = out.page_table_entries * entry_bytes;

    out.l2_blocks = params.l2_cache_bytes / block_bytes;
    out.brl_active_bits_bytes = (out.l2_blocks + 7) / 8;
    // t_index must address the page table; the paper charges 4 bytes per
    // entry (32-bit index, 16-bit aligned).
    out.brl_index_bytes = out.l2_blocks * 4;
    return out;
}

} // namespace mltc
