#include "model/timing_model.hpp"

#include <algorithm>

namespace mltc {

namespace {

/** ns to move @p bytes at @p mbps (1 MB = 2^20 bytes). */
double
transferNs(uint64_t bytes, double mbps)
{
    return static_cast<double>(bytes) / (mbps * 1048576.0) * 1e9;
}

/** Cost in ns of one host sector download (latency + transfer). */
double
hostSectorNs(const TimingParams &p)
{
    return p.host_latency_ns + transferNs(p.l1_tile_bytes,
                                          p.host_bandwidth_mbps);
}

/** Cost in ns of one L2 sector read (latency + transfer). */
double
l2SectorNs(const TimingParams &p)
{
    return p.l2_latency_ns + transferNs(p.l1_tile_bytes,
                                        p.l2_bandwidth_mbps);
}

ArchTiming
finalize(ArchTiming t, const CacheFrameStats &stats, const TimingParams &p,
         double miss_ns_total)
{
    t.texture_path_ms =
        (static_cast<double>(stats.accesses) * p.texel_hit_ns +
         miss_ns_total) *
        1e-6;
    t.host_bus_ms = transferNs(stats.host_bytes, p.host_bandwidth_mbps) * 1e-6;
    t.l2_bus_ms =
        transferNs(stats.l2_read_bytes + stats.host_bytes,
                   p.l2_bandwidth_mbps) *
        1e-6; // downloads also write into L2 memory
    t.frame_ms = std::max({t.texture_path_ms, t.host_bus_ms, t.l2_bus_ms});
    t.fps_bound = t.frame_ms > 0 ? 1000.0 / t.frame_ms : 0.0;
    t.avg_miss_penalty_ns =
        stats.l1_misses
            ? miss_ns_total / static_cast<double>(stats.l1_misses)
            : 0.0;
    return t;
}

} // namespace

ArchTiming
timePullFrame(const CacheFrameStats &stats, const TimingParams &params)
{
    // Every L1 miss is one host transaction.
    double miss_ns =
        static_cast<double>(stats.l1_misses) * hostSectorNs(params);
    ArchTiming t;
    // The pull architecture has no L2 memory: clear its bus afterwards.
    t = finalize(t, stats, params, miss_ns);
    t.l2_bus_ms = 0;
    t.frame_ms = std::max(t.texture_path_ms, t.host_bus_ms);
    t.fps_bound = t.frame_ms > 0 ? 1000.0 / t.frame_ms : 0.0;
    return t;
}

ArchTiming
timeL2Frame(const CacheFrameStats &stats, const TimingParams &params)
{
    const double full_hit_ns = l2SectorNs(params);
    const double partial_ns = hostSectorNs(params);
    const double miss_ns =
        hostSectorNs(params) + params.full_miss_overhead_ns;
    double total =
        static_cast<double>(stats.l2_full_hits) * full_hit_ns +
        static_cast<double>(stats.l2_partial_hits) * partial_ns +
        static_cast<double>(stats.l2_full_misses) * miss_ns;
    ArchTiming t;
    return finalize(t, stats, params, total);
}

double
effectiveFractionalAdvantage(const CacheFrameStats &l2_stats,
                             const TimingParams &params)
{
    if (l2_stats.l1_misses == 0)
        return 0.0;
    double l2_penalty = timeL2Frame(l2_stats, params).avg_miss_penalty_ns;
    double pull_penalty = hostSectorNs(params);
    return pull_penalty > 0 ? l2_penalty / pull_penalty : 0.0;
}

} // namespace mltc
