/**
 * @file
 * Transaction-level timing model — an *extension* of the paper.
 *
 * The paper scores architectures with the closed-form average-access
 * model of §5.4.2 (fractional advantage f, with assumed cost ratios
 * t2full = t3/2, t2partial = t3, t2miss = c*t3). This model instead
 * prices each counted transaction with explicit latency/bandwidth
 * parameters for the host path (AGP + system memory) and the local L2
 * DRAM, yielding per-frame texture-path time, bus occupancies and a
 * frame-rate bound — and an *effective* fractional advantage that can be
 * checked against the paper's analytic one (bench `ext_timing_model`).
 */
#ifndef MLTC_MODEL_TIMING_MODEL_HPP
#define MLTC_MODEL_TIMING_MODEL_HPP

#include "core/cache_sim.hpp"

namespace mltc {

/** Latency/bandwidth parameters (defaults are 1998-era: AGP 1.0 at
 *  512 MB/s, local SDRAM at ~2x that, per the paper's assumption). */
struct TimingParams
{
    double texel_hit_ns = 2.5;        ///< pipelined L1 hit per texel
    double host_latency_ns = 250.0;   ///< per host transaction
    double host_bandwidth_mbps = 512.0;  ///< AGP 1.0 sustained
    double l2_latency_ns = 100.0;     ///< local DRAM access setup
    double l2_bandwidth_mbps = 1024.0;   ///< local memory, ~2x host
    /**
     * Extra cost of an L2 full miss beyond the sector download: victim
     * search + three external read-modify-writes (§5.4.2 discussion).
     */
    double full_miss_overhead_ns = 320.0;
    uint64_t l1_tile_bytes = 64;      ///< one sector / L1 tile
};

/** Per-frame timing results for one architecture. */
struct ArchTiming
{
    double texture_path_ms = 0;   ///< serialized texel-access time
    double host_bus_ms = 0;       ///< host/AGP occupancy
    double l2_bus_ms = 0;         ///< local L2 memory occupancy
    double frame_ms = 0;          ///< max of the above (pipelined units)
    double fps_bound = 0;         ///< 1000 / frame_ms
    double avg_miss_penalty_ns = 0; ///< mean cost of an L1 miss
};

/** Time one frame of the pull architecture from its counters. */
ArchTiming timePullFrame(const CacheFrameStats &stats,
                         const TimingParams &params = {});

/** Time one frame of the L2 caching architecture from its counters. */
ArchTiming timeL2Frame(const CacheFrameStats &stats,
                       const TimingParams &params = {});

/**
 * Effective fractional advantage: the L2 architecture's average L1-miss
 * penalty divided by the pull architecture's for the *same* miss stream
 * (the measured analogue of the paper's f; < 1 means L2 wins).
 */
double effectiveFractionalAdvantage(const CacheFrameStats &l2_stats,
                                    const TimingParams &params = {});

} // namespace mltc

#endif // MLTC_MODEL_TIMING_MODEL_HPP
