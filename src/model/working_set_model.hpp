/**
 * @file
 * Expected inter-frame working set model (paper §4.1, Figure 3).
 *
 * W = (R * d * 4) / utilization
 *
 * where R is the screen resolution in pixels, d the depth complexity
 * (textured pixels per pixel location), 4 the bytes per 32-bit texel and
 * utilization the block utilisation (texel references per texel of
 * touched blocks; > 1 under texture repetition).
 */
#ifndef MLTC_MODEL_WORKING_SET_MODEL_HPP
#define MLTC_MODEL_WORKING_SET_MODEL_HPP

#include <cstdint>

namespace mltc {

/**
 * Expected inter-frame working set in bytes (§4.1).
 * @param resolution_pixels screen pixels R (e.g. 1024*768)
 * @param depth_complexity average textured pixels per location d
 * @param utilization block utilisation (0 excluded)
 */
double expectedWorkingSetBytes(uint64_t resolution_pixels,
                               double depth_complexity, double utilization);

/**
 * Block utilisation from measured per-frame statistics (§4.1 inverted):
 * pixel references / (blocks touched * texels per block).
 */
double measuredUtilization(uint64_t pixel_refs, uint64_t blocks_touched,
                           uint32_t l2_tile);

} // namespace mltc

#endif // MLTC_MODEL_WORKING_SET_MODEL_HPP
