/**
 * @file
 * Tests for the procedural workloads: determinism, structure and the
 * statistical properties the paper relies on (texture sharing patterns,
 * camera continuity).
 */
#include <gtest/gtest.h>

#include <set>

#include "workload/city.hpp"
#include "workload/registry.hpp"
#include "workload/village.hpp"

namespace mltc {
namespace {

TEST(Registry, KnowsBothWorkloads)
{
    auto names = workloadNames();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "village");
    EXPECT_EQ(names[1], "city");
    EXPECT_THROW(buildWorkload("nope"), std::invalid_argument);
}

TEST(Village, DeterministicInSeed)
{
    VillageParams p;
    p.houses = 10;
    p.trees = 5;
    Workload a = buildVillage(p);
    Workload b = buildVillage(p);
    EXPECT_EQ(a.scene.objects().size(), b.scene.objects().size());
    EXPECT_EQ(a.textures->totalHostBytes(), b.textures->totalHostBytes());
    // Object transforms identical.
    for (size_t i = 0; i < a.scene.objects().size(); ++i) {
        const Mat4 &ma = a.scene.objects()[i].transform;
        const Mat4 &mb = b.scene.objects()[i].transform;
        for (int r = 0; r < 4; ++r)
            for (int c = 0; c < 4; ++c)
                ASSERT_FLOAT_EQ(ma.m[r][c], mb.m[r][c]);
    }
}

TEST(Village, SeedChangesPlacement)
{
    VillageParams p, q;
    p.houses = q.houses = 10;
    p.trees = q.trees = 5;
    q.seed = p.seed + 1;
    Workload a = buildVillage(p);
    Workload b = buildVillage(q);
    bool any_diff = false;
    size_t n = std::min(a.scene.objects().size(), b.scene.objects().size());
    for (size_t i = 0; i < n && !any_diff; ++i)
        any_diff = a.scene.objects()[i].transform.m[0][3] !=
                   b.scene.objects()[i].transform.m[0][3];
    EXPECT_TRUE(any_diff);
}

TEST(Village, SharesWallTexturesBetweenHouses)
{
    // The Village's signature property (§4.1): few materials, many
    // objects. Count distinct textures vs objects.
    Workload wl = buildVillage();
    std::set<TextureId> distinct;
    size_t textured_objects = 0;
    for (const auto &obj : wl.scene.objects()) {
        distinct.insert(obj.texture);
        ++textured_objects;
    }
    EXPECT_GT(textured_objects, 4 * distinct.size())
        << "Village must reuse textures across objects";
}

TEST(Village, AnimationPathStaysAboveGroundAndInBounds)
{
    Workload wl = buildVillage();
    for (int f = 0; f < 100; ++f) {
        CameraPose p = wl.path.atFrame(f, 100);
        EXPECT_GT(p.eye.y, 0.5f);
        EXPECT_LT(p.eye.y, 10.0f); // walk-through stays at eye level
        EXPECT_LT(std::abs(p.eye.x), 200.0f);
        EXPECT_GT((p.target - p.eye).length(), 0.01f);
    }
}

TEST(Village, DefaultFramesMatchPaper)
{
    Workload wl = buildVillage();
    EXPECT_EQ(wl.default_frames, 411);
}

TEST(City, OneFacadePerBuilding)
{
    // The City's signature property: facades are NOT shared between
    // buildings (paper: "does not substantially reuse textures between
    // objects").
    CityParams p;
    p.blocks_x = p.blocks_z = 4;
    Workload wl = buildCity(p);
    std::set<TextureId> facades;
    int buildings = 0;
    for (const auto &obj : wl.scene.objects()) {
        if (obj.name.rfind("building_", 0) == 0) {
            ++buildings;
            EXPECT_TRUE(facades.insert(obj.texture).second)
                << "facade texture shared between buildings";
        }
    }
    EXPECT_EQ(buildings, 16);
}

TEST(City, BuildingCountMatchesGrid)
{
    CityParams p;
    p.blocks_x = 3;
    p.blocks_z = 5;
    Workload wl = buildCity(p);
    int buildings = 0;
    for (const auto &obj : wl.scene.objects())
        if (obj.name.rfind("building_", 0) == 0)
            ++buildings;
    EXPECT_EQ(buildings, 15);
}

TEST(City, FlyThroughDescendsAndClimbs)
{
    Workload wl = buildCity();
    float start_y = wl.path.atFrame(0, 100).eye.y;
    float min_y = start_y;
    for (int f = 0; f < 100; ++f)
        min_y = std::min(min_y, wl.path.atFrame(f, 100).eye.y);
    float end_y = wl.path.atFrame(99, 100).eye.y;
    EXPECT_GT(start_y, 100.0f);
    EXPECT_LT(min_y, 60.0f); // swoops down between the towers
    EXPECT_GT(end_y, 100.0f);
}

TEST(City, DefaultFramesMatchPaper)
{
    Workload wl = buildCity();
    EXPECT_EQ(wl.default_frames, 525);
}

TEST(Workload, CameraAtFrameUsesPathEndpoints)
{
    Workload wl = buildVillage();
    Camera first = wl.cameraAtFrame(0, 50, 4.0f / 3.0f);
    CameraPose p0 = wl.path.sample(0.0f);
    EXPECT_NEAR(first.eye().x, p0.eye.x, 1e-3f);
    EXPECT_NEAR(first.eye().z, p0.eye.z, 1e-3f);
}

TEST(Workload, HostMemoryInPaperBallpark)
{
    // Paper Figure 4: Village ~14 MB loaded, City ~10 MB. Ours should
    // land within 2x of those.
    Workload v = buildVillage();
    Workload c = buildCity();
    double v_mb = static_cast<double>(v.textures->totalHostBytes()) /
                  (1024 * 1024);
    double c_mb = static_cast<double>(c.textures->totalHostBytes()) /
                  (1024 * 1024);
    EXPECT_GT(v_mb, 7.0);
    EXPECT_LT(v_mb, 28.0);
    EXPECT_GT(c_mb, 5.0);
    EXPECT_LT(c_mb, 20.0);
    // And the Village pool should be bigger than the City's.
    EXPECT_GT(v_mb, c_mb);
}

} // namespace
} // namespace mltc
