/**
 * @file
 * Unit tests for the texture page table TLB (round-robin, §5.4.3).
 */
#include <gtest/gtest.h>

#include "core/texture_tlb.hpp"

namespace mltc {
namespace {

TEST(Tlb, RejectsZeroEntries)
{
    EXPECT_THROW(TextureTlb(0), std::invalid_argument);
}

TEST(Tlb, MissThenHit)
{
    TextureTlb tlb(4);
    EXPECT_FALSE(tlb.probe(10));
    EXPECT_TRUE(tlb.probe(10));
    EXPECT_EQ(tlb.stats().probes, 2u);
    EXPECT_EQ(tlb.stats().hits, 1u);
    EXPECT_DOUBLE_EQ(tlb.stats().hitRate(), 0.5);
}

TEST(Tlb, SingleEntryTracksOnlyLast)
{
    TextureTlb tlb(1);
    tlb.probe(1);
    tlb.probe(2);
    EXPECT_FALSE(tlb.probe(1)); // evicted by 2
    // Now 1 occupies the slot again.
    EXPECT_FALSE(tlb.probe(2));
}

TEST(Tlb, HoldsUpToCapacity)
{
    TextureTlb tlb(4);
    for (uint32_t i = 0; i < 4; ++i)
        tlb.probe(i);
    for (uint32_t i = 0; i < 4; ++i)
        EXPECT_TRUE(tlb.probe(i));
}

TEST(Tlb, RoundRobinEvictsOldestSlot)
{
    TextureTlb tlb(2);
    tlb.probe(1); // slot 0
    tlb.probe(2); // slot 1
    tlb.probe(3); // evicts slot 0 (entry 1)
    EXPECT_TRUE(tlb.probe(2));
    EXPECT_TRUE(tlb.probe(3));
    EXPECT_FALSE(tlb.probe(1));
}

TEST(Tlb, EntryZeroIsValid)
{
    TextureTlb tlb(2);
    EXPECT_FALSE(tlb.probe(0));
    EXPECT_TRUE(tlb.probe(0)); // t_index 0 must be cacheable
}

TEST(Tlb, ResetInvalidates)
{
    TextureTlb tlb(2);
    tlb.probe(5);
    tlb.reset();
    EXPECT_FALSE(tlb.probe(5));
    tlb.clearStats();
    EXPECT_EQ(tlb.stats().probes, 0u);
}

TEST(Tlb, BiggerTlbNeverWorseOnStream)
{
    // A cyclic stream over 8 entries: hit rate must be monotone in
    // capacity (with round-robin on a cyclic pattern this holds).
    auto run = [](uint32_t entries) {
        TextureTlb tlb(entries);
        for (int i = 0; i < 800; ++i)
            tlb.probe(static_cast<uint32_t>(i % 8));
        return tlb.stats().hitRate();
    };
    double h1 = run(1), h4 = run(4), h8 = run(8), h16 = run(16);
    EXPECT_LE(h1, h4 + 1e-9);
    EXPECT_LE(h4, h8 + 1e-9);
    EXPECT_LE(h8, h16 + 1e-9);
    EXPECT_GT(h8, 0.9); // the whole working set fits
}

} // namespace
} // namespace mltc
