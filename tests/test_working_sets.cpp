/**
 * @file
 * Unit tests for the working-set statistics collector (Figures 4-6 and
 * Table 1 machinery).
 */
#include <gtest/gtest.h>

#include "trace/working_set_collector.hpp"

namespace mltc {
namespace {

class WorkingSetTest : public ::testing::Test
{
  protected:
    WorkingSetTest()
    {
        tex_a = tm.load("a", MipPyramid(Image(64, 64)));
        tex_b = tm.load("b", MipPyramid(Image(64, 64)), 2); // 16-bit
    }

    TextureManager tm;
    TextureId tex_a, tex_b;
};

TEST_F(WorkingSetTest, CountsDistinctL2Blocks)
{
    WorkingSetCollector ws(tm, {16}, {});
    ws.bindTexture(tex_a);
    // Touch two texels in the same 16x16 block and one in another.
    ws.access(0, 0, 0);
    ws.access(5, 5, 0);
    ws.access(20, 0, 0);
    FrameWorkingSet fs = ws.endFrame();
    EXPECT_EQ(fs.l2[0].blocks_touched, 2u);
    EXPECT_EQ(fs.l2[0].blocks_new, 2u);
    EXPECT_EQ(fs.l2[0].bytesTouched(), 2u * 1024u);
    EXPECT_EQ(fs.pixel_refs, 3u);
}

TEST_F(WorkingSetTest, NewBlocksRelativeToPreviousFrame)
{
    WorkingSetCollector ws(tm, {16}, {});
    ws.bindTexture(tex_a);
    ws.access(0, 0, 0);
    ws.access(20, 0, 0);
    ws.endFrame();

    ws.bindTexture(tex_a);
    ws.access(0, 0, 0);  // repeated from last frame
    ws.access(40, 0, 0); // new block
    FrameWorkingSet fs = ws.endFrame();
    EXPECT_EQ(fs.l2[0].blocks_touched, 2u);
    EXPECT_EQ(fs.l2[0].blocks_new, 1u);
}

TEST_F(WorkingSetTest, PreviousFrameWindowIsOneFrame)
{
    WorkingSetCollector ws(tm, {16}, {});
    ws.bindTexture(tex_a);
    ws.access(0, 0, 0);
    ws.endFrame();
    // Frame 2: different block.
    ws.bindTexture(tex_a);
    ws.access(20, 0, 0);
    ws.endFrame();
    // Frame 3: the block from frame 1 is "new" again (not in frame 2).
    ws.bindTexture(tex_a);
    ws.access(0, 0, 0);
    FrameWorkingSet fs = ws.endFrame();
    EXPECT_EQ(fs.l2[0].blocks_new, 1u);
}

TEST_F(WorkingSetTest, TracksMultipleTileSizesIndependently)
{
    WorkingSetCollector ws(tm, {8, 16, 32}, {4, 8});
    ws.bindTexture(tex_a);
    // A 20x20 texel region from the origin.
    for (uint32_t y = 0; y < 20; ++y)
        for (uint32_t x = 0; x < 20; ++x)
            ws.access(x, y, 0);
    FrameWorkingSet fs = ws.endFrame();
    ASSERT_EQ(fs.l2.size(), 3u);
    ASSERT_EQ(fs.l1.size(), 2u);
    EXPECT_EQ(fs.l2[0].blocks_touched, 9u);  // 8x8 tiles: 3x3
    EXPECT_EQ(fs.l2[1].blocks_touched, 4u);  // 16x16 tiles: 2x2
    EXPECT_EQ(fs.l2[2].blocks_touched, 1u);  // 32x32 tiles: 1
    EXPECT_EQ(fs.l1[0].tiles_touched, 25u);  // 4x4 L1 tiles: 5x5
    EXPECT_EQ(fs.l1[1].tiles_touched, 9u);   // 8x8 L1 tiles: 3x3
}

TEST_F(WorkingSetTest, UtilizationReflectsReuse)
{
    WorkingSetCollector ws(tm, {16}, {});
    ws.bindTexture(tex_a);
    // 256 refs into a single 16x16 block = utilization 1.0.
    for (uint32_t y = 0; y < 16; ++y)
        for (uint32_t x = 0; x < 16; ++x)
            ws.access(x, y, 0);
    FrameWorkingSet fs = ws.endFrame();
    EXPECT_DOUBLE_EQ(fs.utilization(0), 1.0);

    // Same block touched 512 times -> utilization 2.0 (texel reuse).
    ws.bindTexture(tex_a);
    for (int r = 0; r < 2; ++r)
        for (uint32_t y = 0; y < 16; ++y)
            for (uint32_t x = 0; x < 16; ++x)
                ws.access(x, y, 0);
    fs = ws.endFrame();
    EXPECT_DOUBLE_EQ(fs.utilization(0), 2.0);
}

TEST_F(WorkingSetTest, PushBytesCountWholeTexturesOnce)
{
    WorkingSetCollector ws(tm, {16}, {});
    ws.bindTexture(tex_a);
    ws.access(0, 0, 0);
    ws.bindTexture(tex_a); // rebinding must not double-count
    ws.access(1, 0, 0);
    ws.bindTexture(tex_b);
    ws.access(0, 0, 0);
    FrameWorkingSet fs = ws.endFrame();
    EXPECT_EQ(fs.textures_touched, 2u);
    uint64_t expected = tm.texture(tex_a).hostBytes() +
                        tm.texture(tex_b).hostBytes();
    EXPECT_EQ(fs.push_bytes, expected);
    EXPECT_EQ(fs.loaded_bytes, tm.totalHostBytes());
}

TEST_F(WorkingSetTest, DifferentTexturesNeverShareBlocks)
{
    WorkingSetCollector ws(tm, {16}, {});
    ws.bindTexture(tex_a);
    ws.access(0, 0, 0);
    ws.bindTexture(tex_b);
    ws.access(0, 0, 0);
    FrameWorkingSet fs = ws.endFrame();
    EXPECT_EQ(fs.l2[0].blocks_touched, 2u);
}

TEST_F(WorkingSetTest, MipLevelsCountSeparately)
{
    WorkingSetCollector ws(tm, {16}, {});
    ws.bindTexture(tex_a);
    ws.access(0, 0, 0);
    ws.access(0, 0, 1);
    ws.access(0, 0, 2);
    FrameWorkingSet fs = ws.endFrame();
    EXPECT_EQ(fs.l2[0].blocks_touched, 3u);
}

TEST_F(WorkingSetTest, EmptyFrameIsZero)
{
    WorkingSetCollector ws(tm, {16}, {4});
    FrameWorkingSet fs = ws.endFrame();
    EXPECT_EQ(fs.pixel_refs, 0u);
    EXPECT_EQ(fs.l2[0].blocks_touched, 0u);
    EXPECT_EQ(fs.l1[0].tiles_touched, 0u);
    EXPECT_EQ(fs.push_bytes, 0u);
}

TEST_F(WorkingSetTest, L1BytesUseTileSize)
{
    WorkingSetCollector ws(tm, {}, {4, 8});
    ws.bindTexture(tex_a);
    ws.access(0, 0, 0);
    FrameWorkingSet fs = ws.endFrame();
    EXPECT_EQ(fs.l1[0].bytesTouched(), 4u * 4u * 4u);
    EXPECT_EQ(fs.l1[1].bytesTouched(), 8u * 8u * 4u);
    EXPECT_EQ(fs.l1[0].bytesNew(), fs.l1[0].bytesTouched());
}

} // namespace
} // namespace mltc
