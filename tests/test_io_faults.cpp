/**
 * @file
 * The fault-injectable storage layer (util/io.hpp): spec grammar,
 * deterministic adjudication, the FileBackend failure surface (errno +
 * failure return, exactly like the real thing), the atomicWriteFile
 * retry/rotation ladder under injected storms, and the self-healing
 * behaviour of the writers built on top (CsvWriter, JsonlFileSink).
 */
#include <gtest/gtest.h>

#include <cerrno>
#include <cstdio>
#include <string>
#include <unistd.h>
#include <vector>

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/io.hpp"
#include "util/json.hpp"

namespace mltc {
namespace {

std::string
tempPath(const char *name)
{
    return testing::TempDir() + name + "." + std::to_string(getpid());
}

std::string
fileText(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr) << path;
    if (!f)
        return {};
    std::fseek(f, 0, SEEK_END);
    std::string text(static_cast<size_t>(std::ftell(f)), '\0');
    std::fseek(f, 0, SEEK_SET);
    EXPECT_EQ(std::fread(text.data(), 1, text.size(), f), text.size());
    std::fclose(f);
    return text;
}

/** Install @p config on the global backend for one test's scope. */
class ScopedFaults
{
  public:
    explicit ScopedFaults(const IoFaultConfig &config) : injector_(config)
    {
        FileBackend::instance().installInjector(&injector_);
    }
    ~ScopedFaults() { FileBackend::instance().installInjector(nullptr); }

    IoFaultInjector &injector() { return injector_; }

  private:
    IoFaultInjector injector_;
};

IoFaultConfig
scheduleOnly(std::vector<IoFaultConfig::ScheduleEntry> entries)
{
    IoFaultConfig cfg;
    cfg.schedule = std::move(entries);
    return cfg;
}

// ---------------------------------------------------------------------------
// Spec grammar.

TEST(IoFaultSpec, ParsesRatesScheduleAndSeed)
{
    const IoFaultConfig cfg =
        parseIoFaultSpec("eio=0.02,enospc=0.5,short=1,fsync=0.25,"
                         "torn=0.125,eio:3,torn:7,seed=99");
    EXPECT_DOUBLE_EQ(cfg.eio_rate, 0.02);
    EXPECT_DOUBLE_EQ(cfg.enospc_rate, 0.5);
    EXPECT_DOUBLE_EQ(cfg.short_rate, 1.0);
    EXPECT_DOUBLE_EQ(cfg.fsync_rate, 0.25);
    EXPECT_DOUBLE_EQ(cfg.torn_rate, 0.125);
    EXPECT_EQ(cfg.seed, 99u);
    ASSERT_EQ(cfg.schedule.size(), 2u);
    EXPECT_EQ(cfg.schedule[0].kind, IoFaultKind::Eio);
    EXPECT_EQ(cfg.schedule[0].nth, 3u);
    EXPECT_EQ(cfg.schedule[1].kind, IoFaultKind::TornRename);
    EXPECT_EQ(cfg.schedule[1].nth, 7u);
    EXPECT_TRUE(cfg.anyFaults());
}

TEST(IoFaultSpec, EmptySpecMeansPerfectDisk)
{
    const IoFaultConfig cfg = parseIoFaultSpec("");
    EXPECT_FALSE(cfg.anyFaults());
    EXPECT_EQ(cfg.seed, 42u); // the documented default
}

TEST(IoFaultSpec, MalformedTokensThrowTypedNamingTheToken)
{
    const char *bad[] = {"bogus=0.5", "bogus:3",  "eio=1.5", "eio=-0.1",
                         "eio=abc",   "torn:0",   "torn:-1", "eio",
                         "seed=abc",  "short=\t", "=0.5"};
    for (const char *spec : bad) {
        try {
            parseIoFaultSpec(spec);
            FAIL() << "accepted '" << spec << "'";
        } catch (const Exception &e) {
            EXPECT_EQ(e.code(), ErrorCode::BadArgument) << spec;
        }
    }
}

// ---------------------------------------------------------------------------
// The injector: deterministic, per-op-class ordinals, stats.

TEST(IoFaultInjectorTest, ScheduleFiresExactlyOnTheNthOpOfItsClass)
{
    IoFaultInjector inj(scheduleOnly({{IoFaultKind::Eio, 2},
                                      {IoFaultKind::FsyncFail, 1},
                                      {IoFaultKind::TornRename, 3}}));
    // Interleave classes: ordinals are per class, not global.
    EXPECT_EQ(inj.decide(IoOp::Write), IoFaultKind::None);   // write #1
    EXPECT_EQ(inj.decide(IoOp::Fsync), IoFaultKind::FsyncFail); // fsync #1
    EXPECT_EQ(inj.decide(IoOp::Write), IoFaultKind::Eio);    // write #2
    EXPECT_EQ(inj.decide(IoOp::Rename), IoFaultKind::None);  // rename #1
    EXPECT_EQ(inj.decide(IoOp::Rename), IoFaultKind::None);  // rename #2
    EXPECT_EQ(inj.decide(IoOp::Write), IoFaultKind::None);   // write #3
    EXPECT_EQ(inj.decide(IoOp::Rename), IoFaultKind::TornRename);
    EXPECT_EQ(inj.stats().writes, 3u);
    EXPECT_EQ(inj.stats().fsyncs, 1u);
    EXPECT_EQ(inj.stats().renames, 3u);
    EXPECT_EQ(inj.stats().eio, 1u);
    EXPECT_EQ(inj.stats().fsync_failures, 1u);
    EXPECT_EQ(inj.stats().torn_renames, 1u);
    EXPECT_EQ(inj.stats().injected(), 3u);
}

TEST(IoFaultInjectorTest, SameSeedSameScenario)
{
    IoFaultConfig cfg;
    cfg.seed = 7;
    cfg.eio_rate = 0.2;
    cfg.short_rate = 0.2;
    cfg.fsync_rate = 0.3;
    cfg.torn_rate = 0.3;
    IoFaultInjector a(cfg), b(cfg);
    for (int i = 0; i < 500; ++i) {
        const IoOp op = i % 3 == 0   ? IoOp::Write
                        : i % 3 == 1 ? IoOp::Fsync
                                     : IoOp::Rename;
        EXPECT_EQ(a.decide(op), b.decide(op)) << "op " << i;
    }
    EXPECT_GT(a.stats().injected(), 0u);
}

TEST(IoFaultInjectorTest, RateOneAlwaysFaultsRateZeroNever)
{
    IoFaultConfig always;
    always.eio_rate = 1.0;
    always.fsync_rate = 1.0;
    always.torn_rate = 1.0;
    IoFaultInjector inj(always);
    for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(inj.decide(IoOp::Write), IoFaultKind::Eio);
        EXPECT_EQ(inj.decide(IoOp::Fsync), IoFaultKind::FsyncFail);
        EXPECT_EQ(inj.decide(IoOp::Rename), IoFaultKind::TornRename);
    }
    IoFaultInjector clean((IoFaultConfig()));
    for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(clean.decide(IoOp::Write), IoFaultKind::None);
        EXPECT_EQ(clean.decide(IoOp::Fsync), IoFaultKind::None);
        EXPECT_EQ(clean.decide(IoOp::Rename), IoFaultKind::None);
    }
}

// ---------------------------------------------------------------------------
// FileBackend: injected failures look exactly like real ones.

TEST(FileBackendTest, InjectedWriteFailuresSetErrnoAndLandNothing)
{
    const std::string path = tempPath("backend_eio.bin");
    ScopedFaults faults(scheduleOnly(
        {{IoFaultKind::Eio, 1}, {IoFaultKind::Enospc, 2}}));
    FileBackend &be = FileBackend::instance();

    std::FILE *f = be.open(path, "wb");
    ASSERT_NE(f, nullptr);
    errno = 0;
    EXPECT_FALSE(be.write(f, "abcd", 4));
    EXPECT_EQ(errno, EIO);
    errno = 0;
    EXPECT_FALSE(be.write(f, "abcd", 4));
    EXPECT_EQ(errno, ENOSPC);
    EXPECT_TRUE(be.write(f, "abcd", 4)); // write #3: clean
    EXPECT_TRUE(be.close(f));
    EXPECT_EQ(fileText(path), "abcd"); // the failed writes landed nothing
    std::remove(path.c_str());
}

TEST(FileBackendTest, ShortWriteLandsAPrefixThenFails)
{
    const std::string path = tempPath("backend_short.bin");
    ScopedFaults faults(scheduleOnly({{IoFaultKind::ShortWrite, 1}}));
    FileBackend &be = FileBackend::instance();

    std::FILE *f = be.open(path, "wb");
    ASSERT_NE(f, nullptr);
    errno = 0;
    EXPECT_FALSE(be.write(f, "0123456789", 10));
    EXPECT_EQ(errno, EIO);
    EXPECT_TRUE(be.close(f));
    EXPECT_EQ(fileText(path), "01234"); // exactly the landed prefix
    std::remove(path.c_str());
}

TEST(FileBackendTest, TornRenameLeavesTruncatedDestinationNoSource)
{
    const std::string src = tempPath("backend_torn_src.bin");
    const std::string dst = tempPath("backend_torn_dst.bin");
    {
        std::FILE *f = std::fopen(src.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::fwrite("0123456789", 1, 10, f);
        std::fclose(f);
    }
    ScopedFaults faults(scheduleOnly({{IoFaultKind::TornRename, 1}}));
    FileBackend &be = FileBackend::instance();
    errno = 0;
    EXPECT_FALSE(be.rename(src, dst));
    EXPECT_EQ(errno, EIO);
    EXPECT_FALSE(be.exists(src)) << "source must be gone";
    EXPECT_EQ(fileText(dst), "01234") << "destination must be truncated";
    std::remove(dst.c_str());
}

// ---------------------------------------------------------------------------
// atomicWriteFile: the retried whole-commit makes final bytes
// independent of which attempts faulted.

TEST(AtomicWrite, RetriesThroughAnOpeningFaultStorm)
{
    const std::string path = tempPath("atomic_retry.bin");
    // The first two commit attempts die (a write fault, then a torn
    // commit rename); the third lands clean.
    ScopedFaults faults(scheduleOnly(
        {{IoFaultKind::Eio, 1}, {IoFaultKind::TornRename, 1}}));
    atomicWriteFile(path, "payload", 7, {6, false, false});
    EXPECT_EQ(fileText(path), "payload");
    EXPECT_GE(faults.injector().stats().injected(), 2u);
    std::remove(path.c_str());
}

TEST(AtomicWrite, ExhaustedAttemptsThrowTypedIo)
{
    const std::string path = tempPath("atomic_dead.bin");
    IoFaultConfig cfg;
    cfg.eio_rate = 1.0; // every write fails, forever
    ScopedFaults faults(cfg);
    try {
        atomicWriteFile(path, "payload", 7, {3, false, false});
        FAIL() << "commit succeeded on a dead disk";
    } catch (const Exception &e) {
        EXPECT_EQ(e.code(), ErrorCode::Io);
        EXPECT_NE(std::string(e.what()).find("3 attempts"),
                  std::string::npos);
    }
    EXPECT_FALSE(FileBackend::instance().exists(path));
    std::remove(path.c_str());
}

TEST(AtomicWrite, TornCommitRenameNeverClobbersTheRotatedGeneration)
{
    const std::string path = tempPath("atomic_gen.bin");
    const std::string prev = path + kPreviousGenerationSuffix;
    atomicWriteFile(path, "generation one", 14, {6, true, false});

    // The commit rename of attempt #1 is the SECOND rename in the
    // commit (rotation is the first); tearing it must not make a retry
    // re-rotate the torn destination over the good .prev.
    ScopedFaults faults(scheduleOnly({{IoFaultKind::TornRename, 2}}));
    atomicWriteFile(path, "generation two", 14, {6, true, false});
    EXPECT_EQ(fileText(path), "generation two");
    EXPECT_EQ(fileText(prev), "generation one");
    std::remove(path.c_str());
    std::remove(prev.c_str());
}

TEST(AtomicWrite, FsyncFailuresRecommitDurably)
{
    const std::string path = tempPath("atomic_fsync.bin");
    // durable=true adjudicates the file fsync and the parent-directory
    // fsync; fail the first three fsyncs and the commit must still land.
    ScopedFaults faults(scheduleOnly({{IoFaultKind::FsyncFail, 1},
                                      {IoFaultKind::FsyncFail, 2},
                                      {IoFaultKind::FsyncFail, 3}}));
    atomicWriteFile(path, "durable", 7, {6, false, true});
    EXPECT_EQ(fileText(path), "durable");
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Writers built on the backend.

TEST(IoFaultWriters, CsvWriterCommitsIdenticalBytesUnderAStorm)
{
    const std::string clean_path = tempPath("csv_clean.csv");
    {
        CsvWriter w(clean_path, {"a", "b"});
        w.row({1.0, 2.0});
        w.row({3.0, 4.0});
        w.close();
    }
    const std::string expected = fileText(clean_path);
    std::remove(clean_path.c_str());

    const std::string path = tempPath("csv_storm.csv");
    IoFaultConfig cfg;
    cfg.seed = 1234;
    cfg.eio_rate = 0.2;
    cfg.short_rate = 0.1;
    cfg.torn_rate = 0.1;
    ScopedFaults faults(cfg);
    {
        CsvWriter w(path, {"a", "b"});
        w.row({1.0, 2.0});
        w.row({3.0, 4.0});
        w.close(); // single atomic commit, retried under the storm
    }
    EXPECT_EQ(fileText(path), expected);
    std::remove(path.c_str());
}

TEST(IoFaultWriters, JsonlSinkSelfDisablesAndCountsDrops)
{
    const std::string path = tempPath("sink.jsonl");
    ScopedFaults faults(scheduleOnly({{IoFaultKind::Eio, 2}}));
    JsonlFileSink sink(path);
    EXPECT_FALSE(sink.disabled());
    sink.writeLine("{\"n\":1}"); // write #1: lands
    sink.writeLine("{\"n\":2}"); // write #2: faulted -> self-disable
    sink.writeLine("{\"n\":3}"); // dropped silently
    sink.writeLine("{\"n\":4}"); // dropped silently
    EXPECT_TRUE(sink.disabled());
    EXPECT_EQ(sink.droppedLines(), 3u);
    try {
        sink.close();
        FAIL() << "close() must report the lost lines";
    } catch (const Exception &e) {
        EXPECT_EQ(e.code(), ErrorCode::Io);
    }
    EXPECT_EQ(fileText(path), "{\"n\":1}\n") << "only the landed line";
    std::remove(path.c_str());
}

TEST(IoFaultWriters, InstallFromCliInstallsAndValidates)
{
    {
        const char *argv[] = {"prog", "--io-faults=eio=0.5,seed=3"};
        const CommandLine cli(2, const_cast<char **>(argv));
        EXPECT_TRUE(installIoFaultsFromCli(cli));
        IoFaultInjector *inj = FileBackend::instance().injector();
        ASSERT_NE(inj, nullptr);
        EXPECT_DOUBLE_EQ(inj->config().eio_rate, 0.5);
        EXPECT_EQ(inj->config().seed, 3u);
        clearProcessIoFaults();
        EXPECT_EQ(FileBackend::instance().injector(), nullptr);
    }
    {
        const char *argv[] = {"prog"};
        const CommandLine cli(1, const_cast<char **>(argv));
        EXPECT_FALSE(installIoFaultsFromCli(cli));
    }
    {
        const char *argv[] = {"prog", "--io-faults=eio=2.0"};
        const CommandLine cli(2, const_cast<char **>(argv));
        EXPECT_THROW(installIoFaultsFromCli(cli), Exception);
        EXPECT_EQ(FileBackend::instance().injector(), nullptr);
    }
}

} // namespace
} // namespace mltc
