/**
 * @file
 * The tentpole resilience property: running N frames straight equals
 * running k frames, checkpointing, reloading into a *fresh* runner and
 * finishing — for every counter of every row, across architectures
 * (pull / 2-4-8 MB L2), filters (bilinear / trilinear), snapshot frames
 * k, and with the fallible host path (fault-injection RNG streams must
 * round-trip). scripts/kill_resume.sh proves the same property across a
 * real SIGKILL'ed process; these tests prove it in-process for the
 * whole parameter grid.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <unistd.h>
#include <vector>

#include "sim/multi_config_runner.hpp"
#include "workload/village.hpp"

namespace mltc {
namespace {

Workload
tiny()
{
    VillageParams p;
    p.houses = 4;
    p.trees = 2;
    p.extent = 80.0f;
    p.ground_texture_size = 64;
    p.wall_texture_size = 64;
    return buildVillage(p);
}

DriverConfig
driver(FilterMode filter, int frames)
{
    DriverConfig cfg;
    cfg.width = 64;
    cfg.height = 48;
    cfg.filter = filter;
    cfg.frames = frames;
    return cfg;
}

/** The sweep every test drives: pull + three L2 sizes, TLB on. */
void
addSims(MultiConfigRunner &runner, const HostPathConfig &host)
{
    CacheSimConfig pull = CacheSimConfig::pull(128 << 10);
    pull.host = host;
    runner.addSim(pull, "pull");
    for (uint64_t mb : {2ull, 4ull, 8ull}) {
        CacheSimConfig c = CacheSimConfig::twoLevel(128 << 10, mb << 20);
        c.tlb_entries = 8;
        c.host = host;
        runner.addSim(c, "l2-" + std::to_string(mb) + "mb");
    }
}

void
expectRowsEqual(const std::vector<FrameRow> &a,
                const std::vector<FrameRow> &b, const std::string &ctx)
{
    ASSERT_EQ(a.size(), b.size()) << ctx;
    for (size_t i = 0; i < a.size(); ++i) {
        const FrameRow &x = a[i];
        const FrameRow &y = b[i];
        const std::string at = ctx + " row " + std::to_string(i);
        EXPECT_EQ(x.frame, y.frame) << at;
        EXPECT_EQ(x.raster.objects_visible, y.raster.objects_visible) << at;
        EXPECT_EQ(x.raster.triangles_in, y.raster.triangles_in) << at;
        EXPECT_EQ(x.raster.triangles_drawn, y.raster.triangles_drawn) << at;
        EXPECT_EQ(x.raster.pixels_textured, y.raster.pixels_textured) << at;
        EXPECT_EQ(x.raster.texel_accesses, y.raster.texel_accesses) << at;
        ASSERT_EQ(x.sims.size(), y.sims.size()) << at;
        for (size_t s = 0; s < x.sims.size(); ++s) {
            const CacheFrameStats &p = x.sims[s];
            const CacheFrameStats &q = y.sims[s];
            const std::string sim = at + " sim " + std::to_string(s);
            EXPECT_EQ(p.accesses, q.accesses) << sim;
            EXPECT_EQ(p.l1_misses, q.l1_misses) << sim;
            EXPECT_EQ(p.l2_full_hits, q.l2_full_hits) << sim;
            EXPECT_EQ(p.l2_partial_hits, q.l2_partial_hits) << sim;
            EXPECT_EQ(p.l2_full_misses, q.l2_full_misses) << sim;
            EXPECT_EQ(p.host_bytes, q.host_bytes) << sim;
            EXPECT_EQ(p.l2_read_bytes, q.l2_read_bytes) << sim;
            EXPECT_EQ(p.tlb_probes, q.tlb_probes) << sim;
            EXPECT_EQ(p.tlb_hits, q.tlb_hits) << sim;
            EXPECT_EQ(p.victim_steps_max, q.victim_steps_max) << sim;
            EXPECT_EQ(p.host_retries, q.host_retries) << sim;
            EXPECT_EQ(p.host_failures, q.host_failures) << sim;
            EXPECT_EQ(p.degraded_accesses, q.degraded_accesses) << sim;
            EXPECT_EQ(p.degraded_mip_bias, q.degraded_mip_bias) << sim;
        }
        ASSERT_EQ(x.working_sets.has_value(), y.working_sets.has_value())
            << at;
        if (x.working_sets) {
            const FrameWorkingSet &p = *x.working_sets;
            const FrameWorkingSet &q = *y.working_sets;
            EXPECT_EQ(p.pixel_refs, q.pixel_refs) << at;
            EXPECT_EQ(p.textures_touched, q.textures_touched) << at;
            EXPECT_EQ(p.push_bytes, q.push_bytes) << at;
            EXPECT_EQ(p.loaded_bytes, q.loaded_bytes) << at;
            ASSERT_EQ(p.l2.size(), q.l2.size()) << at;
            for (size_t j = 0; j < p.l2.size(); ++j) {
                EXPECT_EQ(p.l2[j].blocks_touched, q.l2[j].blocks_touched)
                    << at;
                EXPECT_EQ(p.l2[j].blocks_new, q.l2[j].blocks_new) << at;
            }
            ASSERT_EQ(p.l1.size(), q.l1.size()) << at;
            for (size_t j = 0; j < p.l1.size(); ++j) {
                EXPECT_EQ(p.l1[j].tiles_touched, q.l1[j].tiles_touched)
                    << at;
                EXPECT_EQ(p.l1[j].tiles_new, q.l1[j].tiles_new) << at;
            }
        }
        EXPECT_EQ(x.push_bytes, y.push_bytes) << at;
    }
}

// PID-suffixed: ctest runs test cases as parallel processes, so fixed
// names would race on create/remove across cases.
std::string
tempSnap(const std::string &name)
{
    return testing::TempDir() + name + "." + std::to_string(getpid()) +
           ".snap";
}

/**
 * The property itself: straight N-frame run vs. cancel-at-k +
 * checkpoint + fresh-runner resume. Returns through gtest expectations.
 */
void
checkResumeEquivalence(FilterMode filter, int frames, int k,
                       const HostPathConfig &host, const std::string &ctx)
{
    const std::string snap = tempSnap("resume_eq_" + ctx);

    // Reference: the plain (unsupervised) path — also proves
    // runSupervised with defaults renders exactly what run() renders.
    Workload ref_wl = tiny();
    MultiConfigRunner ref(ref_wl, driver(filter, frames));
    addSims(ref, host);
    ref.addWorkingSets({16}, {4});
    ref.addPushModel();
    ref.run();

    // Leg 1: supervised, cancelled after frame k-1 via the same
    // cooperative path a SIGINT takes; final checkpoint lands at k.
    clearCancellation();
    Workload wl1 = tiny();
    MultiConfigRunner part(wl1, driver(filter, frames));
    addSims(part, host);
    part.addWorkingSets({16}, {4});
    part.addPushModel();
    ResilienceConfig rc;
    rc.checkpoint_path = snap;
    rc.audit = AuditLevel::Full;
    RunManifest m1 = part.runSupervised(rc, [&](const FrameRow &row) {
        if (row.frame == k - 1)
            requestCancellation();
    });
    clearCancellation();
    EXPECT_EQ(m1.outcome, RunOutcome::Cancelled) << ctx;
    EXPECT_EQ(m1.next_frame, k) << ctx;
    EXPECT_EQ(m1.frames_completed, k) << ctx;

    // Leg 2: a *fresh* runner (fresh sims, collectors, RNGs) resumes
    // from the checkpoint and finishes.
    Workload wl2 = tiny();
    MultiConfigRunner rest(wl2, driver(filter, frames));
    addSims(rest, host);
    rest.addWorkingSets({16}, {4});
    rest.addPushModel();
    ResilienceConfig rc2 = rc;
    rc2.resume = true;
    RunManifest m2 = rest.runSupervised(rc2);
    EXPECT_EQ(m2.outcome, RunOutcome::Completed) << ctx;
    EXPECT_EQ(m2.frames_completed, frames) << ctx;
    EXPECT_EQ(m2.quarantinedCount(), 0u) << ctx;

    expectRowsEqual(ref.rows(), rest.rows(), ctx);

    std::remove(snap.c_str());
    std::remove((snap + ".manifest").c_str());
}

TEST(ResumeEquivalence, AcrossFilters)
{
    checkResumeEquivalence(FilterMode::Bilinear, 5, 2, {}, "bilinear");
    checkResumeEquivalence(FilterMode::Trilinear, 5, 2, {}, "trilinear");
}

TEST(ResumeEquivalence, EverySnapshotFrame)
{
    for (int k = 1; k < 5; ++k)
        checkResumeEquivalence(FilterMode::Trilinear, 5, k, {},
                               "k" + std::to_string(k));
}

TEST(ResumeEquivalence, FaultInjectionRngRoundTrips)
{
    for (uint64_t seed : {7ull, 1234ull}) {
        HostPathConfig host;
        host.fault_injection = true;
        host.faults.seed = seed;
        host.faults.drop_rate = 0.15;
        host.faults.corrupt_rate = 0.08;
        host.faults.spike_rate = 0.05;
        host.faults.burst_period = 200;
        host.faults.burst_length = 20;
        checkResumeEquivalence(FilterMode::Trilinear, 4, 2, host,
                               "faults-seed" + std::to_string(seed));
    }
}

TEST(ResumeEquivalence, PeriodicCheckpointsDoNotPerturbTheRun)
{
    // Checkpointing every frame must be purely observational.
    const std::string snap = tempSnap("resume_eq_periodic");
    Workload ref_wl = tiny();
    MultiConfigRunner ref(ref_wl, driver(FilterMode::Trilinear, 4));
    addSims(ref, {});
    ref.run();

    clearCancellation();
    Workload wl = tiny();
    MultiConfigRunner sup(wl, driver(FilterMode::Trilinear, 4));
    addSims(sup, {});
    ResilienceConfig rc;
    rc.checkpoint_path = snap;
    rc.checkpoint_every = 1;
    RunManifest m = sup.runSupervised(rc);
    EXPECT_EQ(m.outcome, RunOutcome::Completed);
    expectRowsEqual(ref.rows(), sup.rows(), "periodic");
    std::remove(snap.c_str());
    std::remove((snap + ".manifest").c_str());
}

TEST(ResumeEquivalence, CheckpointRejectsMismatchedRunner)
{
    const std::string snap = tempSnap("resume_eq_mismatch");
    Workload wl = tiny();
    MultiConfigRunner donor(wl, driver(FilterMode::Trilinear, 3));
    addSims(donor, {});
    clearCancellation();
    ResilienceConfig rc;
    rc.checkpoint_path = snap;
    donor.runSupervised(rc, [&](const FrameRow &row) {
        if (row.frame == 0)
            requestCancellation();
    });
    clearCancellation();

    // Fewer sims.
    {
        Workload wl2 = tiny();
        MultiConfigRunner other(wl2, driver(FilterMode::Trilinear, 3));
        other.addSim(CacheSimConfig::pull(128 << 10), "pull");
        try {
            other.loadCheckpoint(snap);
            FAIL() << "sim-count skew accepted";
        } catch (const Exception &e) {
            EXPECT_EQ(e.code(), ErrorCode::VersionMismatch);
        }
    }
    // Different label.
    {
        Workload wl2 = tiny();
        MultiConfigRunner other(wl2, driver(FilterMode::Trilinear, 3));
        CacheSimConfig pull = CacheSimConfig::pull(128 << 10);
        other.addSim(pull, "renamed");
        for (uint64_t mb : {2ull, 4ull, 8ull})
            other.addSim(CacheSimConfig::twoLevel(128 << 10, mb << 20),
                         "l2-" + std::to_string(mb) + "mb");
        try {
            other.loadCheckpoint(snap);
            FAIL() << "label skew accepted";
        } catch (const Exception &e) {
            EXPECT_EQ(e.code(), ErrorCode::VersionMismatch);
        }
    }
    // Different driver config (frame count).
    {
        Workload wl2 = tiny();
        MultiConfigRunner other(wl2, driver(FilterMode::Trilinear, 9));
        addSims(other, {});
        try {
            other.loadCheckpoint(snap);
            FAIL() << "driver-config skew accepted";
        } catch (const Exception &e) {
            EXPECT_EQ(e.code(), ErrorCode::VersionMismatch);
        }
    }
    std::remove(snap.c_str());
    std::remove((snap + ".manifest").c_str());
}

TEST(ResumeEquivalence, WallBudgetStopsEarlyWithCheckpoint)
{
    const std::string snap = tempSnap("resume_eq_budget");
    clearCancellation();
    Workload wl = tiny();
    MultiConfigRunner sup(wl, driver(FilterMode::Trilinear, 50));
    addSims(sup, {});
    ResilienceConfig rc;
    rc.checkpoint_path = snap;
    rc.wall_budget_ms = 0.000001; // exhausted after the first frame
    RunManifest m = sup.runSupervised(rc);
    EXPECT_EQ(m.outcome, RunOutcome::BudgetExhausted);
    EXPECT_LT(m.frames_completed, 50);
    EXPECT_EQ(m.next_frame, m.frames_completed);

    // The checkpoint written at the stop is a valid resume point.
    Workload wl2 = tiny();
    MultiConfigRunner rest(wl2, driver(FilterMode::Trilinear, 50));
    addSims(rest, {});
    EXPECT_EQ(rest.loadCheckpoint(snap), m.next_frame);
    std::remove(snap.c_str());
    std::remove((snap + ".manifest").c_str());
}

} // namespace
} // namespace mltc
