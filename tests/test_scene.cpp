/**
 * @file
 * Unit tests for Scene (object management, world bounds, culling),
 * Camera and CameraPath.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "scene/camera.hpp"
#include "scene/camera_path.hpp"
#include "scene/scene.hpp"

namespace mltc {
namespace {

constexpr float kPi = 3.14159265358979f;

MeshPtr
unitQuad()
{
    return std::make_shared<Mesh>(makeQuadXZ(2.0f, 2.0f, 1.0f, 1.0f));
}

TEST(Scene, AddObjectComputesWorldBounds)
{
    Scene scene;
    size_t idx = scene.addObject(unitQuad(), Mat4::translate({10, 0, 0}), 1);
    const SceneObject &obj = scene.objects()[idx];
    EXPECT_NEAR(obj.world_bounds.center().x, 10.0f, 1e-5f);
    EXPECT_NEAR(obj.world_bounds.min.x, 9.0f, 1e-5f);
}

TEST(Scene, RotatedBoundsAreConservative)
{
    Scene scene;
    scene.addObject(unitQuad(), Mat4::rotateY(kPi / 4.0f), 1);
    const SceneObject &obj = scene.objects()[0];
    // A 2x2 quad rotated 45 degrees spans sqrt(2) in each axis direction.
    EXPECT_NEAR(obj.world_bounds.max.x, std::sqrt(2.0f), 1e-4f);
}

TEST(Scene, TriangleCountSums)
{
    Scene scene;
    scene.addObject(unitQuad(), Mat4::identity(), 1);
    scene.addObject(unitQuad(), Mat4::identity(), 2);
    EXPECT_EQ(scene.triangleCount(), 4u);
}

TEST(Scene, BoundsCoverAllObjects)
{
    Scene scene;
    scene.addObject(unitQuad(), Mat4::translate({-5, 0, 0}), 1);
    scene.addObject(unitQuad(), Mat4::translate({5, 0, 0}), 1);
    Aabb b = scene.bounds();
    EXPECT_FLOAT_EQ(b.min.x, -6.0f);
    EXPECT_FLOAT_EQ(b.max.x, 6.0f);
}

TEST(Scene, CullingDropsObjectsBehindCamera)
{
    Scene scene;
    scene.addObject(unitQuad(), Mat4::translate({0, 0, -10}), 1, "front");
    scene.addObject(unitQuad(), Mat4::translate({0, 0, 10}), 1, "behind");

    Camera cam(kPi / 3.0f, 1.0f, 0.5f, 100.0f);
    cam.lookAt({0, 1, 0}, {0, 1, -1});
    auto visible = scene.visibleObjects(cam.frustum());
    ASSERT_EQ(visible.size(), 1u);
    EXPECT_EQ(scene.objects()[visible[0]].name, "front");
}

TEST(Scene, TwoSidedFlagStored)
{
    Scene scene;
    scene.addObject(unitQuad(), Mat4::identity(), 1, "ts", true);
    EXPECT_TRUE(scene.objects()[0].two_sided);
}

TEST(Camera, FrustumFollowsLookAt)
{
    Camera cam(kPi / 3.0f, 1.0f, 0.5f, 100.0f);
    cam.lookAt({0, 0, 0}, {0, 0, -1});
    Aabb front;
    front.extend({-1, -1, -11});
    front.extend({1, 1, -9});
    EXPECT_TRUE(cam.frustum().intersects(front));

    cam.lookAt({0, 0, 0}, {0, 0, 1}); // turn around
    EXPECT_FALSE(cam.frustum().intersects(front));
}

TEST(Camera, EyeAccessor)
{
    Camera cam(kPi / 3.0f, 1.0f, 0.5f, 100.0f);
    cam.lookAt({3, 4, 5}, {0, 0, 0});
    EXPECT_FLOAT_EQ(cam.eye().x, 3);
    EXPECT_FLOAT_EQ(cam.nearPlane(), 0.5f);
    EXPECT_FLOAT_EQ(cam.farPlane(), 100.0f);
}

TEST(CameraPath, EmptyPathGivesOrigin)
{
    CameraPath path;
    CameraPose p = path.sample(0.5f);
    EXPECT_FLOAT_EQ(p.eye.x, 0);
}

TEST(CameraPath, SingleKeyIsConstant)
{
    CameraPath path;
    path.addKey({1, 2, 3}, {4, 5, 6});
    for (float t : {0.0f, 0.5f, 1.0f}) {
        CameraPose p = path.sample(t);
        EXPECT_FLOAT_EQ(p.eye.x, 1);
        EXPECT_FLOAT_EQ(p.target.z, 6);
    }
}

TEST(CameraPath, HitsKeyframesAtEndpoints)
{
    CameraPath path;
    path.addKey({0, 0, 0}, {1, 0, 0});
    path.addKey({10, 0, 0}, {11, 0, 0});
    CameraPose start = path.sample(0.0f);
    CameraPose end = path.sample(1.0f);
    EXPECT_NEAR(start.eye.x, 0.0f, 1e-4f);
    EXPECT_NEAR(end.eye.x, 10.0f, 1e-4f);
}

TEST(CameraPath, InterpolationIsContinuous)
{
    CameraPath path;
    path.addKey({0, 0, 0}, {0, 0, -1});
    path.addKey({10, 0, 0}, {10, 0, -1});
    path.addKey({10, 0, 10}, {10, 0, 9});
    path.addKey({0, 0, 10}, {0, 0, 9});
    Vec3 prev = path.sample(0.0f).eye;
    for (int i = 1; i <= 100; ++i) {
        Vec3 cur = path.sample(static_cast<float>(i) / 100.0f).eye;
        EXPECT_LT((cur - prev).length(), 1.0f)
            << "discontinuity at t=" << i / 100.0f;
        prev = cur;
    }
}

TEST(CameraPath, ClampsOutOfRangeT)
{
    CameraPath path;
    path.addKey({0, 0, 0}, {0, 0, -1});
    path.addKey({10, 0, 0}, {10, 0, -1});
    EXPECT_NEAR(path.sample(-0.5f).eye.x, 0.0f, 1e-4f);
    EXPECT_NEAR(path.sample(1.5f).eye.x, 10.0f, 1e-4f);
}

TEST(CameraPath, AtFrameSpansWholeAnimation)
{
    CameraPath path;
    path.addKey({0, 0, 0}, {0, 0, -1});
    path.addKey({10, 0, 0}, {10, 0, -1});
    EXPECT_NEAR(path.atFrame(0, 100).eye.x, 0.0f, 1e-4f);
    EXPECT_NEAR(path.atFrame(99, 100).eye.x, 10.0f, 1e-4f);
}

} // namespace
} // namespace mltc
