/**
 * @file
 * Unit tests for the BTC texture compression extension.
 */
#include <gtest/gtest.h>

#include "texture/btc.hpp"
#include "texture/procedural.hpp"
#include "texture/texture_manager.hpp"

namespace mltc {
namespace {

TEST(Rgb565, RoundTripEndpoints)
{
    EXPECT_EQ(unpackRgb565(packRgb565(0, 0, 0)), packRgba(0, 0, 0));
    EXPECT_EQ(unpackRgb565(packRgb565(255, 255, 255)),
              packRgba(255, 255, 255));
}

TEST(Rgb565, QuantisationErrorBounded)
{
    for (int v = 0; v < 256; v += 7) {
        uint32_t t = unpackRgb565(packRgb565(static_cast<uint8_t>(v),
                                             static_cast<uint8_t>(v),
                                             static_cast<uint8_t>(v)));
        EXPECT_NEAR(channel(t, 0), v, 8); // 5-bit channel
        EXPECT_NEAR(channel(t, 1), v, 4); // 6-bit channel
        EXPECT_NEAR(channel(t, 2), v, 8);
    }
}

TEST(Btc, RateIsThreeBitsPerTexel)
{
    Image img(64, 64, packRgba(100, 120, 140));
    BtcImage c = encodeBtc(img);
    EXPECT_EQ(c.blocks.size(), 16u * 16u);
    // 48-bit blocks over 16 texels = 3 bits/texel.
    EXPECT_EQ(c.bytes(), 64u * 64u * kBtcBitsPerTexel / 8);
    EXPECT_EQ(sizeof(BtcBlock), 6u);
}

TEST(Btc, RejectsTinyImages)
{
    EXPECT_THROW(encodeBtc(Image(2, 2)), std::invalid_argument);
}

TEST(Btc, FlatImageIsExact)
{
    Image img(16, 16, packRgba(96, 160, 224));
    Image back = decodeBtc(encodeBtc(img));
    // Only RGB565 quantisation error remains on a flat image.
    EXPECT_LT(meanAbsoluteError(img, back), 4.5);
}

TEST(Btc, TwoToneBlockIsNearExact)
{
    // A black/white checker alternates within each block: BTC's two
    // endpoints represent it exactly (up to 565 quantisation).
    Image img = makeChecker(32, 2, packRgba(0, 0, 0),
                            packRgba(255, 255, 255));
    Image back = decodeBtc(encodeBtc(img));
    EXPECT_LT(meanAbsoluteError(img, back), 1.0);
}

TEST(Btc, NaturalTextureQualityReasonable)
{
    Image img = makeBrickWall(128, 3);
    Image back = decodeBtc(encodeBtc(img));
    // Lossy but recognisable: mean error well under 10% of full scale.
    EXPECT_LT(meanAbsoluteError(img, back), 20.0);
}

TEST(Btc, DecodePreservesDimensions)
{
    Image img = makeGrass(64, 9);
    Image back = decodeBtc(encodeBtc(img));
    EXPECT_EQ(back.width(), 64u);
    EXPECT_EQ(back.height(), 64u);
}

TEST(Btc, MaskSelectsBrighterTexels)
{
    Image img(4, 4, packRgba(10, 10, 10));
    img.setTexel(0, 0, packRgba(250, 250, 250));
    img.setTexel(3, 3, packRgba(250, 250, 250));
    BtcImage c = encodeBtc(img);
    ASSERT_EQ(c.blocks.size(), 1u);
    EXPECT_TRUE(c.blocks[0].mask & 1u);          // (0,0)
    EXPECT_TRUE(c.blocks[0].mask & (1u << 15));  // (3,3)
    EXPECT_FALSE(c.blocks[0].mask & (1u << 5));  // (1,1) dark
}

TEST(Btc, MeanAbsoluteErrorValidation)
{
    Image a(4, 4, packRgba(10, 10, 10));
    Image b(4, 4, packRgba(13, 10, 7));
    EXPECT_DOUBLE_EQ(meanAbsoluteError(a, b), 2.0);
    EXPECT_THROW(meanAbsoluteError(a, Image(8, 8)),
                 std::invalid_argument);
}

TEST(Btc, ManagerTracksCompressedDepth)
{
    TextureManager tm;
    TextureId t = tm.load("c", MipPyramid(Image(64, 64)));
    uint64_t texels = tm.texture(t).pyramid.totalTexels();
    EXPECT_EQ(tm.texture(t).hostBytes(), texels * 4);
    tm.setHostBitsPerTexel(t, kBtcBitsPerTexel);
    EXPECT_EQ(tm.texture(t).hostBytes(), texels * kBtcBitsPerTexel / 8);
    EXPECT_THROW(tm.setHostBitsPerTexel(t, 0), std::invalid_argument);
    EXPECT_THROW(tm.setHostBitsPerTexel(99, 4), std::out_of_range);
}

} // namespace
} // namespace mltc
