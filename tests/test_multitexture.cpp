/**
 * @file
 * Tests for multi-pass multitexturing (detail texture layers) — the
 * multi-texture trend the paper's §4 cites as a source of intra-frame
 * texture locality.
 */
#include <gtest/gtest.h>

#include "core/cache_sim.hpp"
#include "raster/rasterizer.hpp"
#include "texture/procedural.hpp"

namespace mltc {
namespace {

constexpr float kPi = 3.14159265358979f;

class MultitextureTest : public ::testing::Test
{
  protected:
    MultitextureTest() : cam(kPi / 2.0f, 1.0f, 0.5f, 500.0f)
    {
        base = tm.load("base", MipPyramid(makeChecker(128, 8, 0xff0000ffu,
                                                      0xff00ff00u)));
        detail = tm.load("detail", MipPyramid(makeGrass(64, 5)));
        auto quad = std::make_shared<Mesh>(makeQuadXY(40, 40, 2, 2));
        obj_index = scene.addObject(quad, Mat4::translate({0, -20, -10}),
                                    base, "wall");
        cam.lookAt({0, 0, 0}, {0, 0, -1});
    }

    TextureManager tm;
    TextureId base, detail;
    Scene scene;
    size_t obj_index;
    Camera cam;
};

TEST_F(MultitextureTest, NoDetailByDefault)
{
    Rasterizer raster(32, 32);
    CountingSink sink;
    raster.setSink(&sink);
    FrameStats fs = raster.renderFrame(scene, cam, tm);
    EXPECT_EQ(fs.pixels_textured, 32u * 32u);
}

TEST_F(MultitextureTest, DetailPassDoublesTexturedPixels)
{
    scene.object(obj_index).detail_texture = detail;
    Rasterizer raster(32, 32);
    CountingSink sink;
    raster.setSink(&sink);
    FrameStats fs = raster.renderFrame(scene, cam, tm);
    // Two passes over the same coverage.
    EXPECT_EQ(fs.pixels_textured, 2u * 32u * 32u);
    EXPECT_EQ(sink.count, fs.texel_accesses);
}

TEST_F(MultitextureTest, BothTexturesReachTheCache)
{
    scene.object(obj_index).detail_texture = detail;
    Rasterizer raster(32, 32);
    raster.setFilter(FilterMode::Point);
    CacheSim sim(tm, CacheSimConfig::twoLevel(16 * 1024, 1ull << 20),
                 "sim");
    raster.setSink(&sim);
    raster.renderFrame(scene, cam, tm);
    sim.endFrame();
    // The page table saw blocks from both textures: misses must have
    // touched two distinct tstart regions. Probe indirectly: the L2
    // allocated more blocks than one 128^2 texture's visible footprint
    // could (the detail layer tiles 8x, forcing its own blocks).
    EXPECT_GT(sim.l2()->allocatedBlocks(), 0u);
    EXPECT_GT(sim.totals().l1_misses, 0u);
}

TEST_F(MultitextureTest, DetailUvScaleShiftsLod)
{
    // With a large uv scale the detail pass minifies more -> coarser
    // mips -> fewer distinct base-level texels than an unscaled pass.
    scene.object(obj_index).detail_texture = detail;
    auto run = [&](float scale) {
        scene.object(obj_index).detail_uv_scale = scale;
        Rasterizer raster(64, 64);
        raster.setFilter(FilterMode::Point);
        CacheSim sim(tm, CacheSimConfig::pull(64 * 1024), "probe");
        raster.setSink(&sim);
        raster.renderFrame(scene, cam, tm);
        return sim.endFrame().l1_misses;
    };
    uint64_t fine = run(1.0f);
    uint64_t coarse = run(64.0f);
    // Heavy tiling repeats the same texels - fewer distinct tiles.
    EXPECT_LT(coarse, fine * 2);
}

TEST_F(MultitextureTest, DepthComplexityCountsBothPasses)
{
    scene.object(obj_index).detail_texture = detail;
    Rasterizer raster(32, 32);
    CountingSink sink;
    raster.setSink(&sink);
    FrameStats fs = raster.renderFrame(scene, cam, tm);
    EXPECT_NEAR(fs.depthComplexity(32, 32), 2.0, 0.01);
}

} // namespace
} // namespace mltc
