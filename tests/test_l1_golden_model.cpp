/**
 * @file
 * Differential test: L1Cache against a transparent map-based
 * set-associative LRU reference, across associativities and sizes.
 */
#include <gtest/gtest.h>

#include <list>
#include <map>
#include <vector>

#include "core/l1_cache.hpp"
#include "util/rng.hpp"

namespace mltc {
namespace {

/** Reference set-associative LRU cache with the same set indexing. */
class GoldenL1
{
  public:
    GoldenL1(uint32_t sets, uint32_t assoc, uint32_t subs_per_block)
        : sets_(sets), assoc_(assoc), spb_(subs_per_block),
          lru_(sets)
    {
    }

    uint32_t
    setOf(uint64_t key) const
    {
        uint32_t tid = static_cast<uint32_t>(key >> 32);
        uint32_t l2 = static_cast<uint32_t>((key >> 8) & 0xffffff);
        uint32_t l1 = static_cast<uint32_t>(key & 0xff);
        return (l2 * spb_ + l1 + tid * 0x9e3779b1u) & (sets_ - 1);
    }

    bool
    lookup(uint64_t key)
    {
        auto &set = lru_[setOf(key)];
        for (auto it = set.begin(); it != set.end(); ++it) {
            if (*it == key) {
                set.erase(it);
                set.push_front(key); // move to MRU
                return true;
            }
        }
        return false;
    }

    void
    fill(uint64_t key)
    {
        auto &set = lru_[setOf(key)];
        if (set.size() >= assoc_)
            set.pop_back(); // evict LRU
        set.push_front(key);
    }

  private:
    uint32_t sets_, assoc_, spb_;
    std::vector<std::list<uint64_t>> lru_;
};

struct L1Case
{
    uint64_t size_bytes;
    uint32_t assoc;
    uint32_t l1_tile;
    uint64_t seed;
};

class L1GoldenTest : public ::testing::TestWithParam<L1Case>
{
};

TEST_P(L1GoldenTest, MatchesReference)
{
    const L1Case p = GetParam();
    L1Config cfg;
    cfg.size_bytes = p.size_bytes;
    cfg.assoc = p.assoc;
    cfg.l1_tile = p.l1_tile;
    L1Cache dut(cfg);

    uint32_t span = std::max(16u, p.l1_tile);
    uint32_t per_edge = span / p.l1_tile;
    GoldenL1 gold(dut.sets(), p.assoc ? p.assoc : static_cast<uint32_t>(
                                                      cfg.lines()),
                  per_edge * per_edge);

    Rng rng(p.seed);
    uint64_t hits = 0, misses = 0;
    for (int i = 0; i < 40000; ++i) {
        uint64_t key = packBlock(
            {1 + static_cast<TextureId>(rng.below(3)),
             static_cast<uint32_t>(rng.below(256)),
             static_cast<uint32_t>(rng.below(16))});
        bool expect = gold.lookup(key);
        bool got = dut.lookup(key);
        ASSERT_EQ(got, expect) << "iteration " << i;
        if (got) {
            ++hits;
        } else {
            ++misses;
            gold.fill(key);
            dut.fill(key);
            ASSERT_TRUE(dut.probe(key));
        }
    }
    EXPECT_EQ(dut.stats().accesses, hits + misses);
    EXPECT_EQ(dut.stats().misses, misses);
    EXPECT_GT(hits, 0u);
    EXPECT_GT(misses, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, L1GoldenTest,
    ::testing::Values(L1Case{2 * 1024, 1, 4, 1}, L1Case{2 * 1024, 2, 4, 2},
                      L1Case{4 * 1024, 4, 4, 3}, L1Case{16 * 1024, 2, 4, 4},
                      L1Case{8 * 1024, 2, 8, 5}, L1Case{2 * 1024, 0, 4, 6}),
    [](const ::testing::TestParamInfo<L1Case> &info) {
        return "s" + std::to_string(info.param.size_bytes / 1024) + "k_a" +
               std::to_string(info.param.assoc) + "_t" +
               std::to_string(info.param.l1_tile);
    });

} // namespace
} // namespace mltc
