/**
 * @file
 * Unit tests for the observability layer: metric key canonicalization,
 * the enabled/disabled metrics registry, per-frame JSONL snapshots, the
 * Chrome trace writer (schema-checked by re-parsing its own output),
 * the global-tracer hooks (ScopedTrace / SelfTimer), the shared CLI
 * flags, and checkpoint/resume bit-equivalence of a CacheSim running
 * with 3C classification enabled.
 */
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <unistd.h>
#include <vector>

#include "core/cache_sim.hpp"
#include "obs/metrics.hpp"
#include "obs/observability.hpp"
#include "obs/trace_event.hpp"
#include "texture/procedural.hpp"
#include "texture/texture_manager.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/serializer.hpp"

namespace mltc {
namespace {

// PID-suffixed: ctest runs each test case as its own process, possibly
// in parallel, so shared fixed names would race on create/remove.
std::string
tempPath(const char *name)
{
    return testing::TempDir() + name + "." + std::to_string(getpid());
}

std::string
fileText(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

TEST(MetricKey, CanonicalSortedLabels)
{
    EXPECT_EQ(metricKey("l2.miss", {}), "l2.miss");
    EXPECT_EQ(metricKey("l2.miss", {{"tex", "5"}, {"level", "2"}}),
              "l2.miss{level=2,tex=5}");
    try {
        metricKey("x", {{"tex", "1"}, {"tex", "2"}});
        FAIL() << "duplicate label keys must throw";
    } catch (const Exception &e) {
        EXPECT_EQ(e.code(), ErrorCode::BadArgument);
    }
}

TEST(MetricsRegistry, EnabledHandlesShareStorage)
{
    MetricsRegistry reg(true);
    CounterHandle a = reg.counter("l1.miss", {{"sim", "A"}});
    CounterHandle b = reg.counter("l1.miss", {{"sim", "A"}});
    ASSERT_TRUE(a);
    a.inc(3);
    b.inc();
    EXPECT_EQ(a.value(), 4u);
    EXPECT_EQ(reg.counterValue("l1.miss{sim=A}"), 4u);
    a.set(10);
    EXPECT_EQ(b.value(), 10u);

    GaugeHandle g = reg.gauge("l1.hit_rate");
    g.set(0.75);
    EXPECT_DOUBLE_EQ(reg.gaugeValue("l1.hit_rate"), 0.75);

    HistogramHandle h = reg.histogram("fetch.us", {}, 1024);
    h.observe(5);
    h.observe(7);
    ASSERT_NE(h.histogram(), nullptr);
    EXPECT_EQ(h.histogram()->count(), 2u);
    EXPECT_EQ(reg.size(), 3u);
}

TEST(MetricsRegistry, KindClashThrows)
{
    MetricsRegistry reg(true);
    reg.counter("metric.x");
    try {
        reg.gauge("metric.x");
        FAIL() << "re-registering a counter as a gauge must throw";
    } catch (const Exception &e) {
        EXPECT_EQ(e.code(), ErrorCode::BadArgument);
    }
}

TEST(MetricsRegistry, DisabledModeIsInert)
{
    MetricsRegistry reg(false);
    CounterHandle c = reg.counter("l1.miss");
    GaugeHandle g = reg.gauge("rate");
    HistogramHandle h = reg.histogram("dist");
    EXPECT_FALSE(c);
    EXPECT_FALSE(g);
    EXPECT_FALSE(h);
    c.inc(100);
    g.set(1.0);
    h.observe(1);
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(reg.size(), 0u); // no storage, no keys, no allocation
    // The snapshot of a disabled registry is still one valid JSON row.
    const JsonValue row = parseJson(reg.frameSnapshotJson(7));
    EXPECT_DOUBLE_EQ(row.at("frame").asNumber(), 7.0);
}

TEST(MetricsRegistry, FrameSnapshotShape)
{
    MetricsRegistry reg(true);
    reg.counter("l1.miss", {{"sim", "A"}}).inc(42);
    reg.gauge("tlb.hit_rate").set(0.5);
    reg.histogram("fetch.us").observe(9);

    const JsonValue row = parseJson(reg.frameSnapshotJson(3));
    EXPECT_DOUBLE_EQ(row.at("frame").asNumber(), 3.0);
    EXPECT_DOUBLE_EQ(row.at("counters").at("l1.miss{sim=A}").asNumber(),
                     42.0);
    EXPECT_DOUBLE_EQ(row.at("gauges").at("tlb.hit_rate").asNumber(), 0.5);
    EXPECT_TRUE(row.at("histograms").at("fetch.us").isObject());
}

TEST(MetricsRegistry, WritesFrameSnapshotsToSink)
{
    const std::string path = tempPath("metrics.jsonl");
    {
        JsonlFileSink sink(path);
        MetricsRegistry reg(true);
        CounterHandle c = reg.counter("l1.miss");
        for (int frame = 0; frame < 3; ++frame) {
            c.inc(10);
            reg.writeFrameSnapshot(sink, frame);
        }
        sink.close();
    }
    std::ifstream in(path);
    std::string line;
    int frames = 0;
    while (std::getline(in, line)) {
        const JsonValue row = parseJson(line);
        EXPECT_DOUBLE_EQ(row.at("frame").asNumber(), frames);
        // Cumulative, not per-frame: consumers diff adjacent rows.
        EXPECT_DOUBLE_EQ(row.at("counters").at("l1.miss").asNumber(),
                         10.0 * (frames + 1));
        ++frames;
    }
    EXPECT_EQ(frames, 3);
    std::remove(path.c_str());
}

/** Re-parse a trace file and verify the Chrome trace-event schema. */
void
checkTraceSchema(const std::string &path, size_t expect_durations,
                 size_t expect_counters, size_t expect_instants)
{
    const JsonValue doc = parseJson(fileText(path));
    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc.at("displayTimeUnit").asString(), "ms");
    const auto &events = doc.at("traceEvents").asArray();

    size_t opens = 0, durations = 0, counters = 0, instants = 0;
    double last_ts = -1.0;
    for (const JsonValue &ev : events) {
        const std::string &ph = ev.at("ph").asString();
        EXPECT_TRUE(ev.at("pid").isNumber());
        EXPECT_TRUE(ev.at("tid").isNumber());
        if (ph == "M")
            continue;
        const double ts = ev.at("ts").asNumber();
        EXPECT_GE(ts, last_ts) << "timestamps must be non-decreasing";
        last_ts = ts;
        if (ph == "B") {
            EXPECT_TRUE(ev.at("name").isString());
            ++opens;
            ++durations;
        } else if (ph == "E") {
            ASSERT_GT(opens, 0u) << "E with no open B";
            --opens;
        } else if (ph == "C") {
            ++counters;
            for (const auto &[series, v] : ev.at("args").asObject())
                EXPECT_TRUE(v.isNumber()) << series;
        } else if (ph == "i") {
            EXPECT_TRUE(ev.at("name").isString());
            ++instants;
        } else {
            FAIL() << "unexpected phase " << ph;
        }
    }
    EXPECT_EQ(opens, 0u) << "unbalanced B/E pairs";
    EXPECT_EQ(durations, expect_durations);
    EXPECT_EQ(counters, expect_counters);
    EXPECT_EQ(instants, expect_instants);
}

TEST(ChromeTraceWriter, EmitsValidChromeTrace)
{
    const std::string path = tempPath("trace.json");
    {
        ChromeTraceWriter t(path);
        t.begin("frame", "frame");
        t.begin("raster.texture_pass", "raster");
        t.end();
        t.instant("checkpoint.saved", "runner");
        t.counter("miss_rates", {{"l1", 0.25}, {"tlb", 0.5}});
        t.end();
        EXPECT_EQ(t.openScopes(), 0u);
        t.close();
    }
    checkTraceSchema(path, 2, 1, 1);
    std::remove(path.c_str());
}

TEST(ChromeTraceWriter, CloseBalancesLeftoverScopes)
{
    const std::string path = tempPath("trace_open.json");
    {
        ChromeTraceWriter t(path);
        t.begin("outer", "test");
        t.begin("inner", "test");
        EXPECT_EQ(t.openScopes(), 2u);
        t.close(); // must emit the two missing E events
    }
    checkTraceSchema(path, 2, 0, 0);
    std::remove(path.c_str());
}

TEST(ChromeTraceWriter, StageStatsAggregateSelfTime)
{
    const std::string path = tempPath("trace_stats.json");
    ChromeTraceWriter t(path);
    t.begin("outer", "test");
    t.begin("inner", "test");
    t.end();
    t.end();
    t.begin("inner", "test");
    t.end();
    t.recordAggregate("cachesim.access", 1500);
    t.close();

    const auto stats = t.stageStats();
    ASSERT_EQ(stats.size(), 3u);
    uint64_t outer_total = 0, outer_self = 0, inner_total = 0;
    bool saw_aggregate = false;
    for (const StageStat &s : stats) {
        EXPECT_LE(s.self_us, s.total_us) << s.name;
        if (s.name == "outer") {
            EXPECT_EQ(s.count, 1u);
            outer_total = s.total_us;
            outer_self = s.self_us;
        } else if (s.name == "inner") {
            EXPECT_EQ(s.count, 2u);
            inner_total = s.total_us;
        } else if (s.name == "cachesim.access") {
            EXPECT_EQ(s.count, 1u);
            EXPECT_EQ(s.total_us, 1500u);
            EXPECT_EQ(s.self_us, 1500u);
            saw_aggregate = true;
        }
    }
    EXPECT_TRUE(saw_aggregate);
    // outer's self time excludes the first inner run (but not the
    // second, which ran outside outer).
    EXPECT_LE(outer_self, outer_total);
    EXPECT_GE(inner_total, 0u);
    std::remove(path.c_str());
}

TEST(GlobalTracer, ScopedTraceAndSelfTimerAreInertWithoutTracer)
{
    ASSERT_EQ(globalTracer(), nullptr);
    { ScopedTrace scope("nothing", "test"); } // must not crash
    uint64_t accum = 0;
    { SelfTimer timer(&accum); }
    EXPECT_EQ(accum, 0u); // no tracer -> no timing, not even a read
}

TEST(GlobalTracer, HooksFeedInstalledTracer)
{
    const std::string path = tempPath("trace_hooks.json");
    {
        ChromeTraceWriter t(path);
        setGlobalTracer(&t);
        { ScopedTrace scope("hooked", "test"); }
        uint64_t accum = 0;
        {
            SelfTimer timer(&accum);
            // A little real work so steady_clock can tick.
            volatile uint64_t sink = 0;
            for (uint64_t i = 0; i < 50000; ++i)
                sink = sink + i;
        }
        t.recordAggregate("hook.accum", accum / 1000);
        setGlobalTracer(nullptr);
        t.close();
    }
    ASSERT_EQ(globalTracer(), nullptr);
    checkTraceSchema(path, 1, 0, 0);
    std::remove(path.c_str());
}

TEST(ObsCli, ParsesSharedFlags)
{
    const char *argv[] = {"prog", "--metrics-out=m.jsonl",
                          "--trace-out=t.json", "--miss-classes",
                          "--top-textures=3"};
    const CommandLine cli(5, argv);
    const ObsConfig cfg = obsFromCli(cli);
    EXPECT_EQ(cfg.metrics_path, "m.jsonl");
    EXPECT_EQ(cfg.trace_path, "t.json");
    EXPECT_TRUE(cfg.miss_classes);
    EXPECT_EQ(cfg.top_textures, 3u);
    EXPECT_TRUE(cfg.anyEnabled());

    const char *none[] = {"prog"};
    EXPECT_FALSE(obsFromCli(CommandLine(1, none)).anyEnabled());
}

TEST(Observability, OwnsSinksAndGlobalTracer)
{
    ObsConfig cfg;
    cfg.metrics_path = tempPath("obs_metrics.jsonl");
    cfg.trace_path = tempPath("obs_trace.json");
    {
        Observability obs(cfg);
        EXPECT_TRUE(obs.metrics().enabled());
        ASSERT_NE(obs.trace(), nullptr);
        EXPECT_EQ(globalTracer(), obs.trace());
        ASSERT_NE(obs.metricsSink(), nullptr);
        obs.metrics().counter("x").inc();
        obs.metrics().writeFrameSnapshot(*obs.metricsSink(), 0);
        obs.close();
        EXPECT_EQ(globalTracer(), nullptr);
    }
    const JsonValue row = parseJson(fileText(cfg.metrics_path));
    EXPECT_DOUBLE_EQ(row.at("counters").at("x").asNumber(), 1.0);
    checkTraceSchema(cfg.trace_path, 0, 0, 0);
    std::remove(cfg.metrics_path.c_str());
    std::remove(cfg.trace_path.c_str());
}

/** A deterministic access pattern that misses across several frames. */
void
driveFrames(CacheSim &sim, int first_frame, int last_frame)
{
    for (int f = first_frame; f < last_frame; ++f) {
        sim.bindTexture(1);
        for (uint32_t i = 0; i < 3000; ++i) {
            const uint32_t x = (i * 7 + static_cast<uint32_t>(f) * 13) & 255;
            const uint32_t y = (i * 3) & 255;
            sim.access(x, y, (i % 5 == 0) ? 1 : 0);
        }
        sim.endFrame();
    }
}

TEST(Observability, ClassifyingSimResumesBitIdentically)
{
    TextureManager tm;
    tm.load("tex", MipPyramid(makeChecker(256, 8, 0xff0000ffu,
                                          0xffffffffu)));
    CacheSimConfig cfg = CacheSimConfig::twoLevel(2 * 1024, 64 * 1024);
    cfg.tlb_entries = 8;
    cfg.classify_misses = true;

    // Straight run: 6 frames end to end.
    CacheSim straight(tm, cfg, "straight");
    driveFrames(straight, 0, 6);

    // Interrupted run: 3 frames, checkpoint, resume, 3 more frames.
    const std::string ckpt = tempPath("classify_resume.snap");
    CacheSim before(tm, cfg, "before");
    driveFrames(before, 0, 3);
    {
        SnapshotWriter w(ckpt);
        before.save(w);
        w.finish();
    }
    CacheSim resumed(tm, cfg, "resumed");
    {
        SnapshotReader r(ckpt);
        resumed.load(r);
        r.expectEnd();
    }
    driveFrames(resumed, 3, 6);

    // Classification must actually be running and producing all counts.
    ASSERT_NE(straight.l1Classifier(), nullptr);
    ASSERT_NE(straight.l2Classifier(), nullptr);
    EXPECT_GT(straight.l1Classifier()->totals().total(), 0u);
    EXPECT_EQ(straight.l1Classifier()->totals().total(),
              straight.totals().l1_misses);
    EXPECT_EQ(straight.totals().l1_compulsory +
                  straight.totals().l1_capacity +
                  straight.totals().l1_conflict,
              straight.totals().l1_misses);

    // Totals (including the 3C frame counters) must match exactly.
    const CacheFrameStats &a = straight.totals();
    const CacheFrameStats &b = resumed.totals();
    EXPECT_EQ(a.accesses, b.accesses);
    EXPECT_EQ(a.l1_misses, b.l1_misses);
    EXPECT_EQ(a.l2_full_hits, b.l2_full_hits);
    EXPECT_EQ(a.host_bytes, b.host_bytes);
    EXPECT_EQ(a.l1_compulsory, b.l1_compulsory);
    EXPECT_EQ(a.l1_capacity, b.l1_capacity);
    EXPECT_EQ(a.l1_conflict, b.l1_conflict);
    EXPECT_EQ(a.l2_compulsory, b.l2_compulsory);
    EXPECT_EQ(a.l2_capacity, b.l2_capacity);
    EXPECT_EQ(a.l2_conflict, b.l2_conflict);

    // The strongest form: final snapshots must be byte-identical.
    const std::string pa = tempPath("classify_a.snap");
    const std::string pb = tempPath("classify_b.snap");
    {
        SnapshotWriter wa(pa);
        straight.save(wa);
        wa.finish();
        SnapshotWriter wb(pb);
        resumed.save(wb);
        wb.finish();
    }
    EXPECT_EQ(fileText(pa), fileText(pb));
    std::remove(ckpt.c_str());
    std::remove(pa.c_str());
    std::remove(pb.c_str());
}

TEST(Observability, SnapshotWithClassifierRejectedByPlainSim)
{
    TextureManager tm;
    tm.load("tex", MipPyramid(makeChecker(256, 8, 0xff0000ffu,
                                          0xffffffffu)));
    CacheSimConfig cfg = CacheSimConfig::twoLevel(2 * 1024, 64 * 1024);
    cfg.classify_misses = true;
    CacheSim classifying(tm, cfg, "c");
    driveFrames(classifying, 0, 1);
    const std::string path = tempPath("classify_flag.snap");
    {
        SnapshotWriter w(path);
        classifying.save(w);
        w.finish();
    }
    CacheSimConfig plain_cfg = cfg;
    plain_cfg.classify_misses = false;
    CacheSim plain(tm, plain_cfg, "p");
    SnapshotReader r(path);
    EXPECT_THROW(plain.load(r), Exception);
    std::remove(path.c_str());
}

TEST(Observability, NoTracerMeansNoAccessTiming)
{
    ASSERT_EQ(globalTracer(), nullptr);
    TextureManager tm;
    tm.load("tex", MipPyramid(makeChecker(256, 8, 0xff0000ffu,
                                          0xffffffffu)));
    CacheSim sim(tm, CacheSimConfig::twoLevel(2 * 1024, 64 * 1024));
    driveFrames(sim, 0, 1);
    // Without a tracer the SelfTimer hook must not even read the clock.
    EXPECT_EQ(sim.takeAccessNs(), 0u);
}

} // namespace
} // namespace mltc
