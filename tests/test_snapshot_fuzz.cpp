/**
 * @file
 * Robustness fuzzing for the snapshot format: truncation at every byte,
 * single-bit flips over the whole image, version skew, CRC corruption
 * and hostile length fields. Every malformed snapshot must yield a
 * clean, typed mltc::Exception — never a crash, a hang, an allocation
 * blow-up or silently-loaded garbage.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <unistd.h>
#include <vector>

#include "core/cache_sim.hpp"
#include "sim/multi_stream_runner.hpp"
#include "sim/resilience.hpp"
#include "util/error.hpp"
#include "util/io.hpp"
#include "util/serializer.hpp"
#include "workload/village.hpp"

namespace mltc {
namespace {

// PID-suffixed: ctest runs each test case as its own process, possibly
// in parallel, so shared fixed names would race on create/remove.
std::string
tempPath(const char *name)
{
    return testing::TempDir() + name + "." + std::to_string(getpid());
}

std::vector<uint8_t>
fileBytes(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr) << path;
    std::fseek(f, 0, SEEK_END);
    std::vector<uint8_t> bytes(static_cast<size_t>(std::ftell(f)));
    std::fseek(f, 0, SEEK_SET);
    EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
    return bytes;
}

/** Image of a small snapshot exercising every writer primitive. */
std::vector<uint8_t>
validSnapshotBytes()
{
    const std::string path = tempPath("fuzz_snapshot.bin");
    SnapshotWriter w(path);
    w.section(snapTag("TST "));
    w.u8(7);
    w.u32(0x12345678u);
    w.u64(0xdeadbeefcafef00dull);
    w.f64(3.5);
    w.str("hello snapshot");
    w.u8Vec({1, 2, 3});
    w.u32Vec({10, 20, 30, 40});
    w.u64Vec({100, 200});
    w.finish();
    std::vector<uint8_t> bytes = fileBytes(path);
    std::remove(path.c_str());
    return bytes;
}

/** Fully consume a valid snapshot image; used to prove the baseline. */
void
readAll(SnapshotReader &r)
{
    r.expectSection(snapTag("TST "), "fuzz");
    EXPECT_EQ(r.u8(), 7u);
    EXPECT_EQ(r.u32(), 0x12345678u);
    EXPECT_EQ(r.u64(), 0xdeadbeefcafef00dull);
    EXPECT_DOUBLE_EQ(r.f64(), 3.5);
    EXPECT_EQ(r.str(), "hello snapshot");
    std::vector<uint8_t> v8;
    r.u8Vec(v8);
    EXPECT_EQ(v8, (std::vector<uint8_t>{1, 2, 3}));
    std::vector<uint32_t> v32;
    r.u32Vec(v32);
    EXPECT_EQ(v32, (std::vector<uint32_t>{10, 20, 30, 40}));
    std::vector<uint64_t> v64;
    r.u64Vec(v64);
    EXPECT_EQ(v64, (std::vector<uint64_t>{100, 200}));
    r.expectEnd();
}

TEST(SnapshotFuzz, ValidImageRoundTrips)
{
    std::vector<uint8_t> bytes = validSnapshotBytes();
    SnapshotReader r(bytes.data(), bytes.size(), "valid");
    readAll(r);
}

TEST(SnapshotFuzz, TruncationAtEveryByteThrowsTyped)
{
    std::vector<uint8_t> bytes = validSnapshotBytes();
    for (size_t n = 0; n < bytes.size(); ++n) {
        try {
            SnapshotReader r(bytes.data(), n, "truncated");
            // Header happened to validate a shorter payload? Impossible:
            // the length field covers the whole payload, so every
            // truncation must throw in the constructor.
            FAIL() << "truncation to " << n << " bytes was accepted";
        } catch (const Exception &e) {
            EXPECT_TRUE(e.code() == ErrorCode::Truncated ||
                        e.code() == ErrorCode::BadMagic ||
                        e.code() == ErrorCode::VersionMismatch ||
                        e.code() == ErrorCode::Corrupt)
                << "truncation to " << n << " bytes: " << e.what();
        }
    }
}

TEST(SnapshotFuzz, EverySingleBitFlipIsDetected)
{
    const std::vector<uint8_t> bytes = validSnapshotBytes();
    // CRC32 detects all single-bit payload errors; header fields are
    // each individually validated. So EVERY single-bit flip anywhere in
    // the image must throw — reading flipped data is never acceptable.
    for (size_t i = 0; i < bytes.size(); ++i) {
        for (int bit = 0; bit < 8; ++bit) {
            std::vector<uint8_t> mutant = bytes;
            mutant[i] = static_cast<uint8_t>(mutant[i] ^ (1u << bit));
            try {
                SnapshotReader r(mutant.data(), mutant.size(), "bitflip");
                readAll(r);
                FAIL() << "flip of byte " << i << " bit " << bit
                       << " went undetected";
            } catch (const Exception &e) {
                EXPECT_NE(e.code(), ErrorCode::None)
                    << "byte " << i << " bit " << bit;
            }
        }
    }
}

TEST(SnapshotFuzz, VersionSkewNamesVersions)
{
    std::vector<uint8_t> bytes = validSnapshotBytes();
    // Layout: magic[8], version u32 — write an incompatible version and
    // patch nothing else; the reader must refuse before any CRC work.
    const uint32_t bad_version = kSnapshotVersion + 1;
    std::memcpy(bytes.data() + 8, &bad_version, 4);
    try {
        SnapshotReader r(bytes.data(), bytes.size(), "skew");
        FAIL() << "future version accepted";
    } catch (const Exception &e) {
        EXPECT_EQ(e.code(), ErrorCode::VersionMismatch);
    }
}

TEST(SnapshotFuzz, BadMagicRejected)
{
    std::vector<uint8_t> bytes = validSnapshotBytes();
    bytes[0] = 'X';
    try {
        SnapshotReader r(bytes.data(), bytes.size(), "magic");
        FAIL() << "bad magic accepted";
    } catch (const Exception &e) {
        EXPECT_EQ(e.code(), ErrorCode::BadMagic);
    }
}

TEST(SnapshotFuzz, HostileVectorLengthDoesNotAllocate)
{
    // A snapshot whose payload claims a vector of ~2^61 elements: the
    // reader must bounds-check the count against the remaining payload
    // *before* resizing, so this throws instead of tripping bad_alloc
    // (or worse, a multiplication overflow that "fits").
    const std::string path = tempPath("fuzz_hostile_len.bin");
    SnapshotWriter w(path);
    w.u64(0x2000000000000000ull); // vector length prefix
    w.finish();
    std::vector<uint8_t> bytes = fileBytes(path);
    std::remove(path.c_str());

    SnapshotReader r(bytes.data(), bytes.size(), "hostile");
    std::vector<uint64_t> out;
    try {
        r.u64Vec(out);
        FAIL() << "hostile length accepted";
    } catch (const Exception &e) {
        EXPECT_EQ(e.code(), ErrorCode::Truncated);
    }
    EXPECT_TRUE(out.empty());
}

TEST(SnapshotFuzz, ReadPastEndThrowsTruncated)
{
    const std::string path = tempPath("fuzz_short.bin");
    SnapshotWriter w(path);
    w.u32(5);
    w.finish();
    std::vector<uint8_t> bytes = fileBytes(path);
    std::remove(path.c_str());

    SnapshotReader r(bytes.data(), bytes.size(), "short");
    EXPECT_EQ(r.u32(), 5u);
    EXPECT_THROW(r.u64(), Exception);
}

TEST(SnapshotFuzz, LeftoverPayloadFailsExpectEnd)
{
    const std::string path = tempPath("fuzz_leftover.bin");
    SnapshotWriter w(path);
    w.u32(1);
    w.u32(2);
    w.finish();
    std::vector<uint8_t> bytes = fileBytes(path);
    std::remove(path.c_str());

    SnapshotReader r(bytes.data(), bytes.size(), "leftover");
    EXPECT_EQ(r.u32(), 1u);
    try {
        r.expectEnd();
        FAIL() << "leftover payload accepted";
    } catch (const Exception &e) {
        EXPECT_EQ(e.code(), ErrorCode::Corrupt);
    }
}

TEST(SnapshotFuzz, WrongSectionTagNamesTheStructure)
{
    const std::string path = tempPath("fuzz_section.bin");
    SnapshotWriter w(path);
    w.section(snapTag("AAA "));
    w.finish();
    std::vector<uint8_t> bytes = fileBytes(path);
    std::remove(path.c_str());

    SnapshotReader r(bytes.data(), bytes.size(), "section");
    try {
        r.expectSection(snapTag("BBB "), "L1Cache");
        FAIL() << "wrong section accepted";
    } catch (const Exception &e) {
        EXPECT_EQ(e.code(), ErrorCode::Corrupt);
        EXPECT_NE(std::string(e.what()).find("L1Cache"), std::string::npos);
    }
}

TEST(SnapshotFuzz, MissingFileIsTypedIoError)
{
    try {
        SnapshotReader r(tempPath("does_not_exist.snap"));
        FAIL() << "missing file accepted";
    } catch (const Exception &e) {
        EXPECT_EQ(e.code(), ErrorCode::Io);
        EXPECT_NE(std::string(e.what()).find("does_not_exist"),
                  std::string::npos)
            << "error should name the path";
    }
}

// ---------------------------------------------------------------------------
// Full CacheSim snapshots under fuzz: whatever a damaged checkpoint
// contains, load() must throw typed and never corrupt the process.

std::vector<uint8_t>
cacheSimSnapshotBytes(Workload &wl, CacheSim &sim)
{
    // Exercise the sim so the snapshot holds non-trivial state.
    const uint32_t edge = wl.textures->texture(1).pyramid.width();
    sim.bindTexture(1);
    for (uint32_t y = 0; y + 1 < edge; y += 3)
        for (uint32_t x = 0; x + 1 < edge; x += 3)
            sim.accessQuad(x, y, x + 1, y + 1, 0);
    sim.endFrame();

    const std::string path = tempPath("fuzz_sim.snap");
    SnapshotWriter w(path);
    sim.save(w);
    w.finish();
    std::vector<uint8_t> bytes = fileBytes(path);
    std::remove(path.c_str());
    return bytes;
}

TEST(SnapshotFuzz, CacheSimLoadSurvivesTruncationEverywhere)
{
    VillageParams p;
    p.houses = 2;
    p.trees = 1;
    p.ground_texture_size = 64;
    p.wall_texture_size = 64;
    Workload wl = buildVillage(p);

    const CacheSimConfig cfg = CacheSimConfig::twoLevel(16 << 10, 1 << 20);
    CacheSim donor(*wl.textures, cfg, "donor");
    std::vector<uint8_t> bytes = cacheSimSnapshotBytes(wl, donor);

    // The header CRC guards whole-image damage; here we truncate the
    // *payload stream* as a sim would see it: rewrap the first n payload
    // bytes in a fresh valid header (magic/version/length/CRC all pass)
    // so CacheSim::load() itself must hit the wall cleanly.
    const size_t kHeader = 24; // magic[8] + version + length + crc
    ASSERT_GT(bytes.size(), kHeader);
    const std::string path = tempPath("fuzz_sim_cut.snap");
    size_t accepted = 0;
    for (size_t n = 0; n < bytes.size() - kHeader; n += 7) {
        SnapshotWriter w(path);
        for (size_t i = 0; i < n; ++i)
            w.u8(bytes[kHeader + i]);
        w.finish();
        CacheSim victim(*wl.textures, cfg, "donor");
        try {
            SnapshotReader r(path);
            victim.load(r);
            ++accepted; // only plausible when n == bytes.size()
        } catch (const Exception &e) {
            EXPECT_NE(e.code(), ErrorCode::None) << "cut at " << n;
        } catch (const std::exception &e) {
            FAIL() << "untyped exception at cut " << n << ": " << e.what();
        }
    }
    std::remove(path.c_str());
    EXPECT_EQ(accepted, 0u);
}

// ---------------------------------------------------------------------------
// Generational fallback: with keepPrevious() the previous good snapshot
// survives as `<path>.prev`, and openSnapshotGeneration() must recover
// it bit-identically no matter how the newest generation is damaged.

/** Overwrite @p path with exactly @p n bytes of @p bytes, raw. */
void
writeRaw(const std::string &path, const std::vector<uint8_t> &bytes,
         size_t n)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr) << path;
    ASSERT_EQ(std::fwrite(bytes.data(), 1, n, f), n);
    std::fclose(f);
}

/** Two generations at @p path: gen1 (rotated to .prev) and gen2. */
struct GenerationPair
{
    std::string path;
    std::vector<uint8_t> gen1; ///< now at path + ".prev"
    std::vector<uint8_t> gen2; ///< at path
};

GenerationPair
writeTwoGenerations(const char *name)
{
    GenerationPair gp;
    gp.path = tempPath(name);
    {
        SnapshotWriter w(gp.path);
        w.keepPrevious(true);
        w.section(snapTag("GEN "));
        w.u32(1u); // generation marker
        w.str("first generation");
        w.finish();
    }
    gp.gen1 = fileBytes(gp.path);
    {
        SnapshotWriter w(gp.path);
        w.keepPrevious(true);
        w.section(snapTag("GEN "));
        w.u32(2u);
        w.str("second generation");
        w.finish();
    }
    gp.gen2 = fileBytes(gp.path);
    // The rotation is a rename, so .prev is gen1 to the byte.
    EXPECT_EQ(fileBytes(gp.path + kPreviousGenerationSuffix), gp.gen1);
    return gp;
}

/** Read one generation snapshot, returning its marker. */
uint32_t
readGeneration(SnapshotReader &r)
{
    r.expectSection(snapTag("GEN "), "generation");
    const uint32_t gen = r.u32();
    const std::string text = r.str();
    EXPECT_EQ(text, gen == 1 ? "first generation" : "second generation");
    r.expectEnd();
    return gen;
}

TEST(SnapshotFuzz, IntactNewestGenerationWinsOverPrev)
{
    GenerationPair gp = writeTwoGenerations("gen_intact.snap");
    bool used_previous = true;
    SnapshotReader r = openSnapshotGeneration(gp.path, &used_previous);
    EXPECT_FALSE(used_previous);
    EXPECT_EQ(readGeneration(r), 2u);
    std::remove(gp.path.c_str());
    std::remove((gp.path + kPreviousGenerationSuffix).c_str());
}

TEST(SnapshotFuzz, TruncatedNewestGenerationRecoversFromPrevEverywhere)
{
    GenerationPair gp = writeTwoGenerations("gen_trunc.snap");
    // Truncate the newest generation at EVERY byte (a torn rename or a
    // crash mid-commit can stop anywhere); the loader must fall back to
    // the previous generation every single time.
    for (size_t n = 0; n < gp.gen2.size(); ++n) {
        writeRaw(gp.path, gp.gen2, n);
        bool used_previous = false;
        SnapshotReader r = openSnapshotGeneration(gp.path, &used_previous);
        EXPECT_TRUE(used_previous) << "cut at " << n;
        EXPECT_EQ(readGeneration(r), 1u) << "cut at " << n;
    }
    // The fallback path never modifies the previous generation.
    EXPECT_EQ(fileBytes(gp.path + kPreviousGenerationSuffix), gp.gen1);
    std::remove(gp.path.c_str());
    std::remove((gp.path + kPreviousGenerationSuffix).c_str());
}

TEST(SnapshotFuzz, BitFlippedNewestGenerationRecoversFromPrevEverywhere)
{
    GenerationPair gp = writeTwoGenerations("gen_flip.snap");
    for (size_t i = 0; i < gp.gen2.size(); ++i) {
        for (int bit = 0; bit < 8; ++bit) {
            std::vector<uint8_t> mutant = gp.gen2;
            mutant[i] = static_cast<uint8_t>(mutant[i] ^ (1u << bit));
            writeRaw(gp.path, mutant, mutant.size());
            bool used_previous = false;
            SnapshotReader r =
                openSnapshotGeneration(gp.path, &used_previous);
            EXPECT_TRUE(used_previous) << "byte " << i << " bit " << bit;
            EXPECT_EQ(readGeneration(r), 1u)
                << "byte " << i << " bit " << bit;
        }
    }
    EXPECT_EQ(fileBytes(gp.path + kPreviousGenerationSuffix), gp.gen1);
    std::remove(gp.path.c_str());
    std::remove((gp.path + kPreviousGenerationSuffix).c_str());
}

TEST(SnapshotFuzz, BothGenerationsDeadRethrowsNewestError)
{
    GenerationPair gp = writeTwoGenerations("gen_dead.snap");
    writeRaw(gp.path, gp.gen2, 4); // dead newest: not even a header
    const std::string prev = gp.path + kPreviousGenerationSuffix;
    std::vector<uint8_t> bad_prev = gp.gen1;
    bad_prev[bad_prev.size() / 2] ^= 0x40; // dead previous: CRC fails
    writeRaw(prev, bad_prev, bad_prev.size());
    try {
        SnapshotReader r = openSnapshotGeneration(gp.path);
        FAIL() << "two dead generations accepted";
    } catch (const Exception &e) {
        // The caller sees the NEWEST generation's diagnosis; the .prev
        // failure is a secondary detail.
        EXPECT_EQ(e.code(), ErrorCode::Truncated);
    }
    std::remove(gp.path.c_str());
    std::remove(prev.c_str());
}

TEST(SnapshotFuzz, CacheSimLoadRejectsConfigSkew)
{
    VillageParams p;
    p.houses = 2;
    p.trees = 1;
    p.ground_texture_size = 64;
    p.wall_texture_size = 64;
    Workload wl = buildVillage(p);

    CacheSim donor(*wl.textures,
                   CacheSimConfig::twoLevel(16 << 10, 1 << 20), "donor");
    std::vector<uint8_t> bytes = cacheSimSnapshotBytes(wl, donor);

    // Same texture set, different L2 size: must refuse, naming skew.
    CacheSim other(*wl.textures,
                   CacheSimConfig::twoLevel(16 << 10, 2 << 20), "donor");
    SnapshotReader r(bytes.data(), bytes.size(), "skew");
    try {
        other.load(r);
        FAIL() << "config skew accepted";
    } catch (const Exception &e) {
        EXPECT_EQ(e.code(), ErrorCode::VersionMismatch);
    }
}

// ---------------------------------------------------------------------------
// The same recovery guarantee for a REAL checkpoint: a K-stream
// multi-tenant run's snapshot (MST section: shared L2, K private sims,
// per-round rows, quarantine state). Damaging the newest generation
// must never lose the run — the loader falls back to the previous
// periodic checkpoint, an earlier round, and determinism makes the
// finished run's per-stream CSVs byte-identical to an uninterrupted
// reference.

TEST(SnapshotFuzz, MultiStreamCheckpointRecoversFromPrevGeneration)
{
    MultiStreamConfig ms;
    ms.width = 64;
    ms.height = 48;
    ms.rounds = 6;
    ms.l1_bytes = 4ull << 10;
    ms.l2_bytes = 256ull << 10;
    ms.share = L2SharePolicy::Shared;
    ms.jobs = 1;
    StreamSpec village;
    village.workload = "village";
    village.filter = FilterMode::Bilinear;
    StreamSpec city;
    city.workload = "city";
    city.filter = FilterMode::Trilinear;
    city.phase = 3;
    ms.streams = {village, city};

    // Uninterrupted reference CSVs.
    std::vector<std::vector<uint8_t>> reference;
    {
        MultiStreamRunner runner(ms);
        ASSERT_EQ(runner.run({}).outcome, RunOutcome::Completed);
        for (uint32_t i = 0; i < runner.streamCount(); ++i) {
            const std::string path = tempPath("gen_ms_ref.csv");
            runner.writeStreamCsv(i, path);
            reference.push_back(fileBytes(path));
            std::remove(path.c_str());
        }
    }

    // A checkpointed run leaves two generations behind: periodic saves
    // every 2 rounds plus the final one, each rotating the predecessor
    // to `.prev` (MultiStreamRunner::saveCheckpoint uses keepPrevious).
    const std::string snap = tempPath("gen_ms.snap");
    const std::string prev_path = snap + kPreviousGenerationSuffix;
    ResilienceConfig res;
    res.checkpoint_path = snap;
    res.checkpoint_every = 2;
    {
        MultiStreamRunner runner(ms);
        ASSERT_EQ(runner.run(res).outcome, RunOutcome::Completed);
    }
    const std::vector<uint8_t> newest = fileBytes(snap);
    const std::vector<uint8_t> prev = fileBytes(prev_path);
    ASSERT_FALSE(prev.empty());
    ASSERT_GT(newest.size(), 64u);

    // Damage the newest generation several ways: strided truncations
    // (a K-stream snapshot is too large for the per-byte sweep the
    // small-image tests above run) and single-bit flips in the header,
    // mid-payload and tail.
    std::vector<std::vector<uint8_t>> mutants;
    for (const size_t n : {size_t{0}, size_t{7}, size_t{23},
                           newest.size() / 3, newest.size() / 2,
                           newest.size() - 1})
        mutants.emplace_back(newest.begin(),
                             newest.begin() + static_cast<long>(n));
    for (const size_t at : {size_t{9}, newest.size() / 2,
                            newest.size() - 2}) {
        mutants.push_back(newest);
        mutants.back()[at] ^= 0x10;
    }

    ResilienceConfig resume = res;
    resume.resume = true;
    for (size_t m = 0; m < mutants.size(); ++m) {
        // Fresh pristine generations, then damage the newest.
        writeRaw(prev_path, prev, prev.size());
        writeRaw(snap, mutants[m], mutants[m].size());

        // The loader must pick the previous generation...
        {
            bool used_previous = false;
            SnapshotReader r = openSnapshotGeneration(snap, &used_previous);
            EXPECT_TRUE(used_previous) << "mutant " << m;
        }

        // ...and the resumed run must finish bit-identically.
        MultiStreamRunner runner(ms);
        ASSERT_EQ(runner.run(resume).outcome, RunOutcome::Completed)
            << "mutant " << m;
        for (uint32_t i = 0; i < runner.streamCount(); ++i) {
            const std::string path = tempPath("gen_ms_res.csv");
            runner.writeStreamCsv(i, path);
            EXPECT_EQ(fileBytes(path), reference[i])
                << "mutant " << m << " stream " << i;
            std::remove(path.c_str());
        }
    }
    std::remove(snap.c_str());
    std::remove(prev_path.c_str());
}

} // namespace
} // namespace mltc
