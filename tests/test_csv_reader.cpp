/**
 * @file
 * Unit tests for the CSV reader and series summaries.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "util/csv_reader.hpp"

namespace mltc {
namespace {

TEST(CsvTable, ParsesHeaderAndCells)
{
    CsvTable t = CsvTable::parse("a,b,c\n1,2,3\n4,5,6\n");
    ASSERT_EQ(t.columnCount(), 3u);
    ASSERT_EQ(t.rowCount(), 2u);
    EXPECT_EQ(t.header()[1], "b");
    EXPECT_EQ(t.cell(1, 2), "6");
}

TEST(CsvTable, HandlesCrlfAndBlankLines)
{
    CsvTable t = CsvTable::parse("x,y\r\n1,2\r\n\r\n3,4\r\n");
    EXPECT_EQ(t.rowCount(), 2u);
    EXPECT_EQ(t.cell(1, 0), "3");
}

TEST(CsvTable, RejectsRaggedRows)
{
    EXPECT_THROW(CsvTable::parse("a,b\n1\n"), std::runtime_error);
}

TEST(CsvTable, RejectsEmpty)
{
    EXPECT_THROW(CsvTable::parse(""), std::runtime_error);
}

TEST(CsvTable, ColumnIndexLookup)
{
    CsvTable t = CsvTable::parse("alpha,beta\n1,2\n");
    EXPECT_EQ(t.columnIndex("beta"), 1);
    EXPECT_EQ(t.columnIndex("gamma"), -1);
}

TEST(CsvTable, NumericColumnWithNaNs)
{
    CsvTable t = CsvTable::parse("k,v\nfoo,1.5\nbar,oops\nbaz,2.5\n");
    auto vals = t.numericColumn("v");
    ASSERT_EQ(vals.size(), 3u);
    EXPECT_DOUBLE_EQ(vals[0], 1.5);
    EXPECT_TRUE(std::isnan(vals[1]));
    EXPECT_DOUBLE_EQ(vals[2], 2.5);
    EXPECT_THROW(t.numericColumn("nope"), std::invalid_argument);
}

TEST(CsvTable, LoadRoundTrip)
{
    std::string path = testing::TempDir() + "mltc_reader_test.csv";
    {
        std::ofstream out(path);
        out << "frame,mb\n0,1.25\n1,2.75\n";
    }
    CsvTable t = CsvTable::load(path);
    EXPECT_EQ(t.rowCount(), 2u);
    auto s = summarize(t.numericColumn("mb"));
    EXPECT_DOUBLE_EQ(s.mean, 2.0);
    std::remove(path.c_str());
    EXPECT_THROW(CsvTable::load("/no/such/file.csv"), std::runtime_error);
}

TEST(Summarize, SkipsNaNsAndComputesStats)
{
    std::vector<double> v{1.0, std::nan(""), 3.0, 5.0};
    SeriesSummary s = summarize(v);
    EXPECT_EQ(s.count, 3u);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 5.0);
    EXPECT_DOUBLE_EQ(s.mean, 3.0);
    EXPECT_DOUBLE_EQ(s.total, 9.0);
}

TEST(Summarize, EmptyIsZeroed)
{
    SeriesSummary s = summarize({});
    EXPECT_EQ(s.count, 0u);
    EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

} // namespace
} // namespace mltc
