/**
 * @file
 * Unit tests for the JSON utilities backing the observability layer:
 * the streaming JsonWriter (escaping, number formatting, misuse
 * detection), the RFC 8259 parser (round-trips, typed failures with
 * byte offsets), and the JSONL file sink.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <unistd.h>

#include "util/error.hpp"
#include "util/json.hpp"

namespace mltc {
namespace {

// PID-suffixed: ctest runs each test case as its own process, possibly
// in parallel, so shared fixed names would race on create/remove.
std::string
tempPath(const char *name)
{
    return testing::TempDir() + name + "." + std::to_string(getpid());
}

TEST(JsonEscape, EscapesControlAndQuotes)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb\tc"), "a\\nb\\tc");
    EXPECT_EQ(jsonEscape(std::string("\x01", 1)), "\\u0001");
}

TEST(JsonWriter, ObjectWithEveryValueType)
{
    JsonWriter w;
    w.beginObject()
        .kv("s", "text")
        .kv("b", true)
        .kv("i", int64_t{-7})
        .kv("u", uint64_t{18446744073709551615ull})
        .kv("d", 2.5)
        .key("n")
        .nullValue()
        .key("a")
        .beginArray()
        .value(1)
        .value(2)
        .endArray()
        .endObject();
    EXPECT_TRUE(w.complete());

    const JsonValue v = parseJson(w.str());
    EXPECT_EQ(v.at("s").asString(), "text");
    EXPECT_TRUE(v.at("b").asBool());
    EXPECT_DOUBLE_EQ(v.at("i").asNumber(), -7.0);
    EXPECT_DOUBLE_EQ(v.at("d").asNumber(), 2.5);
    EXPECT_TRUE(v.at("n").isNull());
    ASSERT_EQ(v.at("a").asArray().size(), 2u);
    EXPECT_DOUBLE_EQ(v.at("a").asArray()[1].asNumber(), 2.0);
}

TEST(JsonWriter, DoublesRoundTrip)
{
    JsonWriter w;
    const double val = 0.1234567890123456;
    w.beginArray().value(val).endArray();
    const JsonValue v = parseJson(w.str());
    EXPECT_DOUBLE_EQ(v.asArray()[0].asNumber(), val);
}

TEST(JsonWriter, NanAndInfBecomeNull)
{
    JsonWriter w;
    w.beginArray()
        .value(std::numeric_limits<double>::quiet_NaN())
        .value(std::numeric_limits<double>::infinity())
        .endArray();
    const JsonValue v = parseJson(w.str());
    EXPECT_TRUE(v.asArray()[0].isNull());
    EXPECT_TRUE(v.asArray()[1].isNull());
}

TEST(JsonWriter, MisuseThrowsBadArgument)
{
    {
        JsonWriter w; // value without key inside an object
        w.beginObject();
        EXPECT_THROW(w.value(1), Exception);
    }
    {
        JsonWriter w; // key inside an array
        w.beginArray();
        EXPECT_THROW(w.key("k"), Exception);
    }
    {
        JsonWriter w; // scope mismatch
        w.beginArray();
        try {
            w.endObject();
            FAIL() << "endObject inside an array must throw";
        } catch (const Exception &e) {
            EXPECT_EQ(e.code(), ErrorCode::BadArgument);
        }
    }
}

TEST(JsonWriter, ResetStartsFreshDocument)
{
    JsonWriter w;
    w.beginObject().kv("a", 1).endObject();
    w.reset();
    EXPECT_FALSE(w.complete());
    w.beginArray().endArray();
    EXPECT_EQ(w.str(), "[]");
    EXPECT_TRUE(w.complete());
}

TEST(JsonParse, AcceptsNestedDocument)
{
    const JsonValue v = parseJson(
        R"({"a": [1, 2.5, -3e2], "o": {"k": "v\n"}, "t": true, "z": null})");
    EXPECT_DOUBLE_EQ(v.at("a").asArray()[2].asNumber(), -300.0);
    EXPECT_EQ(v.at("o").at("k").asString(), "v\n");
    EXPECT_TRUE(v.at("t").asBool());
    EXPECT_TRUE(v.at("z").isNull());
    EXPECT_EQ(v.find("missing"), nullptr);
    EXPECT_THROW(v.at("missing"), Exception);
}

TEST(JsonParse, UnicodeEscapes)
{
    const JsonValue v = parseJson(R"(["Aé"])");
    EXPECT_EQ(v.asArray()[0].asString(), "A\xc3\xa9");
}

TEST(JsonParse, MalformedInputThrowsCorruptWithOffset)
{
    const char *bad[] = {
        "",            // empty
        "{",           // unterminated object
        "[1,]",        // trailing comma
        "{\"a\" 1}",   // missing colon
        "\"abc",       // unterminated string
        "01",          // leading zero
        "[1] trailing",// trailing garbage
        "nul",         // truncated keyword
        "{1: 2}",      // non-string key
    };
    for (const char *text : bad) {
        try {
            parseJson(text);
            FAIL() << "accepted malformed JSON: " << text;
        } catch (const Exception &e) {
            EXPECT_EQ(e.code(), ErrorCode::Corrupt) << text;
            EXPECT_NE(e.error().message.find("at byte"), std::string::npos)
                << text;
        }
    }
}

TEST(JsonParse, TypeMismatchThrowsBadArgument)
{
    const JsonValue v = parseJson("[1]");
    try {
        (void)v.asObject();
        FAIL() << "asObject on an array must throw";
    } catch (const Exception &e) {
        EXPECT_EQ(e.code(), ErrorCode::BadArgument);
    }
}

TEST(JsonlFileSink, WritesOneDocumentPerLine)
{
    const std::string path = tempPath("sink.jsonl");
    {
        JsonlFileSink sink(path);
        sink.writeLine("{\"row\":1}");
        sink.writeLine("{\"row\":2}");
        EXPECT_EQ(sink.lines(), 2u);
        sink.close();
    }
    std::ifstream in(path);
    std::string line;
    int rows = 0;
    while (std::getline(in, line)) {
        const JsonValue v = parseJson(line);
        EXPECT_DOUBLE_EQ(v.at("row").asNumber(), ++rows);
    }
    EXPECT_EQ(rows, 2);
    std::remove(path.c_str());
}

TEST(JsonlFileSink, UnopenablePathThrowsIo)
{
    try {
        JsonlFileSink sink(testing::TempDir() + "no_such_dir/x.jsonl");
        FAIL() << "opening a sink under a missing directory must throw";
    } catch (const Exception &e) {
        EXPECT_EQ(e.code(), ErrorCode::Io);
    }
}

} // namespace
} // namespace mltc
