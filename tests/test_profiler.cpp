/**
 * @file
 * Unit tests for the continuous profiling plane: the collapsed-stack
 * folded writer (escaping, zero-sample omission, deterministic
 * ordering), loadFolded's self/total aggregation and corruption
 * handling, the differential profile (threshold semantics, one-sided
 * stages, noise suppression), a real sampling capture through the
 * installed ScopedProfileStage hooks, the mandatory perf_event_open
 * fallback under a denied syscall, annotation interning, and the
 * flight-dump flush of profiler buffers.
 */
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace mltc {
namespace {

// PID-suffixed: ctest runs each test case as its own process, possibly
// in parallel, so shared fixed names would race on create/remove.
std::string
tempPath(const char *name)
{
    return testing::TempDir() + name + "." + std::to_string(getpid());
}

void
writeFile(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary);
    out << text;
    ASSERT_TRUE(out.good());
}

// ---------------------------------------------------------------------------
// Folded-format primitives.

TEST(Folded, EscapingRoundTrips)
{
    EXPECT_EQ(foldedEscape("plain"), "plain");
    EXPECT_EQ(foldedEscape("a;b"), "a\\;b");
    EXPECT_EQ(foldedEscape("a\\b"), "a\\\\b");
    // Frame names may contain spaces ("leg:2 MB L2"); only the
    // separator and the escape character are escaped.
    EXPECT_EQ(foldedEscape("leg:2 MB L2"), "leg:2 MB L2");

    const std::vector<std::string> frames{"leg:2 MB L2", "semi;colon",
                                          "back\\slash"};
    EXPECT_EQ(foldedSplit(foldedKey(frames)), frames);
}

TEST(Folded, RenderOmitsZeroSortsAndTerminates)
{
    std::map<std::string, uint64_t> stacks;
    stacks["b;y"] = 2;
    stacks["a;x"] = 7;
    stacks["never.sampled"] = 0; // must not appear
    stacks[""] = 5;              // empty stack key: not a stack
    const std::string text = renderFolded(stacks);
    EXPECT_EQ(text, "a;x 7\nb;y 2\n");
    // Deterministic: same map renders byte-identically.
    EXPECT_EQ(renderFolded(stacks), text);
}

TEST(Folded, LoadAggregatesSelfAndTotal)
{
    const std::string path = tempPath("agg.folded");
    writeFile(path, "a 2\na;b 3\na;b;c 5\n");
    const FoldedProfile p = loadFolded(path);
    std::remove(path.c_str());

    EXPECT_EQ(p.total_samples, 10u);
    ASSERT_EQ(p.stages.size(), 3u);
    EXPECT_EQ(p.stages[0].name, "a");
    EXPECT_EQ(p.stages[0].self, 2u);
    EXPECT_EQ(p.stages[0].total, 10u);
    EXPECT_EQ(p.stages[1].name, "b");
    EXPECT_EQ(p.stages[1].self, 3u);
    EXPECT_EQ(p.stages[1].total, 8u);
    EXPECT_EQ(p.stages[2].name, "c");
    EXPECT_EQ(p.stages[2].self, 5u);
    EXPECT_EQ(p.stages[2].total, 5u);
}

TEST(Folded, LoadCountsRecursiveFrameOnce)
{
    const std::string path = tempPath("rec.folded");
    writeFile(path, "a;a;a 4\n");
    const FoldedProfile p = loadFolded(path);
    std::remove(path.c_str());
    ASSERT_EQ(p.stages.size(), 1u);
    EXPECT_EQ(p.stages[0].total, 4u); // not 12: unique frames per stack
    EXPECT_EQ(p.stages[0].self, 4u);
}

TEST(Folded, LoadSpacesInFrames)
{
    // The sample count is the token after the LAST space; everything
    // before it is the stack, spaces included.
    const std::string path = tempPath("sp.folded");
    writeFile(path, "leg:2 MB L2;frame 11\n");
    const FoldedProfile p = loadFolded(path);
    std::remove(path.c_str());
    ASSERT_EQ(p.stages.size(), 2u);
    EXPECT_EQ(p.stages[0].name, "frame");
    EXPECT_EQ(p.stages[1].name, "leg:2 MB L2");
    EXPECT_EQ(p.total_samples, 11u);
}

TEST(Folded, LoadRejectsDamage)
{
    const std::string path = tempPath("bad.folded");
    writeFile(path, "a;b not_a_count\n");
    try {
        loadFolded(path);
        FAIL() << "corrupt line must throw";
    } catch (const Exception &e) {
        EXPECT_EQ(e.error().code, ErrorCode::Corrupt);
    }
    std::remove(path.c_str());

    try {
        loadFolded(tempPath("missing.folded"));
        FAIL() << "missing file must throw";
    } catch (const Exception &e) {
        EXPECT_EQ(e.error().code, ErrorCode::Io);
    }
}

// ---------------------------------------------------------------------------
// Differential profiles.

FoldedProfile
profileOf(std::map<std::string, uint64_t> stacks)
{
    const std::string path = tempPath("diff.folded");
    writeFile(path, renderFolded(stacks));
    FoldedProfile p = loadFolded(path);
    std::remove(path.c_str());
    return p;
}

TEST(ProfileDiff, SelfAgreementIsZero)
{
    const FoldedProfile a = profileOf({{"x", 90}, {"x;y", 10}});
    const ProfileDiff d = diffFoldedProfiles(a, a);
    EXPECT_EQ(d.max_rel, 0.0);
    for (const ProfileDiffRow &row : d.rows)
        EXPECT_EQ(row.rel_delta, 0.0);
}

TEST(ProfileDiff, DurationInvariant)
{
    // B sampled 10x longer at identical shape: still zero delta,
    // because the comparison is on self-sample *shares*.
    const FoldedProfile a = profileOf({{"x", 90}, {"x;y", 10}});
    const FoldedProfile b = profileOf({{"x", 900}, {"x;y", 100}});
    EXPECT_EQ(diffFoldedProfiles(a, b).max_rel, 0.0);
}

TEST(ProfileDiff, DetectsShiftWorstFirst)
{
    const FoldedProfile a = profileOf({{"x", 90}, {"y", 10}});
    const FoldedProfile b = profileOf({{"x", 50}, {"y", 50}});
    const ProfileDiff d = diffFoldedProfiles(a, b);
    // y moved 10% -> 50%: rel (0.5-0.1)/0.5 = 0.8; x: (0.9-0.5)/0.9.
    ASSERT_EQ(d.rows.size(), 2u);
    EXPECT_EQ(d.rows[0].name, "y");
    EXPECT_NEAR(d.rows[0].rel_delta, 0.8, 1e-9);
    EXPECT_NEAR(d.rows[1].rel_delta, 4.0 / 9.0, 1e-9);
    EXPECT_NEAR(d.max_rel, 0.8, 1e-9);
}

TEST(ProfileDiff, OneSidedStageIsFullDelta)
{
    const FoldedProfile a = profileOf({{"x", 50}, {"gone", 50}});
    const FoldedProfile b = profileOf({{"x", 100}});
    const ProfileDiff d = diffFoldedProfiles(a, b);
    ASSERT_FALSE(d.rows.empty());
    EXPECT_EQ(d.rows[0].name, "gone");
    EXPECT_NEAR(d.rows[0].rel_delta, 1.0, 1e-9);
}

TEST(ProfileDiff, MinShareSuppressesNoise)
{
    // "rare" flips 1 sample <-> 2 samples: a 50% relative swing on a
    // negligible share. min_share gates it out of the verdict.
    const FoldedProfile a = profileOf({{"x", 999}, {"rare", 1}});
    const FoldedProfile b = profileOf({{"x", 998}, {"rare", 2}});
    EXPECT_GT(diffFoldedProfiles(a, b, 0.0).max_rel, 0.4);
    EXPECT_LT(diffFoldedProfiles(a, b, 0.005).max_rel, 0.01);
}

// ---------------------------------------------------------------------------
// The live profiler.

TEST(Profiler, RejectsBadRate)
{
    ProfilerConfig bad;
    bad.hz = 0;
    EXPECT_THROW(StageProfiler{bad}, Exception);
    bad.hz = 200000;
    EXPECT_THROW(StageProfiler{bad}, Exception);
}

TEST(Profiler, CapturesAnnotatedStacks)
{
    ProfilerConfig pc;
    pc.hz = 10000;
    pc.counters = false;
    pc.out_prefix = tempPath("cap");
    StageProfiler profiler(pc);
    installStageProfiler(&profiler);
    {
        // Hold the stack across real time so the sampler must see it;
        // the inner frame name exercises writer-side escaping.
        ScopedProfileStage outer("stage.outer");
        ScopedProfileStage inner("weird;stage");
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
    installStageProfiler(nullptr);
    profiler.stopSampler();
    EXPECT_GT(profiler.sampleCount(), 0u);
    EXPECT_EQ(profiler.droppedSamples(), 0u);
    profiler.writeOutputs();

    std::ifstream folded(pc.out_prefix + ".folded");
    ASSERT_TRUE(folded.good());
    std::string text((std::istreambuf_iterator<char>(folded)),
                     std::istreambuf_iterator<char>());
    EXPECT_NE(text.find("stage.outer;weird\\;stage "), std::string::npos);

    std::ifstream jf(pc.out_prefix + ".json");
    ASSERT_TRUE(jf.good());
    std::string jtext((std::istreambuf_iterator<char>(jf)),
                      std::istreambuf_iterator<char>());
    const JsonValue root = parseJson(jtext);
    ASSERT_NE(root.find("build"), nullptr);
    ASSERT_NE(root.find("profile"), nullptr);
    EXPECT_EQ(root.find("profile")->find("hz")->asNumber(), 10000.0);
    const JsonValue *stages = root.find("stages");
    ASSERT_NE(stages, nullptr);
    bool saw_outer = false, saw_weird = false;
    for (const JsonValue &s : stages->asArray()) {
        const std::string name = s.find("stage")->asString();
        saw_outer |= name == "stage.outer";
        saw_weird |= name == "weird;stage";
    }
    EXPECT_TRUE(saw_outer);
    EXPECT_TRUE(saw_weird);

    std::remove((pc.out_prefix + ".folded").c_str());
    std::remove((pc.out_prefix + ".json").c_str());
}

TEST(Profiler, ForcedCounterFallbackIsGraceful)
{
    // The mandatory degradation proof: when perf_event_open is denied
    // (forced here so the test passes on machines where it is allowed),
    // profiling continues, readCounters reports failure exactly once
    // per ScopedProfileStage bracket, and the registry gauge flips.
    MetricsRegistry registry(true);
    ProfilerConfig pc;
    pc.hz = 1000;
    pc.force_counters_unavailable = true;
    pc.registry = &registry;
    StageProfiler profiler(pc);
    installStageProfiler(&profiler);
    EXPECT_TRUE(profiler.countersUnavailable());
    EXPECT_EQ(registry.gaugeValue("profile.counters_unavailable"), 1.0);

    uint64_t vals[4];
    EXPECT_FALSE(profiler.readCounters(vals));
    {
        // A counter-bracketed scope must still sample fine.
        ScopedProfileStage leg(profiler.intern("leg:fallback"),
                               /*with_counters=*/true);
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    installStageProfiler(nullptr);
    profiler.stopSampler();

    const JsonValue root = parseJson(profiler.liveJson());
    const JsonValue *counters = root.find("counters");
    ASSERT_NE(counters, nullptr);
    EXPECT_FALSE(counters->find("available")->asBool());
    EXPECT_TRUE(counters->find("stages")->asArray().empty());
}

TEST(Profiler, InternIsStableAndOrdered)
{
    ProfilerConfig pc;
    pc.hz = 100;
    StageProfiler profiler(pc);
    const char *a = profiler.intern("leg:alpha");
    const char *b = profiler.intern("leg:beta");
    EXPECT_STREQ(a, "leg:alpha");
    EXPECT_EQ(profiler.intern("leg:alpha"), a); // same pointer
    EXPECT_NE(a, b);
    profiler.stopSampler();

    // JSON leg roll-up preserves first-intern order (registration
    // order under SweepExecutor), not alphabetical order.
    const char *z = profiler.intern("leg:aaa_last_interned");
    (void)z;
    const JsonValue root = parseJson(profiler.liveJson());
    const JsonValue *legs = root.find("legs");
    ASSERT_NE(legs, nullptr);
    ASSERT_EQ(legs->asArray().size(), 3u);
    EXPECT_EQ(legs->asArray()[0].find("name")->asString(), "leg:alpha");
    EXPECT_EQ(legs->asArray()[2].find("name")->asString(),
              "leg:aaa_last_interned");
}

TEST(Profiler, GlobalInternWithoutProfilerIsNull)
{
    ASSERT_EQ(stageProfiler(), nullptr);
    EXPECT_EQ(profileInternAnnotation("leg:none"), nullptr);
    // And a null name makes the scope a no-op rather than a crash.
    ScopedProfileStage scope(nullptr, /*with_counters=*/true);
}

TEST(Profiler, FlightDumpFlushesProfile)
{
    // A flight-dump trigger (quarantine, watchdog, ...) must flush the
    // profile-so-far next to the bundle even mid-run.
    ProfilerConfig pc;
    pc.hz = 10000;
    pc.out_prefix = tempPath("flight_prof");
    StageProfiler profiler(pc);
    installStageProfiler(&profiler);
    {
        ScopedProfileStage stage("pre.dump");
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        flightDump("test-trigger");
    }
    installStageProfiler(nullptr);
    profiler.stopSampler();

    std::ifstream folded(pc.out_prefix + ".folded");
    EXPECT_TRUE(folded.good());
    std::ifstream json(pc.out_prefix + ".json");
    EXPECT_TRUE(json.good());
    std::remove((pc.out_prefix + ".folded").c_str());
    std::remove((pc.out_prefix + ".json").c_str());
}

TEST(Profiler, LiveJsonMatchesWrittenSchema)
{
    ProfilerConfig pc;
    pc.hz = 997;
    StageProfiler profiler(pc);
    const JsonValue root = parseJson(profiler.liveJson());
    ASSERT_NE(root.find("profile"), nullptr);
    EXPECT_EQ(root.find("profile")->find("hz")->asNumber(), 997.0);
    EXPECT_NE(root.find("build"), nullptr);
    EXPECT_NE(root.find("stages"), nullptr);
    EXPECT_NE(root.find("counters"), nullptr);
    profiler.stopSampler();
}

} // namespace
} // namespace mltc
