/**
 * @file
 * Unit + property tests for the Morton ("6D blocked") tiled layout used
 * for L1 tag/index computation.
 */
#include <gtest/gtest.h>

#include <set>

#include "texture/texture_manager.hpp"
#include "texture/tiled_layout.hpp"

namespace mltc {
namespace {

TEST(Morton, InterleaveKnownValues)
{
    EXPECT_EQ(mortonInterleave(0, 0), 0u);
    EXPECT_EQ(mortonInterleave(1, 0), 1u);
    EXPECT_EQ(mortonInterleave(0, 1), 2u);
    EXPECT_EQ(mortonInterleave(1, 1), 3u);
    EXPECT_EQ(mortonInterleave(2, 0), 4u);
    EXPECT_EQ(mortonInterleave(0, 2), 8u);
    EXPECT_EQ(mortonInterleave(3, 3), 15u);
    EXPECT_EQ(mortonInterleave(4, 0), 16u);
}

TEST(Morton, InterleaveInjectiveOnGrid)
{
    std::set<uint32_t> seen;
    for (uint32_t y = 0; y < 32; ++y)
        for (uint32_t x = 0; x < 32; ++x)
            EXPECT_TRUE(seen.insert(mortonInterleave(x, y)).second);
    EXPECT_EQ(seen.size(), 1024u);
    // A 32x32 grid fills [0, 1024) densely.
    EXPECT_EQ(*seen.rbegin(), 1023u);
}

TEST(MortonLayout, SpecKeyDistinguishesMorton)
{
    TileSpec row{16, 4, false};
    TileSpec mor{16, 4, true};
    EXPECT_NE(row.key(), mor.key());
    EXPECT_FALSE(row == mor);
}

TEST(MortonLayout, ManagerCachesSeparately)
{
    TextureManager tm;
    TextureId t = tm.load("t", MipPyramid(Image(64, 64)));
    const TiledLayout &a = tm.layout(t, TileSpec{16, 4, false});
    const TiledLayout &b = tm.layout(t, TileSpec{16, 4, true});
    EXPECT_NE(&a, &b);
}

TEST(MortonLayout, LinearisedIndexIsGlobalMortonCode)
{
    // The defining property: l2_block_offset * subs + l1_sub equals the
    // Morton code of the global L1-tile coordinates.
    TiledLayout layout(256, 256, 1, TileSpec{16, 4, true});
    const uint32_t subs = 16; // (16/4)^2
    for (uint32_t ty = 0; ty < 64; ++ty) {
        for (uint32_t tx = 0; tx < 64; ++tx) {
            VirtualBlock b = layout.blockOf(1, tx * 4, ty * 4, 0);
            uint32_t linear =
                (b.l2_block - layout.levelBase(0)) * subs + b.l1_sub;
            EXPECT_EQ(linear, mortonInterleave(tx, ty))
                << "tile (" << tx << "," << ty << ")";
        }
    }
}

TEST(MortonLayout, UniqueAcrossLevels)
{
    TiledLayout layout(128, 128, 8, TileSpec{16, 4, true});
    std::set<uint64_t> seen;
    for (uint32_t m = 0; m < 8; ++m) {
        uint32_t dim = std::max(1u, 128u >> m);
        for (uint32_t y = 0; y < dim; y += 4)
            for (uint32_t x = 0; x < dim; x += 4)
                EXPECT_TRUE(seen.insert(layout.blockKeyOf(1, x, y, m)).second)
                    << "m=" << m << " (" << x << "," << y << ")";
    }
}

TEST(MortonLayout, RectangularTexturePadsButStaysUnique)
{
    // 128x32: levels padded to square power-of-two grids for the
    // interleave; addresses must stay unique within each level.
    TiledLayout layout(128, 32, 1, TileSpec{16, 4, true});
    std::set<uint64_t> seen;
    for (uint32_t y = 0; y < 32; y += 4)
        for (uint32_t x = 0; x < 128; x += 4)
            EXPECT_TRUE(seen.insert(layout.blockKeyOf(1, x, y, 0)).second);
    EXPECT_EQ(seen.size(), 32u * 8u / 1u); // 32x8 L1 tiles
}

TEST(MortonLayout, RowMajorAndMortonTouchSameTileSets)
{
    // The two layouts must partition texels identically (same tile
    // membership), just with different numbering.
    TiledLayout row(64, 64, 1, TileSpec{16, 4, false});
    TiledLayout mor(64, 64, 1, TileSpec{16, 4, true});
    // Two texels share a row-major tile iff they share a Morton tile.
    struct Probe
    {
        uint32_t x1, y1, x2, y2;
    } probes[] = {
        {0, 0, 3, 3},   {0, 0, 4, 0},   {17, 9, 18, 10}, {17, 9, 20, 9},
        {63, 63, 60, 60}, {31, 0, 32, 0}, {15, 15, 16, 16},
    };
    for (const auto &p : probes) {
        bool same_row = row.blockKeyOf(1, p.x1, p.y1, 0) ==
                        row.blockKeyOf(1, p.x2, p.y2, 0);
        bool same_mor = mor.blockKeyOf(1, p.x1, p.y1, 0) ==
                        mor.blockKeyOf(1, p.x2, p.y2, 0);
        EXPECT_EQ(same_row, same_mor)
            << "(" << p.x1 << "," << p.y1 << ") vs (" << p.x2 << ","
            << p.y2 << ")";
    }
}

TEST(MortonLayout, ContiguousRegionSpreadsOverSets)
{
    // The reason Morton exists here: a 64x64-texel region's linearised
    // indices must cover all residues mod any power-of-two set count up
    // to the region's tile count.
    TiledLayout layout(256, 256, 1, TileSpec{16, 4, true});
    const uint32_t subs = 16;
    std::set<uint32_t> residues;
    for (uint32_t y = 0; y < 64; y += 4)
        for (uint32_t x = 0; x < 64; x += 4) {
            VirtualBlock b = layout.blockOf(1, x, y, 0);
            uint32_t linear =
                (b.l2_block - layout.levelBase(0)) * subs + b.l1_sub;
            residues.insert(linear & 127); // 128 sets
        }
    EXPECT_EQ(residues.size(), 128u) << "region must fill every set";
}

} // namespace
} // namespace mltc
