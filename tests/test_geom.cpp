/**
 * @file
 * Unit tests for the geometry module: vector/matrix algebra, AABBs,
 * frustum extraction and box classification.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "geom/aabb.hpp"
#include "geom/frustum.hpp"
#include "geom/mat4.hpp"
#include "geom/vec.hpp"

namespace mltc {
namespace {

constexpr float kPi = 3.14159265358979f;

// --- Vec ----------------------------------------------------------------

TEST(Vec3, BasicArithmetic)
{
    Vec3 a{1, 2, 3}, b{4, 5, 6};
    Vec3 s = a + b;
    EXPECT_FLOAT_EQ(s.x, 5);
    EXPECT_FLOAT_EQ(s.y, 7);
    EXPECT_FLOAT_EQ(s.z, 9);
    Vec3 d = b - a;
    EXPECT_FLOAT_EQ(d.x, 3);
    Vec3 m = a * 2.0f;
    EXPECT_FLOAT_EQ(m.z, 6);
}

TEST(Vec3, DotAndCross)
{
    Vec3 x{1, 0, 0}, y{0, 1, 0};
    EXPECT_FLOAT_EQ(x.dot(y), 0.0f);
    Vec3 z = x.cross(y);
    EXPECT_FLOAT_EQ(z.x, 0);
    EXPECT_FLOAT_EQ(z.y, 0);
    EXPECT_FLOAT_EQ(z.z, 1);
}

TEST(Vec3, NormalizedHasUnitLength)
{
    Vec3 v{3, 4, 12};
    EXPECT_NEAR(v.normalized().length(), 1.0f, 1e-6f);
}

TEST(Vec3, NormalizedZeroIsZero)
{
    Vec3 v{0, 0, 0};
    EXPECT_FLOAT_EQ(v.normalized().length(), 0.0f);
}

TEST(Vec2, LengthAndOps)
{
    Vec2 v{3, 4};
    EXPECT_FLOAT_EQ(v.length(), 5.0f);
    EXPECT_FLOAT_EQ((v / 2.0f).x, 1.5f);
}

TEST(Vec4, DotProduct)
{
    Vec4 a{1, 2, 3, 4}, b{5, 6, 7, 8};
    EXPECT_FLOAT_EQ(a.dot(b), 70.0f);
}

TEST(Lerp, InterpolatesEndpointsAndMid)
{
    EXPECT_FLOAT_EQ(lerp(2.0f, 4.0f, 0.0f), 2.0f);
    EXPECT_FLOAT_EQ(lerp(2.0f, 4.0f, 1.0f), 4.0f);
    EXPECT_FLOAT_EQ(lerp(2.0f, 4.0f, 0.5f), 3.0f);
}

TEST(Clampf, Clamps)
{
    EXPECT_FLOAT_EQ(clampf(-1.0f, 0.0f, 1.0f), 0.0f);
    EXPECT_FLOAT_EQ(clampf(2.0f, 0.0f, 1.0f), 1.0f);
    EXPECT_FLOAT_EQ(clampf(0.5f, 0.0f, 1.0f), 0.5f);
}

// --- Mat4 ---------------------------------------------------------------

TEST(Mat4, IdentityIsNeutral)
{
    Mat4 id = Mat4::identity();
    Vec3 p{1, 2, 3};
    Vec3 q = id.transformPoint(p);
    EXPECT_FLOAT_EQ(q.x, 1);
    EXPECT_FLOAT_EQ(q.y, 2);
    EXPECT_FLOAT_EQ(q.z, 3);
}

TEST(Mat4, TranslateMovesPointsNotDirections)
{
    Mat4 t = Mat4::translate({1, 2, 3});
    Vec3 p = t.transformPoint({0, 0, 0});
    EXPECT_FLOAT_EQ(p.x, 1);
    EXPECT_FLOAT_EQ(p.y, 2);
    EXPECT_FLOAT_EQ(p.z, 3);
    Vec3 d = t.transformDirection({1, 0, 0});
    EXPECT_FLOAT_EQ(d.x, 1);
    EXPECT_FLOAT_EQ(d.y, 0);
}

TEST(Mat4, ScaleScales)
{
    Mat4 s = Mat4::scale({2, 3, 4});
    Vec3 p = s.transformPoint({1, 1, 1});
    EXPECT_FLOAT_EQ(p.x, 2);
    EXPECT_FLOAT_EQ(p.y, 3);
    EXPECT_FLOAT_EQ(p.z, 4);
}

TEST(Mat4, RotateYQuarterTurn)
{
    Mat4 r = Mat4::rotateY(kPi * 0.5f);
    Vec3 p = r.transformPoint({1, 0, 0});
    EXPECT_NEAR(p.x, 0, 1e-6f);
    EXPECT_NEAR(p.z, -1, 1e-6f);
}

TEST(Mat4, RotateXQuarterTurn)
{
    Mat4 r = Mat4::rotateX(kPi * 0.5f);
    Vec3 p = r.transformPoint({0, 1, 0});
    EXPECT_NEAR(p.y, 0, 1e-6f);
    EXPECT_NEAR(p.z, 1, 1e-6f);
}

TEST(Mat4, RotateZQuarterTurn)
{
    Mat4 r = Mat4::rotateZ(kPi * 0.5f);
    Vec3 p = r.transformPoint({1, 0, 0});
    EXPECT_NEAR(p.x, 0, 1e-6f);
    EXPECT_NEAR(p.y, 1, 1e-6f);
}

TEST(Mat4, CompositionOrder)
{
    // M = T * R applies rotation first, translation second.
    Mat4 m = Mat4::translate({10, 0, 0}) * Mat4::rotateY(kPi * 0.5f);
    Vec3 p = m.transformPoint({1, 0, 0});
    EXPECT_NEAR(p.x, 10, 1e-5f);
    EXPECT_NEAR(p.z, -1, 1e-5f);
}

TEST(Mat4, LookAtMapsEyeToOrigin)
{
    Mat4 v = Mat4::lookAt({5, 3, 2}, {0, 0, 0}, {0, 1, 0});
    Vec3 p = v.transformPoint({5, 3, 2});
    EXPECT_NEAR(p.length(), 0.0f, 1e-5f);
}

TEST(Mat4, LookAtTargetOnNegativeZ)
{
    Mat4 v = Mat4::lookAt({0, 0, 5}, {0, 0, 0}, {0, 1, 0});
    Vec3 p = v.transformPoint({0, 0, 0});
    EXPECT_NEAR(p.x, 0, 1e-5f);
    EXPECT_NEAR(p.y, 0, 1e-5f);
    EXPECT_NEAR(p.z, -5, 1e-5f);
}

TEST(Mat4, LookAtDegenerateDoesNotNan)
{
    Mat4 v = Mat4::lookAt({1, 1, 1}, {1, 1, 1}, {0, 1, 0});
    Vec3 p = v.transformPoint({0, 0, 0});
    EXPECT_FALSE(std::isnan(p.x));
    EXPECT_FALSE(std::isnan(p.y));
    EXPECT_FALSE(std::isnan(p.z));
}

TEST(Mat4, PerspectiveMapsNearFarToClipRange)
{
    float n = 1.0f, f = 100.0f;
    Mat4 p = Mat4::perspective(kPi / 3.0f, 4.0f / 3.0f, n, f);
    Vec4 near_pt = p * Vec4{0, 0, -n, 1};
    Vec4 far_pt = p * Vec4{0, 0, -f, 1};
    EXPECT_NEAR(near_pt.z / near_pt.w, -1.0f, 1e-4f);
    EXPECT_NEAR(far_pt.z / far_pt.w, 1.0f, 1e-4f);
}

TEST(Mat4, PerspectiveWEqualsViewDistance)
{
    Mat4 p = Mat4::perspective(kPi / 3.0f, 1.0f, 0.5f, 100.0f);
    Vec4 c = p * Vec4{0, 0, -7.0f, 1};
    EXPECT_NEAR(c.w, 7.0f, 1e-5f);
}

// --- Aabb ----------------------------------------------------------------

TEST(Aabb, StartsEmpty)
{
    Aabb box;
    EXPECT_TRUE(box.empty());
}

TEST(Aabb, ExtendPoints)
{
    Aabb box;
    box.extend({1, 2, 3});
    box.extend({-1, 5, 0});
    EXPECT_FALSE(box.empty());
    EXPECT_FLOAT_EQ(box.min.x, -1);
    EXPECT_FLOAT_EQ(box.max.y, 5);
    EXPECT_FLOAT_EQ(box.min.z, 0);
}

TEST(Aabb, CenterAndCorners)
{
    Aabb box;
    box.extend({0, 0, 0});
    box.extend({2, 4, 6});
    Vec3 c = box.center();
    EXPECT_FLOAT_EQ(c.x, 1);
    EXPECT_FLOAT_EQ(c.y, 2);
    EXPECT_FLOAT_EQ(c.z, 3);
    // Corner 0 = min, corner 7 = max.
    EXPECT_FLOAT_EQ(box.corner(0).x, 0);
    EXPECT_FLOAT_EQ(box.corner(7).z, 6);
}

TEST(Aabb, ExtendBox)
{
    Aabb a, b;
    a.extend({0, 0, 0});
    b.extend({5, 5, 5});
    a.extend(b);
    EXPECT_FLOAT_EQ(a.max.x, 5);
    Aabb empty;
    a.extend(empty); // no-op
    EXPECT_FLOAT_EQ(a.max.x, 5);
}

// --- Frustum --------------------------------------------------------------

class FrustumTest : public ::testing::Test
{
  protected:
    FrustumTest()
        : proj(Mat4::perspective(kPi / 3.0f, 1.0f, 0.5f, 100.0f)),
          view(Mat4::lookAt({0, 0, 0}, {0, 0, -1}, {0, 1, 0})),
          frustum(proj * view)
    {}

    Aabb
    boxAt(Vec3 center, float half)
    {
        Aabb b;
        b.extend(center - Vec3{half, half, half});
        b.extend(center + Vec3{half, half, half});
        return b;
    }

    Mat4 proj, view;
    Frustum frustum;
};

TEST_F(FrustumTest, BoxInFrontIsInside)
{
    EXPECT_EQ(frustum.classify(boxAt({0, 0, -10}, 1.0f)),
              CullResult::Inside);
}

TEST_F(FrustumTest, BoxBehindIsOutside)
{
    EXPECT_EQ(frustum.classify(boxAt({0, 0, 10}, 1.0f)),
              CullResult::Outside);
}

TEST_F(FrustumTest, BoxBeyondFarIsOutside)
{
    EXPECT_EQ(frustum.classify(boxAt({0, 0, -500}, 1.0f)),
              CullResult::Outside);
}

TEST_F(FrustumTest, BoxFarLeftIsOutside)
{
    EXPECT_EQ(frustum.classify(boxAt({-100, 0, -10}, 1.0f)),
              CullResult::Outside);
}

TEST_F(FrustumTest, BoxStraddlingNearIsIntersecting)
{
    EXPECT_EQ(frustum.classify(boxAt({0, 0, -0.5f}, 1.0f)),
              CullResult::Intersecting);
}

TEST_F(FrustumTest, HugeBoxIntersects)
{
    EXPECT_EQ(frustum.classify(boxAt({0, 0, 0}, 1000.0f)),
              CullResult::Intersecting);
    EXPECT_TRUE(frustum.intersects(boxAt({0, 0, 0}, 1000.0f)));
}

TEST_F(FrustumTest, EmptyBoxIsOutside)
{
    Aabb empty;
    EXPECT_EQ(frustum.classify(empty), CullResult::Outside);
}

TEST_F(FrustumTest, PlanesAreNormalized)
{
    for (int i = 0; i < 6; ++i)
        EXPECT_NEAR(frustum.plane(i).normal.length(), 1.0f, 1e-4f);
}

} // namespace
} // namespace mltc
