/**
 * @file
 * Round-trip tests for the access trace recorder/replayer.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <unistd.h>

#include "trace/trace_io.hpp"

namespace mltc {
namespace {

/** Sink recording everything for comparison. */
class RecordingSink final : public TexelAccessSink
{
  public:
    void
    bindTexture(TextureId tid) override
    {
        events.push_back({0, tid, 0, 0});
    }

    void
    access(uint32_t x, uint32_t y, uint32_t mip) override
    {
        events.push_back({1, x, y, mip});
    }

    struct Ev
    {
        uint32_t kind, a, b, c;

        bool
        operator==(const Ev &o) const
        {
            return kind == o.kind && a == o.a && b == o.b && c == o.c;
        }
    };
    std::vector<Ev> events;
};

// PID-suffixed: ctest runs each test case as its own process, possibly
// in parallel, so shared fixed names would race on create/remove.
std::string
tempTrace(const char *name)
{
    return testing::TempDir() + name + "." + std::to_string(getpid());
}

TEST(TraceIo, RoundTripsEvents)
{
    std::string path = tempTrace("trace_roundtrip.bin");
    {
        TraceWriter w(path);
        w.bindTexture(3);
        w.access(1, 2, 0);
        w.access(100, 200, 5);
        w.endFrame();
        w.bindTexture(4);
        w.access(7, 8, 1);
        w.endFrame();
    }
    TraceReader r(path);
    RecordingSink sink;
    EXPECT_TRUE(r.replayFrame(sink));
    ASSERT_EQ(sink.events.size(), 3u);
    EXPECT_EQ(sink.events[0], (RecordingSink::Ev{0, 3, 0, 0}));
    EXPECT_EQ(sink.events[1], (RecordingSink::Ev{1, 1, 2, 0}));
    EXPECT_EQ(sink.events[2], (RecordingSink::Ev{1, 100, 200, 5}));

    sink.events.clear();
    EXPECT_TRUE(r.replayFrame(sink));
    ASSERT_EQ(sink.events.size(), 2u);
    EXPECT_EQ(sink.events[1], (RecordingSink::Ev{1, 7, 8, 1}));

    EXPECT_FALSE(r.replayFrame(sink)); // end of trace
    std::remove(path.c_str());
}

TEST(TraceIo, ReplayAllCountsFrames)
{
    std::string path = tempTrace("trace_frames.bin");
    {
        TraceWriter w(path);
        for (int f = 0; f < 5; ++f) {
            w.bindTexture(1);
            w.access(static_cast<uint32_t>(f), 0, 0);
            w.endFrame();
        }
    }
    TraceReader r(path);
    RecordingSink sink;
    EXPECT_EQ(r.replayAll(sink), 5u);
    EXPECT_EQ(sink.events.size(), 10u);
    std::remove(path.c_str());
}

TEST(TraceIo, EmptyTraceYieldsNoFrames)
{
    std::string path = tempTrace("trace_empty.bin");
    {
        TraceWriter w(path);
    }
    TraceReader r(path);
    RecordingSink sink;
    EXPECT_FALSE(r.replayFrame(sink));
    std::remove(path.c_str());
}

TEST(TraceIo, RejectsMissingFile)
{
    EXPECT_THROW(TraceReader("/nonexistent/trace.bin"),
                 std::runtime_error);
    EXPECT_THROW(TraceWriter("/nonexistent_dir/trace.bin"),
                 std::runtime_error);
}

TEST(TraceIo, RejectsBadMagic)
{
    std::string path = tempTrace("trace_badmagic.bin");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    std::fwrite("NOTATRACE", 1, 9, f);
    std::fclose(f);
    EXPECT_THROW(TraceReader reader(path), std::runtime_error);
    std::remove(path.c_str());
}

TEST(TraceIo, TruncatedAccessThrows)
{
    std::string path = tempTrace("trace_trunc.bin");
    {
        TraceWriter w(path);
        w.bindTexture(1);
        w.access(1, 2, 3);
    }
    // Chop the last 2 bytes off.
    std::FILE *f = std::fopen(path.c_str(), "rb");
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(truncate(path.c_str(), size - 2), 0);

    TraceReader r(path);
    RecordingSink sink;
    EXPECT_THROW(r.replayFrame(sink), std::runtime_error);
    std::remove(path.c_str());
}

} // namespace
} // namespace mltc
