/**
 * @file
 * Unit tests for the telemetry-plane exposition pillar: the Prometheus
 * text-encoding primitives (name sanitization, label escaping,
 * shortest-round-trip values), golden renderExposition output
 * (families sorted, one # TYPE each, histogram buckets + _sum/_count),
 * the embedded HTTP server's endpoints scraped through httpGet, the
 * port file, and a scrape-while-update stress the TSan job runs to
 * prove the registry lock contract.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <sstream>
#include <thread>
#include <unistd.h>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/telemetry_server.hpp"
#include "util/error.hpp"
#include "util/exposition.hpp"
#include "util/http.hpp"

namespace mltc {
namespace {

// PID-suffixed: ctest runs each test case as its own process, possibly
// in parallel, so shared fixed names would race on create/remove.
std::string
tempPath(const char *name)
{
    return testing::TempDir() + name + "." + std::to_string(getpid());
}

// ---------------------------------------------------------------------------
// Encoding primitives.

TEST(Exposition, MetricNameSanitization)
{
    EXPECT_EQ(expositionMetricName("l2.miss"), "mltc_l2_miss");
    EXPECT_EQ(expositionMetricName("slo.violation_rounds"),
              "mltc_slo_violation_rounds");
    EXPECT_EQ(expositionMetricName("weird-name 2"), "mltc_weird_name_2");
}

TEST(Exposition, LabelNameDropsColons)
{
    EXPECT_EQ(expositionLabelName("stream"), "stream");
    EXPECT_EQ(expositionLabelName("a:b.c"), "a_b_c");
}

TEST(Exposition, LabelValueEscaping)
{
    EXPECT_EQ(expositionLabelValue("4 MB L2"), "4 MB L2");
    EXPECT_EQ(expositionLabelValue("a\"b"), "a\\\"b");
    EXPECT_EQ(expositionLabelValue("a\\b"), "a\\\\b");
    EXPECT_EQ(expositionLabelValue("a\nb"), "a\\nb");
}

TEST(Exposition, ValueShortestRoundTrip)
{
    EXPECT_EQ(expositionValue(0.0), "0");
    EXPECT_EQ(expositionValue(1.5), "1.5");
    EXPECT_EQ(expositionValue(0.15), "0.15");
    EXPECT_EQ(expositionValue(static_cast<uint64_t>(12345)), "12345");
}

TEST(Exposition, LabelsRendering)
{
    EXPECT_EQ(expositionLabels({}), "");
    EXPECT_EQ(expositionLabels({{"stream", "3"}, {"sim", "4 MB L2"}}),
              "{stream=\"3\",sim=\"4 MB L2\"}");
}

// ---------------------------------------------------------------------------
// renderExposition goldens.

TEST(RenderExposition, GoldenFamiliesSortedAndTyped)
{
    MetricsRegistry registry(true);
    registry.counter("l1.miss", {{"stream", "3"}}).inc(7);
    registry.counter("l1.miss", {{"stream", "4"}}).inc(2);
    registry.gauge("lod_bias", {{"stream", "3"}}).set(1.5);
    HistogramHandle h = registry.histogram("lat", {}, 4);
    h.observe(0);
    h.observe(1);
    h.observe(3);

    const std::string expected =
        "# TYPE mltc_l1_miss counter\n"
        "mltc_l1_miss{stream=\"3\"} 7\n"
        "mltc_l1_miss{stream=\"4\"} 2\n"
        "# TYPE mltc_lat histogram\n"
        "mltc_lat_bucket{le=\"0\"} 1\n"
        "mltc_lat_bucket{le=\"1\"} 2\n"
        "mltc_lat_bucket{le=\"2\"} 2\n"
        "mltc_lat_bucket{le=\"4\"} 3\n"
        "mltc_lat_bucket{le=\"+Inf\"} 3\n"
        "mltc_lat_sum 4\n"
        "mltc_lat_count 3\n"
        "# TYPE mltc_lod_bias gauge\n"
        "mltc_lod_bias{stream=\"3\"} 1.5\n";
    EXPECT_EQ(renderExposition(registry), expected);
    // Identical state scrapes byte-identically.
    EXPECT_EQ(renderExposition(registry), expected);
}

TEST(RenderExposition, MixedKindFamilyIsUntyped)
{
    MetricsRegistry registry(true);
    // Distinct canonical names that sanitize onto one family name.
    registry.counter("a.b").inc(1);
    registry.gauge("a b").set(2.0);
    const std::string text = renderExposition(registry);
    EXPECT_NE(text.find("# TYPE mltc_a_b untyped\n"), std::string::npos);
}

TEST(RenderExposition, DisabledRegistryRendersEmpty)
{
    MetricsRegistry registry(false);
    registry.counter("x").inc();
    EXPECT_EQ(renderExposition(registry), "");
}

// ---------------------------------------------------------------------------
// The embedded server.

TEST(TelemetryServer, ServesAllEndpoints)
{
    MetricsRegistry registry(true);
    registry.counter("accesses", {{"stream", "0"}}).inc(11);

    TelemetryConfig cfg;
    cfg.enabled = true;
    cfg.port = 0; // kernel-assigned
    TelemetryServer server(cfg, &registry);
    ASSERT_GT(server.port(), 0);

    int status = 0;
    const std::string metrics =
        httpGet(server.port(), "/metrics", &status);
    EXPECT_EQ(status, 200);
    EXPECT_NE(metrics.find("mltc_accesses{stream=\"0\"} 11"),
              std::string::npos);

    EXPECT_EQ(httpGet(server.port(), "/healthz", &status),
              "{\"status\":\"starting\"}\n");
    EXPECT_EQ(status, 200);

    server.publishHealth("{\"status\":\"serving\"}");
    server.publishRunz("{\"mode\":\"test\"}");
    EXPECT_EQ(httpGet(server.port(), "/healthz", &status),
              "{\"status\":\"serving\"}\n");
    // /runz splices the build provenance ahead of the pushed document.
    const std::string runz = httpGet(server.port(), "/runz", &status);
    EXPECT_EQ(status, 200);
    EXPECT_EQ(runz.find("{\"build\":{\"git_sha\":"), 0u);
    EXPECT_NE(runz.find("\"mode\":\"test\"}\n"), std::string::npos);

    // /profilez without a provider reports the plane disabled; with
    // one it serves whatever the provider renders.
    EXPECT_EQ(httpGet(server.port(), "/profilez", &status),
              "{\"enabled\":false}\n");
    EXPECT_EQ(status, 200);
    server.setProfileProvider([] { return std::string("{\"hz\":997}"); });
    EXPECT_EQ(httpGet(server.port(), "/profilez", &status),
              "{\"hz\":997}\n");
    EXPECT_EQ(status, 200);

    httpGet(server.port(), "/nope", &status);
    EXPECT_EQ(status, 404);
    EXPECT_GE(server.scrapes(), 5u);
}

TEST(TelemetryServer, WritesPortFile)
{
    MetricsRegistry registry(true);
    TelemetryConfig cfg;
    cfg.enabled = true;
    cfg.port = 0;
    cfg.port_file = tempPath("telemetry.port");
    {
        TelemetryServer server(cfg, &registry);
        std::ifstream in(cfg.port_file);
        ASSERT_TRUE(in.good());
        int port = 0;
        in >> port;
        EXPECT_EQ(port, server.port());
    }
    std::remove(cfg.port_file.c_str());
}

TEST(TelemetryServer, StopIsIdempotent)
{
    MetricsRegistry registry(true);
    TelemetryConfig cfg;
    cfg.enabled = true;
    TelemetryServer server(cfg, &registry);
    server.stop();
    server.stop();
}

// The TSan job runs this: frame-boundary update batches under
// updateGuard on one thread, live HTTP scrapes plus direct renders on
// others. Any missing synchronization in the registry or server is a
// reported race.
TEST(TelemetryServer, ConcurrentScrapeWhileUpdating)
{
    MetricsRegistry registry(true);
    CounterHandle hits = registry.counter("hits", {{"stream", "0"}});
    GaugeHandle bias = registry.gauge("bias", {{"stream", "0"}});

    TelemetryConfig cfg;
    cfg.enabled = true;
    TelemetryServer server(cfg, &registry);

    std::atomic<bool> stop{false};
    std::thread writer([&]() {
        for (uint64_t i = 0; !stop.load(std::memory_order_relaxed); ++i) {
            auto guard = registry.updateGuard();
            hits.inc();
            bias.set(static_cast<double>(i % 7));
            // New series registration must also be scrape-safe.
            registry
                .counter("hits", {{"stream", std::to_string(i % 4)}})
                .inc();
        }
    });
    std::thread renderer([&]() {
        while (!stop.load(std::memory_order_relaxed))
            EXPECT_FALSE(renderExposition(registry).empty());
    });
    for (int i = 0; i < 20; ++i) {
        int status = 0;
        const std::string body =
            httpGet(server.port(), "/metrics", &status);
        EXPECT_EQ(status, 200);
        EXPECT_NE(body.find("# TYPE mltc_hits counter"),
                  std::string::npos);
    }
    stop.store(true, std::memory_order_relaxed);
    writer.join();
    renderer.join();
}

} // namespace
} // namespace mltc
