/**
 * @file
 * Unit tests for the Histogram utility.
 */
#include <gtest/gtest.h>

#include "util/histogram.hpp"

namespace mltc {
namespace {

TEST(Histogram, EmptyIsZero)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.percentile(0.5), 0u);
    EXPECT_DOUBLE_EQ(h.cdf(10), 0.0);
}

TEST(Histogram, BasicStats)
{
    Histogram h;
    for (uint64_t v : {1, 2, 2, 3, 4})
        h.add(v);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.max(), 4u);
    EXPECT_DOUBLE_EQ(h.mean(), 12.0 / 5.0);
    EXPECT_EQ(h.bucket(2), 2u);
    EXPECT_EQ(h.bucket(5), 0u);
}

TEST(Histogram, Percentiles)
{
    Histogram h;
    for (uint64_t v = 1; v <= 100; ++v)
        h.add(v);
    EXPECT_EQ(h.percentile(0.5), 50u);
    EXPECT_EQ(h.percentile(0.99), 99u);
    EXPECT_EQ(h.percentile(1.0), 100u);
    EXPECT_EQ(h.percentile(0.01), 1u);
}

TEST(Histogram, CdfMonotone)
{
    Histogram h;
    for (uint64_t v : {0, 1, 1, 5, 9})
        h.add(v);
    EXPECT_DOUBLE_EQ(h.cdf(0), 0.2);
    EXPECT_DOUBLE_EQ(h.cdf(1), 0.6);
    EXPECT_DOUBLE_EQ(h.cdf(4), 0.6);
    EXPECT_DOUBLE_EQ(h.cdf(9), 1.0);
}

TEST(Histogram, OverflowBucketAggregates)
{
    Histogram h(10);
    h.add(5);
    h.add(100);
    h.add(200);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.max(), 200u);
    EXPECT_EQ(h.bucket(100), 2u); // both overflow samples
    EXPECT_EQ(h.bucket(200), 2u); // same overflow bucket
    EXPECT_EQ(h.percentile(1.0), 11u); // cap+1 marker
}

TEST(Histogram, EmptyPercentileIsZeroAtEveryQuantile)
{
    Histogram h;
    for (double q : {0.0, 0.01, 0.5, 0.99, 1.0})
        EXPECT_EQ(h.percentile(q), 0u) << "q=" << q;
}

TEST(Histogram, SingleBucketGeometry)
{
    // cap 0: one real bucket (value 0) plus the overflow bucket.
    Histogram h(0);
    h.add(0);
    h.add(0);
    EXPECT_EQ(h.count(), 2u);
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.percentile(0.5), 0u);
    EXPECT_EQ(h.percentile(1.0), 0u);
    EXPECT_DOUBLE_EQ(h.cdf(0), 1.0);
    h.add(7); // overflows the single bucket
    EXPECT_EQ(h.bucket(7), 1u);
    EXPECT_EQ(h.percentile(1.0), 1u); // cap+1 marker
    EXPECT_EQ(h.max(), 7u);
}

TEST(Histogram, MergeOfDisjointRanges)
{
    Histogram lo, hi;
    for (uint64_t v = 1; v <= 10; ++v)
        lo.add(v);
    for (uint64_t v = 101; v <= 110; ++v)
        hi.add(v);
    lo.merge(hi);
    EXPECT_EQ(lo.count(), 20u);
    EXPECT_EQ(lo.max(), 110u);
    EXPECT_EQ(lo.sum(), 55u + 1055u);
    EXPECT_EQ(lo.bucket(5), 1u);
    EXPECT_EQ(lo.bucket(105), 1u);
    EXPECT_EQ(lo.bucket(50), 0u); // the gap stays empty
    EXPECT_EQ(lo.percentile(0.5), 10u);
    EXPECT_EQ(lo.percentile(1.0), 110u);
    EXPECT_DOUBLE_EQ(lo.cdf(10), 0.5);
}

TEST(Histogram, MergeRejectsCapMismatch)
{
    Histogram a(10);
    Histogram b(20);
    b.add(3);
    try {
        a.merge(b);
        FAIL() << "cap mismatch must throw";
    } catch (const Exception &e) {
        EXPECT_EQ(e.code(), ErrorCode::BadArgument);
    }
    EXPECT_EQ(a.count(), 0u); // unchanged on rejection
}

TEST(Histogram, ClearResets)
{
    Histogram h;
    h.add(7);
    h.clear();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.bucket(7), 0u);
    h.add(3);
    EXPECT_EQ(h.count(), 1u);
}

} // namespace
} // namespace mltc
