/**
 * @file
 * Unit tests for the Histogram utility.
 */
#include <gtest/gtest.h>

#include "util/histogram.hpp"

namespace mltc {
namespace {

TEST(Histogram, EmptyIsZero)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.percentile(0.5), 0u);
    EXPECT_DOUBLE_EQ(h.cdf(10), 0.0);
}

TEST(Histogram, BasicStats)
{
    Histogram h;
    for (uint64_t v : {1, 2, 2, 3, 4})
        h.add(v);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.max(), 4u);
    EXPECT_DOUBLE_EQ(h.mean(), 12.0 / 5.0);
    EXPECT_EQ(h.bucket(2), 2u);
    EXPECT_EQ(h.bucket(5), 0u);
}

TEST(Histogram, Percentiles)
{
    Histogram h;
    for (uint64_t v = 1; v <= 100; ++v)
        h.add(v);
    EXPECT_EQ(h.percentile(0.5), 50u);
    EXPECT_EQ(h.percentile(0.99), 99u);
    EXPECT_EQ(h.percentile(1.0), 100u);
    EXPECT_EQ(h.percentile(0.01), 1u);
}

TEST(Histogram, CdfMonotone)
{
    Histogram h;
    for (uint64_t v : {0, 1, 1, 5, 9})
        h.add(v);
    EXPECT_DOUBLE_EQ(h.cdf(0), 0.2);
    EXPECT_DOUBLE_EQ(h.cdf(1), 0.6);
    EXPECT_DOUBLE_EQ(h.cdf(4), 0.6);
    EXPECT_DOUBLE_EQ(h.cdf(9), 1.0);
}

TEST(Histogram, OverflowBucketAggregates)
{
    Histogram h(10);
    h.add(5);
    h.add(100);
    h.add(200);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.max(), 200u);
    EXPECT_EQ(h.bucket(100), 2u); // both overflow samples
    EXPECT_EQ(h.bucket(200), 2u); // same overflow bucket
    EXPECT_EQ(h.percentile(1.0), 11u); // cap+1 marker
}

TEST(Histogram, ClearResets)
{
    Histogram h;
    h.add(7);
    h.clear();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.bucket(7), 0u);
    h.add(3);
    EXPECT_EQ(h.count(), 1u);
}

} // namespace
} // namespace mltc
