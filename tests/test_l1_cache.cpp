/**
 * @file
 * Unit tests for the L1 texture cache: geometry validation, hit/miss
 * behaviour, LRU within sets, associativity sweep and stats.
 */
#include <gtest/gtest.h>

#include "core/l1_cache.hpp"
#include "util/rng.hpp"

namespace mltc {
namespace {

uint64_t
key(uint32_t tid, uint32_t l2, uint32_t l1)
{
    return packBlock({tid, l2, l1});
}

TEST(L1Config, Geometry)
{
    L1Config c;
    c.size_bytes = 16 * 1024;
    c.l1_tile = 4;
    EXPECT_EQ(c.lineBytes(), 64u);
    EXPECT_EQ(c.lines(), 256u);

    c.l1_tile = 8;
    EXPECT_EQ(c.lineBytes(), 256u);
    EXPECT_EQ(c.lines(), 64u);
}

TEST(L1Cache, RejectsBadGeometry)
{
    L1Config c;
    c.size_bytes = 100; // not a multiple of 64
    EXPECT_THROW(L1Cache{c}, std::invalid_argument);
    c.size_bytes = 0;
    EXPECT_THROW(L1Cache{c}, std::invalid_argument);
}

TEST(L1Cache, MissThenHit)
{
    L1Config c;
    c.size_bytes = 2 * 1024;
    L1Cache cache(c);
    EXPECT_FALSE(cache.lookup(key(1, 0, 0)));
    cache.fill(key(1, 0, 0));
    EXPECT_TRUE(cache.lookup(key(1, 0, 0)));
    EXPECT_EQ(cache.stats().accesses, 2u);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_DOUBLE_EQ(cache.stats().missRate(), 0.5);
}

TEST(L1Cache, DistinctKeysDistinctLines)
{
    L1Config c;
    c.size_bytes = 2 * 1024;
    L1Cache cache(c);
    cache.fill(key(1, 0, 0));
    cache.fill(key(1, 0, 1));
    EXPECT_TRUE(cache.probe(key(1, 0, 0)));
    EXPECT_TRUE(cache.probe(key(1, 0, 1)));
}

TEST(L1Cache, CapacityEvictions)
{
    // 2 KB / 64 B = 32 lines (16 sets x 2 ways). Stream 64 consecutive
    // tiles (4 L2 blocks x 16 sub-blocks): bit-selection indexing maps
    // them 4 per set, so exactly the 2 most recent per set survive.
    L1Config c;
    c.size_bytes = 2 * 1024;
    L1Cache cache(c);
    for (uint32_t i = 0; i < 64; ++i)
        cache.fill(key(1, i / 16, i % 16));
    int resident = 0;
    for (uint32_t i = 0; i < 64; ++i)
        if (cache.probe(key(1, i / 16, i % 16)))
            ++resident;
    EXPECT_EQ(resident, 32);
    // The survivors are the most recently inserted half.
    for (uint32_t i = 32; i < 64; ++i)
        EXPECT_TRUE(cache.probe(key(1, i / 16, i % 16)));
}

TEST(L1Cache, LruWithinSetPreservesRecentlyUsed)
{
    // Fully-associative small cache makes LRU observable directly.
    L1Config c;
    c.size_bytes = 4 * 64; // 4 lines
    c.assoc = 0;           // fully associative
    L1Cache cache(c);
    for (uint32_t i = 0; i < 4; ++i)
        cache.fill(key(1, i, 0));
    // Touch key 0 so key 1 is LRU.
    EXPECT_TRUE(cache.lookup(key(1, 0, 0)));
    cache.fill(key(1, 99, 0)); // evicts key 1
    EXPECT_TRUE(cache.probe(key(1, 0, 0)));
    EXPECT_FALSE(cache.probe(key(1, 1, 0)));
}

TEST(L1Cache, ResetInvalidatesContentKeepsStats)
{
    L1Config c;
    c.size_bytes = 2 * 1024;
    L1Cache cache(c);
    cache.fill(key(1, 0, 0));
    cache.lookup(key(1, 0, 0));
    cache.reset();
    EXPECT_FALSE(cache.probe(key(1, 0, 0)));
    EXPECT_EQ(cache.stats().accesses, 1u);
    cache.clearStats();
    EXPECT_EQ(cache.stats().accesses, 0u);
}

TEST(L1Cache, FullyAssociativeHoldsExactlyCapacity)
{
    L1Config c;
    c.size_bytes = 8 * 64;
    c.assoc = 0;
    L1Cache cache(c);
    for (uint32_t i = 0; i < 8; ++i)
        cache.fill(key(1, i, 0));
    for (uint32_t i = 0; i < 8; ++i)
        EXPECT_TRUE(cache.probe(key(1, i, 0)));
    cache.fill(key(1, 100, 0));
    int resident = 0;
    for (uint32_t i = 0; i < 8; ++i)
        if (cache.probe(key(1, i, 0)))
            ++resident;
    EXPECT_EQ(resident, 7); // exactly one eviction
}

class L1AssocTest : public ::testing::TestWithParam<uint32_t>
{
};

/** Under a working set that fits, every config converges to all hits. */
TEST_P(L1AssocTest, SteadyStateAllHits)
{
    L1Config c;
    c.size_bytes = 16 * 1024;
    c.assoc = GetParam();
    L1Cache cache(c);
    // 64-line working set streamed twice (cache holds 256 lines).
    for (int round = 0; round < 2; ++round)
        for (uint32_t i = 0; i < 64; ++i)
            if (!cache.lookup(key(2, i / 16, i % 16)))
                cache.fill(key(2, i / 16, i % 16));
    // Third pass must be all hits.
    uint64_t misses_before = cache.stats().misses;
    for (uint32_t i = 0; i < 64; ++i)
        EXPECT_TRUE(cache.lookup(key(2, i / 16, i % 16)));
    EXPECT_EQ(cache.stats().misses, misses_before);
}

/** Thrashing a set: with N-way associativity, N alternating keys that
 *  map anywhere still behave sanely and stats add up. */
TEST_P(L1AssocTest, StatsAlwaysConsistent)
{
    L1Config c;
    c.size_bytes = 2 * 1024;
    c.assoc = GetParam();
    L1Cache cache(c);
    Rng rng(31);
    uint64_t manual_misses = 0, manual_accesses = 0;
    for (int i = 0; i < 5000; ++i) {
        uint64_t k = key(1 + static_cast<uint32_t>(rng.below(3)),
                         static_cast<uint32_t>(rng.below(64)),
                         static_cast<uint32_t>(rng.below(16)));
        ++manual_accesses;
        if (!cache.lookup(k)) {
            ++manual_misses;
            cache.fill(k);
            EXPECT_TRUE(cache.probe(k));
        }
    }
    EXPECT_EQ(cache.stats().accesses, manual_accesses);
    EXPECT_EQ(cache.stats().misses, manual_misses);
}

INSTANTIATE_TEST_SUITE_P(Assoc, L1AssocTest,
                         ::testing::Values(1u, 2u, 4u, 8u, 0u),
                         [](const ::testing::TestParamInfo<uint32_t> &info) {
                             return info.param == 0
                                        ? std::string("full")
                                        : std::to_string(info.param) + "way";
                         });

} // namespace
} // namespace mltc
