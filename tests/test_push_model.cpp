/**
 * @file
 * Unit tests for the push-architecture oracle memory model.
 */
#include <gtest/gtest.h>

#include "core/push_model.hpp"

namespace mltc {
namespace {

TEST(PushModel, SumsWholeTexturesTouched)
{
    TextureManager tm;
    TextureId a = tm.load("a", MipPyramid(Image(64, 64)));
    TextureId b = tm.load("b", MipPyramid(Image(32, 32)), 2);

    PushArchitectureModel push(tm);
    push.bindTexture(a);
    push.access(0, 0, 0);
    push.bindTexture(b);
    uint64_t expected = tm.texture(a).hostBytes() +
                        tm.texture(b).hostBytes();
    EXPECT_EQ(push.endFrame(), expected);
}

TEST(PushModel, RebindDoesNotDoubleCount)
{
    TextureManager tm;
    TextureId a = tm.load("a", MipPyramid(Image(64, 64)));
    PushArchitectureModel push(tm);
    push.bindTexture(a);
    push.bindTexture(a);
    push.bindTexture(a);
    EXPECT_EQ(push.endFrame(), tm.texture(a).hostBytes());
}

TEST(PushModel, FrameBoundaryResets)
{
    TextureManager tm;
    TextureId a = tm.load("a", MipPyramid(Image(64, 64)));
    PushArchitectureModel push(tm);
    push.bindTexture(a);
    push.endFrame();
    // Untouched frame costs nothing (oracle replacement).
    EXPECT_EQ(push.endFrame(), 0u);
    // Touching again next frame counts again.
    push.bindTexture(a);
    EXPECT_EQ(push.endFrame(), tm.texture(a).hostBytes());
}

TEST(PushModel, UsesOriginalDepth)
{
    TextureManager tm;
    TextureId a = tm.load("a", MipPyramid(Image(16, 16)), 1); // 8-bit
    PushArchitectureModel push(tm);
    push.bindTexture(a);
    EXPECT_EQ(push.endFrame(), tm.texture(a).pyramid.totalTexels());
}

} // namespace
} // namespace mltc
