/**
 * @file
 * Unit tests for the transaction-level timing model extension.
 */
#include <gtest/gtest.h>

#include "model/timing_model.hpp"

namespace mltc {
namespace {

CacheFrameStats
statsWith(uint64_t accesses, uint64_t misses, uint64_t full_hits,
          uint64_t partial, uint64_t full_miss)
{
    CacheFrameStats s;
    s.accesses = accesses;
    s.l1_misses = misses;
    s.l2_full_hits = full_hits;
    s.l2_partial_hits = partial;
    s.l2_full_misses = full_miss;
    s.host_bytes = (partial + full_miss) * 64;
    s.l2_read_bytes = full_hits * 64;
    return s;
}

TEST(TimingModel, NoMissesIsPureHitTime)
{
    CacheFrameStats s = statsWith(1000, 0, 0, 0, 0);
    TimingParams p;
    ArchTiming t = timePullFrame(s, p);
    EXPECT_NEAR(t.texture_path_ms, 1000 * p.texel_hit_ns * 1e-6, 1e-9);
    EXPECT_DOUBLE_EQ(t.host_bus_ms, 0.0);
    EXPECT_DOUBLE_EQ(t.avg_miss_penalty_ns, 0.0);
}

TEST(TimingModel, PullMissPenaltyIsHostTransaction)
{
    CacheFrameStats s = statsWith(1000, 100, 0, 0, 0);
    s.host_bytes = 100 * 64;
    TimingParams p;
    ArchTiming t = timePullFrame(s, p);
    // Each miss pays latency + 64B transfer.
    double expect = p.host_latency_ns +
                    64.0 / (p.host_bandwidth_mbps * 1048576.0) * 1e9;
    EXPECT_NEAR(t.avg_miss_penalty_ns, expect, 1e-6);
    EXPECT_GT(t.texture_path_ms, 0.0);
    EXPECT_GT(t.fps_bound, 0.0);
}

TEST(TimingModel, L2FullHitsCheaperThanHost)
{
    TimingParams p;
    CacheFrameStats l2_hits = statsWith(1000, 100, 100, 0, 0);
    CacheFrameStats host = statsWith(1000, 100, 0, 100, 0);
    double hit_pen = timeL2Frame(l2_hits, p).avg_miss_penalty_ns;
    double host_pen = timeL2Frame(host, p).avg_miss_penalty_ns;
    EXPECT_LT(hit_pen, host_pen);
}

TEST(TimingModel, FullMissCostliest)
{
    TimingParams p;
    CacheFrameStats partial = statsWith(1000, 100, 0, 100, 0);
    CacheFrameStats full_miss = statsWith(1000, 100, 0, 0, 100);
    EXPECT_LT(timeL2Frame(partial, p).avg_miss_penalty_ns,
              timeL2Frame(full_miss, p).avg_miss_penalty_ns);
}

TEST(TimingModel, FrameTimeIsMaxOfBounds)
{
    // Saturate the host bus: enormous bytes with few misses.
    CacheFrameStats s = statsWith(100, 10, 0, 10, 0);
    s.host_bytes = 512ull << 20; // a full second of AGP
    TimingParams p;
    ArchTiming t = timePullFrame(s, p);
    EXPECT_NEAR(t.frame_ms, t.host_bus_ms, 1e-9);
    EXPECT_GT(t.host_bus_ms, t.texture_path_ms);
}

TEST(TimingModel, EffectiveAdvantageBelowOneForHitDominated)
{
    // 95% of misses served from L2: effective f must be < 1.
    CacheFrameStats s = statsWith(100000, 1000, 950, 40, 10);
    EXPECT_LT(effectiveFractionalAdvantage(s), 1.0);
    EXPECT_GT(effectiveFractionalAdvantage(s), 0.0);
}

TEST(TimingModel, EffectiveAdvantageAboveOneForMissDominated)
{
    // All full misses with overhead: worse than pull on the miss path.
    CacheFrameStats s = statsWith(100000, 1000, 0, 0, 1000);
    EXPECT_GT(effectiveFractionalAdvantage(s), 1.0);
}

TEST(TimingModel, ZeroMissesGivesZeroAdvantage)
{
    CacheFrameStats s = statsWith(1000, 0, 0, 0, 0);
    EXPECT_DOUBLE_EQ(effectiveFractionalAdvantage(s), 0.0);
}

TEST(TimingModel, FasterHostShrinksGap)
{
    CacheFrameStats s = statsWith(100000, 1000, 950, 40, 10);
    TimingParams slow, fast;
    fast.host_bandwidth_mbps = 4096;
    fast.host_latency_ns = 50;
    double f_slow = effectiveFractionalAdvantage(s, slow);
    double f_fast = effectiveFractionalAdvantage(s, fast);
    // With a faster host, the relative benefit of the L2 shrinks (f
    // rises towards 1) because L2 latency stays fixed.
    EXPECT_GT(f_fast, f_slow);
}

} // namespace
} // namespace mltc
