/**
 * @file
 * Unit tests for mesh primitives and mesh utilities.
 */
#include <gtest/gtest.h>

#include "scene/mesh.hpp"

namespace mltc {
namespace {

TEST(Mesh, QuadXZGeometry)
{
    Mesh m = makeQuadXZ(4.0f, 2.0f, 3.0f, 5.0f);
    ASSERT_EQ(m.vertices.size(), 4u);
    ASSERT_EQ(m.triangleCount(), 2u);
    Aabb b = m.bounds();
    EXPECT_FLOAT_EQ(b.min.x, -2.0f);
    EXPECT_FLOAT_EQ(b.max.x, 2.0f);
    EXPECT_FLOAT_EQ(b.min.z, -1.0f);
    EXPECT_FLOAT_EQ(b.max.z, 1.0f);
    EXPECT_FLOAT_EQ(b.min.y, 0.0f);
    EXPECT_FLOAT_EQ(b.max.y, 0.0f);
    // UVs cover the requested repeats.
    float max_u = 0, max_v = 0;
    for (const auto &v : m.vertices) {
        max_u = std::max(max_u, v.uv.x);
        max_v = std::max(max_v, v.uv.y);
    }
    EXPECT_FLOAT_EQ(max_u, 3.0f);
    EXPECT_FLOAT_EQ(max_v, 5.0f);
}

TEST(Mesh, QuadXYStandsUp)
{
    Mesh m = makeQuadXY(2.0f, 6.0f, 1.0f, 1.0f);
    Aabb b = m.bounds();
    EXPECT_FLOAT_EQ(b.min.y, 0.0f);
    EXPECT_FLOAT_EQ(b.max.y, 6.0f);
    EXPECT_FLOAT_EQ(b.min.z, 0.0f);
    EXPECT_FLOAT_EQ(b.max.z, 0.0f);
}

TEST(Mesh, BoxHasFiveFaces)
{
    Mesh m = makeBox(2.0f, 3.0f, 4.0f, 1.0f);
    // 5 faces (no bottom) x 2 triangles.
    EXPECT_EQ(m.triangleCount(), 10u);
    Aabb b = m.bounds();
    EXPECT_FLOAT_EQ(b.min.y, 0.0f);
    EXPECT_FLOAT_EQ(b.max.y, 3.0f);
    EXPECT_FLOAT_EQ(b.max.x, 1.0f);
    EXPECT_FLOAT_EQ(b.max.z, 2.0f);
}

TEST(Mesh, BoxUvScalesWithSize)
{
    Mesh m = makeBox(8.0f, 2.0f, 8.0f, 0.5f);
    float max_u = 0;
    for (const auto &v : m.vertices)
        max_u = std::max(max_u, v.uv.x);
    EXPECT_FLOAT_EQ(max_u, 4.0f); // 8 units * 0.5 repeats/unit
}

TEST(Mesh, GroundGridCounts)
{
    Mesh m = makeGroundGrid(100.0f, 4, 10.0f);
    EXPECT_EQ(m.vertices.size(), 25u);
    EXPECT_EQ(m.triangleCount(), 32u);
    Aabb b = m.bounds();
    EXPECT_FLOAT_EQ(b.min.x, -50.0f);
    EXPECT_FLOAT_EQ(b.max.z, 50.0f);
}

TEST(Mesh, GroundGridClampsCells)
{
    Mesh m = makeGroundGrid(10.0f, 0, 1.0f);
    EXPECT_EQ(m.triangleCount(), 2u);
}

TEST(Mesh, GabledRoofGeometry)
{
    Mesh m = makeGabledRoof(6.0f, 4.0f, 3.0f, 5.0f, 2.0f);
    // 2 slopes x 2 triangles + 2 gable triangles.
    EXPECT_EQ(m.triangleCount(), 6u);
    Aabb b = m.bounds();
    EXPECT_FLOAT_EQ(b.min.y, 3.0f);
    EXPECT_FLOAT_EQ(b.max.y, 5.0f);
}

TEST(Mesh, AppendRebasesIndices)
{
    Mesh a = makeQuadXZ(1, 1, 1, 1);
    Mesh b = makeQuadXZ(2, 2, 1, 1);
    size_t a_verts = a.vertices.size();
    appendMesh(a, b);
    EXPECT_EQ(a.vertices.size(), 8u);
    EXPECT_EQ(a.triangleCount(), 4u);
    // Appended indices reference appended vertices.
    for (size_t i = 6; i < a.indices.size(); ++i)
        EXPECT_GE(a.indices[i], a_verts);
}

TEST(Mesh, TransformMovesBounds)
{
    Mesh m = makeQuadXZ(2, 2, 1, 1);
    transformMesh(m, Mat4::translate({10, 5, 0}));
    Aabb b = m.bounds();
    EXPECT_FLOAT_EQ(b.center().x, 10.0f);
    EXPECT_FLOAT_EQ(b.center().y, 5.0f);
}

TEST(Mesh, EmptyMeshBoundsEmpty)
{
    Mesh m;
    EXPECT_TRUE(m.bounds().empty());
    EXPECT_EQ(m.triangleCount(), 0u);
}

} // namespace
} // namespace mltc
