/**
 * @file
 * Unit + property tests for the hierarchical <tid, L2, L1> addressing
 * (paper Figure 2). These pin down the exact block numbering scheme the
 * whole simulator relies on.
 */
#include <gtest/gtest.h>

#include <set>

#include "texture/tiled_layout.hpp"
#include "util/rng.hpp"

namespace mltc {
namespace {

TEST(TileSpec, DerivedQuantities)
{
    TileSpec s{16, 4};
    EXPECT_EQ(s.l1PerL2(), 16u);
    EXPECT_EQ(s.l1TileBytes(), 64u);
    EXPECT_EQ(s.l2TileBytes(), 1024u);
}

TEST(TileSpec, EightByEightSectors)
{
    TileSpec s{32, 4};
    EXPECT_EQ(s.l1PerL2(), 64u);
    TileSpec t{16, 8};
    EXPECT_EQ(t.l1PerL2(), 4u);
}

TEST(PackBlock, RoundTrips)
{
    VirtualBlock b{1234, 0xabcdeu, 63};
    VirtualBlock u = unpackBlock(packBlock(b));
    EXPECT_EQ(u, b);
}

TEST(PackBlock, L2KeyMasksSubBlock)
{
    VirtualBlock a{7, 42, 3}, b{7, 42, 9};
    EXPECT_EQ(l2KeyOf(packBlock(a)), l2KeyOf(packBlock(b)));
    VirtualBlock c{7, 43, 3};
    EXPECT_NE(l2KeyOf(packBlock(a)), l2KeyOf(packBlock(c)));
}

TEST(TiledLayout, RejectsBadInputs)
{
    EXPECT_THROW(TiledLayout(100, 64, 3, TileSpec{16, 4}),
                 std::invalid_argument);
    EXPECT_THROW(TiledLayout(64, 64, 0, TileSpec{16, 4}),
                 std::invalid_argument);
    EXPECT_THROW(TiledLayout(64, 64, 3, TileSpec{4, 16}),
                 std::invalid_argument);
    EXPECT_THROW(TiledLayout(64, 64, 3, TileSpec{12, 4}),
                 std::invalid_argument);
}

TEST(TiledLayout, SingleLevelBlockCount)
{
    // 64x64, 16x16 tiles, 1 level -> 4x4 = 16 blocks.
    TiledLayout layout(64, 64, 1, TileSpec{16, 4});
    EXPECT_EQ(layout.totalL2Blocks(), 16u);
    EXPECT_EQ(layout.levelBase(0), 0u);
}

TEST(TiledLayout, LowestLevelOwnsBlockZero)
{
    // Full chain of a 64x64 texture: levels 64,32,16,8,4,2,1 (7 levels).
    TiledLayout layout(64, 64, 7, TileSpec{16, 4});
    // Smallest level (index 6) must start at block 0 (Figure 2: L2
    // numbering runs from the lowest MIP level upward).
    EXPECT_EQ(layout.levelBase(6), 0u);
    // Each of levels 6..2 fits in one 16x16 tile: bases 0..4.
    EXPECT_EQ(layout.levelBase(5), 1u);
    EXPECT_EQ(layout.levelBase(4), 2u);
    EXPECT_EQ(layout.levelBase(3), 3u);
    EXPECT_EQ(layout.levelBase(2), 4u);
    // Level 1 (32x32) has 4 tiles starting at 5; level 0 (64x64) has 16
    // starting at 9.
    EXPECT_EQ(layout.levelBase(1), 5u);
    EXPECT_EQ(layout.levelBase(0), 9u);
    EXPECT_EQ(layout.totalL2Blocks(), 25u);
}

TEST(TiledLayout, EachLevelStartsANewBlock)
{
    TiledLayout layout(32, 32, 6, TileSpec{16, 4});
    std::set<uint32_t> bases;
    for (uint32_t m = 0; m < 6; ++m)
        bases.insert(layout.levelBase(m));
    EXPECT_EQ(bases.size(), 6u); // all distinct
}

TEST(TiledLayout, BlockOfComputesTileCoordinates)
{
    TiledLayout layout(64, 64, 1, TileSpec{16, 4});
    // Texel (17, 33): tile (1, 2) -> block 2*4+1 = 9.
    VirtualBlock b = layout.blockOf(5, 17, 33, 0);
    EXPECT_EQ(b.tid, 5u);
    EXPECT_EQ(b.l2_block, 9u);
    // Within-tile texel (1, 1): L1 sub-tile (0, 0) -> sub-block 0.
    EXPECT_EQ(b.l1_sub, 0u);
}

TEST(TiledLayout, L1SubBlockNumbering)
{
    TiledLayout layout(16, 16, 1, TileSpec{16, 4});
    // Texel (5, 9): L1 tile (1, 2) of 4 per row -> sub 2*4+1 = 9.
    EXPECT_EQ(layout.blockOf(1, 5, 9, 0).l1_sub, 9u);
    // Corners.
    EXPECT_EQ(layout.blockOf(1, 0, 0, 0).l1_sub, 0u);
    EXPECT_EQ(layout.blockOf(1, 15, 15, 0).l1_sub, 15u);
}

TEST(TiledLayout, BlockKeyMatchesBlockOf)
{
    TiledLayout layout(128, 128, 8, TileSpec{16, 4});
    Rng rng(3);
    for (int i = 0; i < 200; ++i) {
        uint32_t m = static_cast<uint32_t>(rng.below(8));
        uint32_t w = std::max(1u, 128u >> m);
        uint32_t x = static_cast<uint32_t>(rng.below(w));
        uint32_t y = static_cast<uint32_t>(rng.below(w));
        EXPECT_EQ(layout.blockKeyOf(9, x, y, m),
                  packBlock(layout.blockOf(9, x, y, m)));
    }
}

TEST(TiledLayout, LevelSmallerThanTileOccupiesOneBlock)
{
    TiledLayout layout(8, 8, 4, TileSpec{16, 4});
    // All levels are <= 16x16 so each occupies exactly one block.
    EXPECT_EQ(layout.totalL2Blocks(), 4u);
    EXPECT_EQ(layout.blockOf(1, 7, 7, 0).l2_block, 3u);
    EXPECT_EQ(layout.blockOf(1, 0, 0, 3).l2_block, 0u);
}

TEST(TiledLayout, RectangularTextures)
{
    // 64x16 single level with 16x16 tiles -> 4x1 tiles.
    TiledLayout layout(64, 16, 1, TileSpec{16, 4});
    EXPECT_EQ(layout.totalL2Blocks(), 4u);
    EXPECT_EQ(layout.blockOf(1, 50, 10, 0).l2_block, 3u);
}

// --- Property tests -------------------------------------------------------

struct LayoutParam
{
    uint32_t size;
    uint32_t l2_tile;
    uint32_t l1_tile;
};

class TiledLayoutProperty : public ::testing::TestWithParam<LayoutParam>
{
};

/** Every (x, y, m) maps within range, and distinct L1 tiles within a
 *  level map to distinct (l2_block, l1_sub) pairs. */
TEST_P(TiledLayoutProperty, AddressingIsInjectivePerLevel)
{
    const auto p = GetParam();
    uint32_t levels = log2u(p.size) + 1;
    TiledLayout layout(p.size, p.size, levels, TileSpec{p.l2_tile, p.l1_tile});

    for (uint32_t m = 0; m < levels; ++m) {
        uint32_t dim = std::max(1u, p.size >> m);
        std::set<uint64_t> seen;
        uint32_t tiles = (dim + p.l1_tile - 1) / p.l1_tile;
        for (uint32_t ty = 0; ty < tiles; ++ty) {
            for (uint32_t tx = 0; tx < tiles; ++tx) {
                uint32_t x = std::min(tx * p.l1_tile, dim - 1);
                uint32_t y = std::min(ty * p.l1_tile, dim - 1);
                VirtualBlock b = layout.blockOf(1, x, y, m);
                EXPECT_LT(b.l2_block, layout.totalL2Blocks());
                EXPECT_LT(b.l1_sub, layout.spec().l1PerL2());
                EXPECT_TRUE(seen.insert(packBlock(b)).second)
                    << "duplicate mapping at level " << m << " tile ("
                    << tx << "," << ty << ")";
            }
        }
    }
}

/** Texels within the same L1 tile map to the same block address. */
TEST_P(TiledLayoutProperty, TexelsShareTheirTile)
{
    const auto p = GetParam();
    uint32_t levels = log2u(p.size) + 1;
    TiledLayout layout(p.size, p.size, levels, TileSpec{p.l2_tile, p.l1_tile});
    Rng rng(17);
    for (int i = 0; i < 100; ++i) {
        uint32_t m = static_cast<uint32_t>(rng.below(levels));
        uint32_t dim = std::max(1u, p.size >> m);
        uint32_t x = static_cast<uint32_t>(rng.below(dim));
        uint32_t y = static_cast<uint32_t>(rng.below(dim));
        uint64_t base = layout.blockKeyOf(1, x, y, m);
        // Tile-aligned representative of the same L1 tile.
        uint32_t ax = (x / p.l1_tile) * p.l1_tile;
        uint32_t ay = (y / p.l1_tile) * p.l1_tile;
        EXPECT_EQ(layout.blockKeyOf(1, ax, ay, m), base);
    }
}

/** Distinct levels never share L2 block numbers. */
TEST_P(TiledLayoutProperty, LevelsDisjoint)
{
    const auto p = GetParam();
    uint32_t levels = log2u(p.size) + 1;
    TiledLayout layout(p.size, p.size, levels, TileSpec{p.l2_tile, p.l1_tile});
    for (uint32_t m = 0; m + 1 < levels; ++m) {
        uint32_t dim = std::max(1u, p.size >> m);
        uint32_t last =
            layout.blockOf(1, dim - 1, dim - 1, m).l2_block;
        uint32_t next_first = layout.blockOf(1, 0, 0, m + 1).l2_block;
        // Lower-resolution levels have smaller block numbers.
        EXPECT_LT(next_first, layout.levelBase(m));
        EXPECT_LT(last, layout.totalL2Blocks());
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, TiledLayoutProperty,
    ::testing::Values(LayoutParam{64, 8, 4}, LayoutParam{64, 16, 4},
                      LayoutParam{128, 32, 4}, LayoutParam{128, 16, 8},
                      LayoutParam{256, 16, 4}, LayoutParam{256, 32, 8},
                      LayoutParam{512, 8, 8}, LayoutParam{32, 32, 4}),
    [](const ::testing::TestParamInfo<LayoutParam> &info) {
        return "s" + std::to_string(info.param.size) + "_l2t" +
               std::to_string(info.param.l2_tile) + "_l1t" +
               std::to_string(info.param.l1_tile);
    });

} // namespace
} // namespace mltc
