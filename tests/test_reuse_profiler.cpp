/**
 * @file
 * Unit tests for the single-pass reuse-distance profiler: the
 * order-statistic treap against a brute-force model, exact
 * stack-distance miss ratios against independently simulated
 * fully-associative LRU caches, SHARDS sampling error bounds,
 * coalesced-repeat accounting, working-set intervals, heatmap
 * bucketing, and snapshot round-trips (mid-stream resume
 * bit-equivalence at both tracker and whole-CacheSim level).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <list>
#include <unistd.h>
#include <unordered_map>
#include <vector>

#include "core/cache_sim.hpp"
#include "obs/reuse_profiler.hpp"
#include "texture/texture_manager.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/serializer.hpp"

namespace mltc {
namespace {

std::string
tempPath(const char *name)
{
    return testing::TempDir() + name + "." + std::to_string(getpid());
}

std::vector<uint8_t>
slurp(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr) << path;
    std::vector<uint8_t> bytes;
    int ch;
    while (f && (ch = std::fgetc(f)) != EOF)
        bytes.push_back(static_cast<uint8_t>(ch));
    if (f)
        std::fclose(f);
    return bytes;
}

// ------------------------------------------------------ OrderStatTree

TEST(OrderStatTree, MatchesBruteForceOverRandomOps)
{
    OrderStatTree tree;
    std::vector<uint64_t> live;
    Rng rng(42);
    for (int i = 0; i < 5000; ++i) {
        const int op = static_cast<int>(rng.below(3));
        if (op < 2 || live.empty()) {
            uint64_t key = rng.below(1 << 20);
            while (std::find(live.begin(), live.end(), key) != live.end())
                ++key;
            tree.insert(key);
            live.push_back(key);
        } else {
            const size_t at = static_cast<size_t>(rng.below(
                static_cast<uint64_t>(live.size())));
            tree.erase(live[at]);
            live.erase(live.begin() + static_cast<ptrdiff_t>(at));
        }
        ASSERT_EQ(tree.size(), live.size());
        if (!live.empty() && i % 16 == 0) {
            const uint64_t probe = live[live.size() / 2];
            uint64_t greater = 0;
            for (uint64_t k : live)
                if (k > probe)
                    ++greater;
            ASSERT_EQ(tree.countGreater(probe), greater) << "op " << i;
        }
    }
}

TEST(OrderStatTree, EraseOfAbsentKeyThrows)
{
    OrderStatTree tree;
    tree.insert(7);
    EXPECT_THROW(tree.erase(8), Exception);
    tree.clear();
    EXPECT_EQ(tree.size(), 0u);
}

// ------------------------------------------------ ReuseDistanceTracker

/** Plain fully-associative LRU simulated with a list, for reference. */
uint64_t
lruMisses(const std::vector<uint64_t> &stream, size_t capacity)
{
    std::list<uint64_t> order;
    std::unordered_map<uint64_t, std::list<uint64_t>::iterator> where;
    uint64_t misses = 0;
    for (uint64_t key : stream) {
        auto it = where.find(key);
        if (it != where.end()) {
            order.splice(order.begin(), order, it->second);
            continue;
        }
        ++misses;
        order.push_front(key);
        where[key] = order.begin();
        if (order.size() > capacity) {
            where.erase(order.back());
            order.pop_back();
        }
    }
    return misses;
}

std::vector<uint64_t>
skewedStream(uint64_t seed, size_t n)
{
    Rng rng(seed);
    std::vector<uint64_t> stream;
    stream.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        // Hot set, looping sweep and cold tail — all three stack shapes.
        const uint64_t pick = rng.below(10);
        if (pick < 5)
            stream.push_back(rng.below(24));
        else if (pick < 8)
            stream.push_back(1000 + (i % 300));
        else
            stream.push_back(10000 + rng.below(50000));
    }
    return stream;
}

TEST(ReuseDistanceTracker, ExactMissRatiosMatchSimulatedLru)
{
    const std::vector<uint64_t> stream = skewedStream(7, 30000);
    ReuseDistanceTracker t(1.0);
    for (uint64_t key : stream)
        t.record(key);
    EXPECT_EQ(t.totalAccesses(), stream.size());
    for (size_t capacity : {1u, 2u, 8u, 32u, 128u, 512u}) {
        const double predicted = t.missRatio(capacity);
        const double simulated =
            static_cast<double>(lruMisses(stream, capacity)) /
            static_cast<double>(stream.size());
        EXPECT_NEAR(predicted, simulated, 1e-12) << "capacity " << capacity;
    }
    // Curve covers the whole distinct set and ends at the cold ratio.
    const auto curve = t.curve();
    ASSERT_FALSE(curve.empty());
    EXPECT_GE(curve.back().capacity_units, t.distinctUnits());
    EXPECT_NEAR(curve.back().miss_ratio,
                static_cast<double>(t.coldAccesses()) /
                    static_cast<double>(t.totalAccesses()),
                1e-12);
    // Monotone non-increasing in capacity.
    for (size_t i = 1; i < curve.size(); ++i)
        EXPECT_LE(curve[i].miss_ratio, curve[i - 1].miss_ratio + 1e-12);
}

TEST(ReuseDistanceTracker, RepeatsEnterDenominatorAsGuaranteedHits)
{
    ReuseDistanceTracker t(1.0);
    t.record(1);
    t.record(2);
    t.record(1);
    t.addRepeats(7); // distance-zero accesses: hits at any capacity >= 1
    EXPECT_EQ(t.totalAccesses(), 10u);
    // Capacity 1: the 1,2,1 stream misses all three times; repeats hit.
    EXPECT_NEAR(t.missRatio(1), 3.0 / 10.0, 1e-12);
    EXPECT_NEAR(t.missRatio(2), 2.0 / 10.0, 1e-12);
    EXPECT_NEAR(t.missRatio(0), 1.0, 1e-12);
}

TEST(ReuseDistanceTracker, ShardsSamplingApproximatesExactCurve)
{
    // Spatial sampling needs a wide key population: with only a handful
    // of hot keys the estimator's variance is huge by construction. Use
    // a stream whose hot set alone has thousands of keys.
    std::vector<uint64_t> stream;
    Rng rng(99);
    stream.reserve(120000);
    for (size_t i = 0; i < 120000; ++i) {
        const uint64_t pick = rng.below(10);
        if (pick < 5)
            stream.push_back(rng.below(4000));
        else if (pick < 8)
            stream.push_back(100000 + (i % 8000));
        else
            stream.push_back(1000000 + rng.below(200000));
    }
    ReuseDistanceTracker exact(1.0);
    ReuseDistanceTracker sampled(0.25);
    for (uint64_t key : stream) {
        exact.record(key);
        sampled.record(key);
    }
    // Totals are estimates scaled by 1/rate; distinct units likewise.
    EXPECT_NEAR(static_cast<double>(sampled.totalAccesses()),
                static_cast<double>(exact.totalAccesses()),
                0.1 * static_cast<double>(exact.totalAccesses()));
    for (size_t capacity : {8u, 64u, 512u}) {
        EXPECT_NEAR(sampled.missRatio(capacity), exact.missRatio(capacity),
                    0.05)
            << "capacity " << capacity;
    }
    // The sampled tracker holds roughly rate * distinct keys.
    EXPECT_LT(sampled.trackedUnits(), exact.trackedUnits());
}

TEST(ReuseDistanceTracker, IntervalRowsCountDistinctAndCold)
{
    ReuseDistanceTracker t(1.0);
    t.record(1);
    t.record(2);
    t.record(1);
    t.addRepeats(3);
    const WorkingSetRow a = t.closeInterval(0, 4);
    EXPECT_EQ(a.frame_begin, 0u);
    EXPECT_EQ(a.frame_end, 4u);
    EXPECT_EQ(a.accesses, 6u);       // 3 recorded + 3 repeats
    EXPECT_EQ(a.distinct_units, 2u); // keys 1, 2
    EXPECT_EQ(a.cold_units, 2u);     // both first-ever touches

    t.record(1); // seen before, but first touch in THIS interval
    t.record(9); // never seen
    const WorkingSetRow b = t.peekInterval(4, 8);
    EXPECT_EQ(b.accesses, 2u);
    EXPECT_EQ(b.distinct_units, 2u);
    EXPECT_EQ(b.cold_units, 1u);
    // peek must not close: closing now returns the same row.
    const WorkingSetRow c = t.closeInterval(4, 8);
    EXPECT_EQ(c.distinct_units, b.distinct_units);
    EXPECT_EQ(c.cold_units, b.cold_units);
}

TEST(ReuseDistanceTracker, SaveLoadResumeIsBitEquivalent)
{
    const std::vector<uint64_t> stream = skewedStream(5, 20000);
    const std::string path = tempPath("tracker.snap");

    ReuseDistanceTracker straight(1.0);
    for (uint64_t key : stream)
        straight.record(key);

    ReuseDistanceTracker first(1.0);
    const size_t mid = stream.size() / 2;
    for (size_t i = 0; i < mid; ++i)
        first.record(stream[i]);
    {
        SnapshotWriter w(path);
        first.save(w);
        w.finish();
    }
    ReuseDistanceTracker resumed(1.0);
    {
        SnapshotReader r(path);
        resumed.load(r);
        r.expectEnd();
    }
    for (size_t i = mid; i < stream.size(); ++i)
        resumed.record(stream[i]);

    const std::string pa = tempPath("tracker_a.snap");
    const std::string pb = tempPath("tracker_b.snap");
    {
        SnapshotWriter wa(pa);
        straight.save(wa);
        wa.finish();
        SnapshotWriter wb(pb);
        resumed.save(wb);
        wb.finish();
    }
    EXPECT_EQ(slurp(pa), slurp(pb))
        << "straight and resumed tracker snapshots differ";
    for (size_t capacity : {4u, 64u, 1024u})
        EXPECT_EQ(straight.missRatio(capacity), resumed.missRatio(capacity));
    std::remove(path.c_str());
    std::remove(pa.c_str());
    std::remove(pb.c_str());
}

TEST(ReuseDistanceTracker, LoadRejectsSampleRateSkew)
{
    const std::string path = tempPath("tracker_skew.snap");
    ReuseDistanceTracker a(1.0);
    a.record(1);
    {
        SnapshotWriter w(path);
        a.save(w);
        w.finish();
    }
    ReuseDistanceTracker b(0.5);
    SnapshotReader r(path);
    try {
        b.load(r);
        FAIL() << "sample-rate skew must be rejected";
    } catch (const Exception &e) {
        EXPECT_EQ(e.code(), ErrorCode::VersionMismatch);
    }
    std::remove(path.c_str());
}

// --------------------------------------------------------- ReuseProfiler

ReuseProfilerConfig
profilerConfig()
{
    ReuseProfilerConfig cfg;
    cfg.enabled = true;
    cfg.interval_frames = 2;
    cfg.screen_width = 64;
    cfg.screen_height = 32;
    cfg.tex_granule = 16;
    return cfg;
}

TEST(ReuseProfiler, HeatmapsBucketAccessesAndMisses)
{
    ReuseProfiler p(profilerConfig());
    p.bindTexture(3, 64, 64); // 4x4 grid at granule 16
    p.beginPixel(5, 7);
    p.onL1Access(100, /*l1_hit=*/false, 0, 0, 0);  // cell (0,0), miss
    p.onL1Access(100, /*l1_hit=*/true, 17, 0, 0);  // cell (1,0), hit
    p.onL1Access(101, /*l1_hit=*/false, 8, 8, 1);  // mip 1 folds to (1,1)
    p.onL2Sector(900, /*full_hit=*/false, 0, 0, 0);
    p.endFrame(5);

    const auto &grids = p.textureGrids();
    ASSERT_EQ(grids.size(), 1u);
    const HeatmapGrid &g = grids.at(3);
    ASSERT_EQ(g.width, 4u);
    ASSERT_EQ(g.height, 4u);
    EXPECT_EQ(g.accesses[0], 1u);
    EXPECT_EQ(g.misses[0], 1u);
    EXPECT_EQ(g.accesses[1], 1u);
    EXPECT_EQ(g.misses[1], 0u);
    EXPECT_EQ(g.accesses[4 * 1 + 1], 1u); // mip-folded cell (1,1)

    // Screen: L1 misses land in accesses[], L2 misses in misses[].
    const HeatmapGrid &s = p.screenGrid();
    ASSERT_EQ(s.width, 64u);
    EXPECT_EQ(s.accesses[7 * 64 + 5], 2u); // two L1 misses at (5,7)
    EXPECT_EQ(s.misses[7 * 64 + 5], 1u);   // one L2 full miss
    EXPECT_TRUE(p.hasL2Stream());

    // Repeat accounting: 5 frame accesses - 3 recorded = 2 repeats.
    EXPECT_EQ(p.l1().totalAccesses(), 5u);
}

TEST(ReuseProfiler, SpectrumRowsIncludeOpenTail)
{
    ReuseProfiler p(profilerConfig()); // interval = 2 frames
    p.bindTexture(1, 32, 32);
    p.onL1Access(1, false, 0, 0, 0);
    p.endFrame(1);
    // One frame done, interval still open: workingSet is empty but the
    // exports see the partial row.
    EXPECT_TRUE(p.workingSet(false).empty());
    const auto rows = p.spectrumRows(false);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].frame_begin, 0u);
    EXPECT_EQ(rows[0].frame_end, 1u);
    EXPECT_EQ(rows[0].accesses, 1u);

    p.onL1Access(2, false, 0, 0, 0);
    p.endFrame(1);
    // Interval closed at frame 2: one closed row, no tail.
    ASSERT_EQ(p.workingSet(false).size(), 1u);
    EXPECT_EQ(p.spectrumRows(false).size(), 1u);
    EXPECT_EQ(p.workingSet(false)[0].distinct_units, 2u);
}

TEST(ReuseProfiler, SaveLoadResumeIsBitEquivalent)
{
    const std::string path = tempPath("profiler.snap");
    Rng rng(11);
    const auto drive = [&](ReuseProfiler &p, uint64_t seed, int frames) {
        Rng local(seed);
        for (int f = 0; f < frames; ++f) {
            p.bindTexture(1 + static_cast<uint32_t>(local.below(2)), 64,
                          64);
            uint64_t accesses = 0;
            for (int i = 0; i < 200; ++i) {
                p.beginPixel(static_cast<uint32_t>(local.below(64)),
                             static_cast<uint32_t>(local.below(32)));
                const uint64_t key = local.below(40);
                p.onL1Access(key, local.below(4) != 0,
                             static_cast<uint32_t>(local.below(64)),
                             static_cast<uint32_t>(local.below(64)),
                             static_cast<uint32_t>(local.below(2)));
                ++accesses;
                if (local.below(3) == 0) {
                    p.onL2Sector(500 + local.below(12), local.below(2) == 0,
                                 0, 0, 0);
                }
            }
            p.endFrame(accesses + 17); // 17 coalesced repeats per frame
        }
    };

    ReuseProfiler straight(profilerConfig());
    drive(straight, 1, 4);
    drive(straight, 2, 4);

    ReuseProfiler first(profilerConfig());
    drive(first, 1, 4);
    {
        SnapshotWriter w(path);
        first.save(w);
        w.finish();
    }
    ReuseProfiler resumed(profilerConfig());
    {
        SnapshotReader r(path);
        resumed.load(r);
        r.expectEnd();
    }
    drive(resumed, 2, 4);

    const std::string pa = tempPath("profiler_a.snap");
    const std::string pb = tempPath("profiler_b.snap");
    {
        SnapshotWriter wa(pa);
        straight.save(wa);
        wa.finish();
        SnapshotWriter wb(pb);
        resumed.save(wb);
        wb.finish();
    }
    EXPECT_EQ(slurp(pa), slurp(pb))
        << "straight and resumed profiler snapshots differ";
    EXPECT_EQ(straight.asciiMrc(), resumed.asciiMrc());
    std::remove(path.c_str());
    std::remove(pa.c_str());
    std::remove(pb.c_str());
}

TEST(ReuseProfiler, LoadRejectsConfigSkew)
{
    const std::string path = tempPath("profiler_skew.snap");
    ReuseProfiler a(profilerConfig());
    a.bindTexture(1, 32, 32);
    a.onL1Access(1, false, 0, 0, 0);
    a.endFrame(1);
    {
        SnapshotWriter w(path);
        a.save(w);
        w.finish();
    }
    ReuseProfilerConfig other = profilerConfig();
    other.interval_frames = 9;
    ReuseProfiler b(other);
    SnapshotReader r(path);
    try {
        b.load(r);
        FAIL() << "config skew must be rejected";
    } catch (const Exception &e) {
        EXPECT_EQ(e.code(), ErrorCode::VersionMismatch);
    }
    std::remove(path.c_str());
}

// ------------------------------------------- CacheSim integration

/** A tiny two-texture registry for CacheSim-level tests. */
std::unique_ptr<TextureManager>
smallTextures()
{
    auto tm = std::make_unique<TextureManager>();
    tm->load("a", MipPyramid(Image(64, 64)));
    tm->load("b", MipPyramid(Image(64, 64)));
    return tm;
}

TEST(ReuseProfilerCacheSim, SnapshotRoundTripsThroughCacheSim)
{
    auto textures = smallTextures();
    const std::string path = tempPath("sim_profiler.snap");
    CacheSimConfig sc = CacheSimConfig::twoLevel(1024, 1ull << 18);

    const auto drive = [](CacheSim &sim, uint32_t seed, int frames) {
        Rng rng(seed);
        for (int f = 0; f < frames; ++f) {
            for (int i = 0; i < 400; ++i) {
                sim.bindTexture(1 + static_cast<TextureId>(rng.below(2)));
                sim.beginPixel(static_cast<uint32_t>(rng.below(64)),
                               static_cast<uint32_t>(rng.below(64)));
                // Coords < 32 stay in range at both swept MIP levels.
                sim.access(static_cast<uint32_t>(rng.below(32)),
                           static_cast<uint32_t>(rng.below(32)),
                           static_cast<uint32_t>(rng.below(2)));
            }
            sim.endFrame();
        }
    };

    ReuseProfilerConfig pc = profilerConfig();

    CacheSim straight(*textures, sc, "straight");
    ReuseProfiler p_straight(pc);
    straight.setReuseProfiler(&p_straight);
    drive(straight, 1, 3);
    drive(straight, 2, 3);

    CacheSim first(*textures, sc, "first");
    ReuseProfiler p_first(pc);
    first.setReuseProfiler(&p_first);
    drive(first, 1, 3);
    {
        SnapshotWriter w(path);
        first.save(w);
        w.finish();
    }
    CacheSim resumed(*textures, sc, "resumed");
    ReuseProfiler p_resumed(pc);
    resumed.setReuseProfiler(&p_resumed);
    {
        SnapshotReader r(path);
        resumed.load(r);
        r.expectEnd();
    }
    drive(resumed, 2, 3);

    EXPECT_EQ(p_straight.asciiMrc(), p_resumed.asciiMrc());
    EXPECT_EQ(p_straight.l1().totalAccesses(),
              p_resumed.l1().totalAccesses());
    EXPECT_EQ(p_straight.frames(), p_resumed.frames());
    EXPECT_EQ(straight.totals().accesses, resumed.totals().accesses);

    const std::string pa = tempPath("sim_profiler_a.snap");
    const std::string pb = tempPath("sim_profiler_b.snap");
    {
        SnapshotWriter wa(pa);
        straight.save(wa);
        wa.finish();
        SnapshotWriter wb(pb);
        resumed.save(wb);
        wb.finish();
    }
    EXPECT_EQ(slurp(pa), slurp(pb))
        << "straight and resumed CacheSim+profiler snapshots differ";
    std::remove(path.c_str());
    std::remove(pa.c_str());
    std::remove(pb.c_str());
}

TEST(ReuseProfilerCacheSim, LoadWithoutProfilerRejectsProfiledSnapshot)
{
    auto textures = smallTextures();
    const std::string path = tempPath("sim_profiler_flags.snap");
    CacheSimConfig sc = CacheSimConfig::pull(1024);

    CacheSim a(*textures, sc, "with");
    ReuseProfiler p(profilerConfig());
    a.setReuseProfiler(&p);
    a.bindTexture(1);
    a.access(0, 0, 0);
    a.endFrame();
    {
        SnapshotWriter w(path);
        a.save(w);
        w.finish();
    }
    CacheSim b(*textures, sc, "without");
    SnapshotReader r(path);
    try {
        b.load(r);
        FAIL() << "profiled snapshot must not load into a bare sim";
    } catch (const Exception &e) {
        EXPECT_EQ(e.code(), ErrorCode::VersionMismatch);
    }
    std::remove(path.c_str());
}

TEST(ReuseProfilerCacheSim, PredictsFullyAssociativeSweepExactly)
{
    auto textures = smallTextures();
    // One reference stream, recorded as raw (x, y, mip) triples so it
    // can be replayed into every simulator identically.
    struct Ref
    {
        TextureId tid;
        uint32_t x, y, mip;
    };
    std::vector<Ref> refs;
    Rng rng(31);
    for (int i = 0; i < 30000; ++i)
        refs.push_back({1 + static_cast<TextureId>(rng.below(2)),
                        static_cast<uint32_t>(rng.below(32)),
                        static_cast<uint32_t>(rng.below(32)),
                        static_cast<uint32_t>(rng.below(2))});

    const auto replay = [&](CacheSim &sim) {
        for (const Ref &ref : refs) {
            sim.bindTexture(ref.tid);
            sim.access(ref.x, ref.y, ref.mip);
        }
        sim.endFrame();
    };

    CacheSimConfig profiled_cfg = CacheSimConfig::pull(2 * 1024);
    CacheSim profiled(*textures, profiled_cfg, "profiled");
    ReuseProfilerConfig pc;
    pc.enabled = true;
    ReuseProfiler profiler(pc);
    profiled.setReuseProfiler(&profiler);
    replay(profiled);

    for (uint64_t lines : {4u, 16u, 64u}) {
        CacheSimConfig sc =
            CacheSimConfig::pull(lines * profiled_cfg.l1.lineBytes());
        sc.l1.assoc = 0; // fully associative true-LRU
        CacheSim swept(*textures, sc, "swept");
        replay(swept);
        const double measured =
            static_cast<double>(swept.totals().l1_misses) /
            static_cast<double>(swept.totals().accesses);
        EXPECT_NEAR(profiler.l1().missRatio(lines), measured, 1e-12)
            << lines << " lines";
    }
}

} // namespace
} // namespace mltc
