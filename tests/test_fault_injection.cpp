/**
 * @file
 * Tests for the fallible host-memory path: deterministic fault
 * scenarios, retry/backoff mechanics, and CacheSim's graceful
 * degradation to a coarser resident MIP level on retry exhaustion.
 */
#include <gtest/gtest.h>

#include "core/cache_sim.hpp"
#include "host/host_backend.hpp"
#include "util/rng.hpp"

namespace mltc {
namespace {

/** Field-by-field equality of two frame-stat snapshots. */
void
expectStatsEqual(const CacheFrameStats &a, const CacheFrameStats &b)
{
    EXPECT_EQ(a.accesses, b.accesses);
    EXPECT_EQ(a.l1_misses, b.l1_misses);
    EXPECT_EQ(a.l2_full_hits, b.l2_full_hits);
    EXPECT_EQ(a.l2_partial_hits, b.l2_partial_hits);
    EXPECT_EQ(a.l2_full_misses, b.l2_full_misses);
    EXPECT_EQ(a.host_bytes, b.host_bytes);
    EXPECT_EQ(a.l2_read_bytes, b.l2_read_bytes);
    EXPECT_EQ(a.tlb_probes, b.tlb_probes);
    EXPECT_EQ(a.tlb_hits, b.tlb_hits);
    EXPECT_EQ(a.host_retries, b.host_retries);
    EXPECT_EQ(a.host_failures, b.host_failures);
    EXPECT_EQ(a.degraded_accesses, b.degraded_accesses);
    EXPECT_EQ(a.degraded_mip_bias, b.degraded_mip_bias);
}

TEST(FaultInjector, SameSeedSameScenario)
{
    FaultConfig cfg;
    cfg.seed = 7;
    cfg.drop_rate = 0.2;
    cfg.corrupt_rate = 0.1;
    cfg.spike_rate = 0.1;
    FaultInjector a(cfg), b(cfg);
    for (int i = 0; i < 10000; ++i) {
        FaultDecision da = a.decide();
        FaultDecision db = b.decide();
        EXPECT_EQ(da.kind, db.kind);
        EXPECT_EQ(da.latency_us, db.latency_us);
    }
    EXPECT_EQ(a.stats().drops, b.stats().drops);
    EXPECT_GT(a.stats().drops, 0u);
    EXPECT_GT(a.stats().corruptions, 0u);
    EXPECT_GT(a.stats().spikes, 0u);
}

TEST(FaultInjector, DifferentSeedsDiverge)
{
    FaultConfig cfg;
    cfg.drop_rate = 0.5;
    cfg.seed = 1;
    FaultInjector a(cfg);
    cfg.seed = 2;
    FaultInjector b(cfg);
    int diverged = 0;
    for (int i = 0; i < 1000; ++i)
        diverged += a.decide().kind != b.decide().kind;
    EXPECT_GT(diverged, 0);
}

TEST(FaultInjector, BurstWindowFailsTailOfEachPeriod)
{
    FaultConfig cfg;
    cfg.burst_period = 10;
    cfg.burst_length = 3;
    FaultInjector inj(cfg);
    for (int period = 0; period < 5; ++period)
        for (uint32_t i = 0; i < 10; ++i) {
            FaultDecision d = inj.decide();
            if (i >= 7)
                EXPECT_EQ(d.kind, FaultKind::BurstOutage);
            else
                EXPECT_EQ(d.kind, FaultKind::None);
        }
    EXPECT_EQ(inj.stats().burst_failures, 15u);
}

TEST(FaultInjector, ZeroRatesNeverFault)
{
    FaultInjector inj(FaultConfig{});
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(inj.decide().kind, FaultKind::None);
}

TEST(RetryPolicy, BackoffIsBoundedExponential)
{
    RetryConfig cfg;
    cfg.base_backoff_us = 20;
    cfg.backoff_multiplier = 2.0;
    cfg.max_backoff_us = 100;
    RetryPolicy p(cfg);
    EXPECT_EQ(p.backoffAfter(1), 20u);
    EXPECT_EQ(p.backoffAfter(2), 40u);
    EXPECT_EQ(p.backoffAfter(3), 80u);
    EXPECT_EQ(p.backoffAfter(4), 100u); // capped
    EXPECT_EQ(p.backoffAfter(20), 100u);
}

/** Scripted backend: fails the first N attempts, then succeeds. */
class FlakyBackend final : public HostMemoryBackend
{
  public:
    explicit FlakyBackend(uint32_t failures,
                          HostTransferStatus failure_status =
                              HostTransferStatus::Dropped)
        : failures_(failures), failure_status_(failure_status)
    {
    }

    HostTransfer
    transfer(const HostRequest &) override
    {
        if (seen_++ < failures_)
            return {failure_status_, 10};
        return {HostTransferStatus::Ok, 10};
    }

  private:
    uint32_t failures_;
    HostTransferStatus failure_status_;
    uint32_t seen_ = 0;
};

TEST(HostFetchPath, RetriesUntilSuccess)
{
    RetryConfig cfg;
    cfg.max_attempts = 4;
    HostFetchPath path(std::make_unique<FlakyBackend>(2), cfg);
    HostFetchResult r = path.fetch({5, 64});
    EXPECT_TRUE(r.success);
    EXPECT_EQ(r.attempts, 3u);
    EXPECT_EQ(r.retries, 2u);
    EXPECT_EQ(path.stats().retries, 2u);
    EXPECT_EQ(path.stats().failures, 0u);
}

TEST(HostFetchPath, ExhaustionYieldsTypedError)
{
    RetryConfig cfg;
    cfg.max_attempts = 3;
    HostFetchPath path(std::make_unique<FlakyBackend>(100), cfg);
    HostFetchResult r = path.fetch({9, 64});
    EXPECT_FALSE(r.success);
    EXPECT_EQ(r.attempts, 3u);
    EXPECT_EQ(r.error.code, ErrorCode::RetryExhausted);
    EXPECT_NE(r.error.message.find("t_index 9"), std::string::npos);
    EXPECT_EQ(path.stats().failures, 1u);
}

TEST(HostFetchPath, CorruptTransfersAreRetriedAndCounted)
{
    RetryConfig cfg;
    cfg.max_attempts = 4;
    HostFetchPath path(std::make_unique<FlakyBackend>(
                           2, HostTransferStatus::Corrupt),
                       cfg);
    HostFetchResult r = path.fetch({0, 64});
    EXPECT_TRUE(r.success);
    EXPECT_EQ(r.corrupt_transfers, 2u);
}

TEST(HostFetchPath, SlowAttemptsTimeOutAndRetry)
{
    /** Always succeeds, but far over the per-attempt timeout. */
    class SlowBackend final : public HostMemoryBackend
    {
      public:
        HostTransfer
        transfer(const HostRequest &) override
        {
            return {HostTransferStatus::Ok, 500};
        }
    };
    RetryConfig cfg;
    cfg.max_attempts = 3;
    cfg.attempt_timeout_us = 200;
    cfg.request_budget_us = 100000;
    HostFetchPath path(std::make_unique<SlowBackend>(), cfg);
    HostFetchResult r = path.fetch({0, 64});
    EXPECT_FALSE(r.success);
    EXPECT_EQ(r.attempts, 3u);
    EXPECT_EQ(path.stats().timeouts, 3u);
}

TEST(HostFetchPath, BudgetStopsRetriesEarly)
{
    RetryConfig cfg;
    cfg.max_attempts = 100;
    cfg.base_backoff_us = 1000;
    cfg.max_backoff_us = 1000;
    cfg.request_budget_us = 2500; // fits ~2 attempts + 1-2 backoffs
    HostFetchPath path(std::make_unique<FlakyBackend>(1000), cfg);
    HostFetchResult r = path.fetch({0, 64});
    EXPECT_FALSE(r.success);
    EXPECT_LT(r.attempts, 5u);
    EXPECT_LE(r.elapsed_us, cfg.request_budget_us + cfg.max_backoff_us);
}

class FaultSimTest : public ::testing::Test
{
  protected:
    FaultSimTest() { tex = tm.load("t", MipPyramid(Image(256, 256))); }

    /** Two-level config with the given fault scenario enabled. */
    static CacheSimConfig
    faultyConfig(double drop, uint64_t seed = 42)
    {
        CacheSimConfig cfg = CacheSimConfig::twoLevel(2 * 1024, 1ull << 20);
        cfg.host.fault_injection = true;
        cfg.host.faults.seed = seed;
        cfg.host.faults.drop_rate = drop;
        return cfg;
    }

    /** Pseudo-random multi-MIP access stream. */
    void
    stream(CacheSim &sim, uint64_t seed, int n)
    {
        Rng rng(seed);
        sim.bindTexture(tex);
        for (int i = 0; i < n; ++i) {
            uint32_t m = static_cast<uint32_t>(rng.below(3));
            uint32_t dim = 256u >> m;
            sim.access(static_cast<uint32_t>(rng.below(dim)),
                       static_cast<uint32_t>(rng.below(dim)), m);
        }
    }

    TextureManager tm;
    TextureId tex;
};

TEST_F(FaultSimTest, ZeroRateScenarioMatchesDisabledPath)
{
    // Fault injection enabled with an all-zero scenario must not
    // perturb a single counter relative to the seed (disabled) path.
    CacheSim plain(tm, CacheSimConfig::twoLevel(2 * 1024, 1ull << 20),
                   "plain");
    CacheSim faulty(tm, faultyConfig(0.0), "faulty");
    stream(plain, 99, 20000);
    stream(faulty, 99, 20000);
    CacheFrameStats a = plain.endFrame();
    CacheFrameStats b = faulty.endFrame();
    expectStatsEqual(a, b);
    EXPECT_EQ(b.host_retries, 0u);
    EXPECT_EQ(b.host_failures, 0u);
    EXPECT_EQ(b.degraded_accesses, 0u);
}

TEST_F(FaultSimTest, SeededScenarioReplaysIdentically)
{
    CacheFrameStats runs[2];
    for (int run = 0; run < 2; ++run) {
        CacheSimConfig cfg = faultyConfig(0.3, 7);
        cfg.host.faults.corrupt_rate = 0.1;
        cfg.host.faults.spike_rate = 0.05;
        CacheSim sim(tm, cfg, "det");
        stream(sim, 5, 30000);
        sim.endFrame();
        stream(sim, 6, 30000);
        sim.endFrame();
        runs[run] = sim.totals();
    }
    expectStatsEqual(runs[0], runs[1]);
    EXPECT_GT(runs[0].host_retries, 0u);
    EXPECT_GT(runs[0].host_failures, 0u);
}

TEST_F(FaultSimTest, ExhaustionDegradesToResidentCoarserMip)
{
    CacheSim sim(tm, faultyConfig(0.0), "degrade");
    sim.bindTexture(tex);
    // Warm MIP level 1 so its block is sector-valid in the L2.
    sim.access(4, 4, 1);
    ASSERT_EQ(sim.endFrame().host_failures, 0u);

    // Now make every transfer fail and touch the corresponding finer
    // texel: (8..11, 8..11, mip 0) maps onto (4.., 4.., mip 1).
    ASSERT_NE(sim.faultInjector(), nullptr);
    FaultConfig fail = sim.faultInjector()->config();
    fail.drop_rate = 1.0;
    sim.faultInjector()->reconfigure(fail);

    sim.access(8, 8, 0);
    CacheFrameStats fs = sim.endFrame();
    EXPECT_EQ(fs.host_failures, 1u);
    EXPECT_EQ(fs.degraded_accesses, 1u);
    EXPECT_EQ(fs.degraded_mip_bias, 1u); // landed exactly one level up
    EXPECT_EQ(fs.l2_full_hits + fs.l2_partial_hits + fs.l2_full_misses, 0u);
    EXPECT_EQ(fs.host_bytes, 0u); // nothing crossed the bus
}

TEST_F(FaultSimTest, NothingResidentCountsHardFailure)
{
    CacheSim sim(tm, faultyConfig(1.0), "hard");
    sim.bindTexture(tex);
    sim.access(0, 0, 0);
    CacheFrameStats fs = sim.endFrame();
    EXPECT_EQ(fs.host_failures, 1u);
    EXPECT_EQ(fs.degraded_accesses, 0u); // cold caches: no fallback
    EXPECT_EQ(fs.degraded_mip_bias, 0u);
    // max_attempts (default 4) => 3 retries for the one request.
    EXPECT_EQ(fs.host_retries, 3u);
}

TEST_F(FaultSimTest, PullArchitectureDegradesViaL1)
{
    CacheSimConfig cfg = CacheSimConfig::pull(16 * 1024);
    cfg.host.fault_injection = true;
    cfg.host.faults.seed = 3;
    CacheSim sim(tm, cfg, "pull-degrade");
    sim.bindTexture(tex);
    sim.access(4, 4, 2); // coarse tile lands in L1
    sim.endFrame();

    FaultConfig fail = sim.faultInjector()->config();
    fail.drop_rate = 1.0;
    sim.faultInjector()->reconfigure(fail);
    sim.access(8, 8, 1); // (8,8,1) >> 1 = (4,4,2): resident in L1
    CacheFrameStats fs = sim.endFrame();
    EXPECT_EQ(fs.host_failures, 1u);
    EXPECT_EQ(fs.degraded_accesses, 1u);
    EXPECT_EQ(fs.degraded_mip_bias, 1u);
}

TEST_F(FaultSimTest, DegradedRepeatHitsOnChip)
{
    CacheSim sim(tm, faultyConfig(0.0), "repeat");
    sim.bindTexture(tex);
    sim.access(4, 4, 1);
    sim.endFrame();
    FaultConfig fail = sim.faultInjector()->config();
    fail.drop_rate = 1.0;
    sim.faultInjector()->reconfigure(fail);

    sim.access(8, 8, 0);
    CacheFrameStats first = sim.endFrame();
    EXPECT_EQ(first.degraded_accesses, 1u);
    // The coarse tile was parked in L1: replaying the same quad region
    // must not re-degrade (coalescing) nor touch the host.
    sim.access(8, 8, 0);
    CacheFrameStats again = sim.endFrame();
    EXPECT_EQ(again.host_failures, 0u);
    EXPECT_EQ(again.host_bytes, 0u);
}

TEST_F(FaultSimTest, DisabledPathHasNoHostMachinery)
{
    CacheSim sim(tm, CacheSimConfig::twoLevel(2 * 1024, 1ull << 20), "x");
    EXPECT_EQ(sim.hostPath(), nullptr);
    EXPECT_EQ(sim.faultInjector(), nullptr);
}

TEST_F(FaultSimTest, CorruptTransfersBurnBandwidth)
{
    CacheSimConfig cfg = faultyConfig(0.0, 11);
    cfg.host.faults.corrupt_rate = 0.5;
    CacheSim faulty(tm, cfg, "corrupt");
    CacheSim plain(tm, CacheSimConfig::twoLevel(2 * 1024, 1ull << 20),
                   "plain");
    stream(faulty, 21, 20000);
    stream(plain, 21, 20000);
    CacheFrameStats a = faulty.endFrame();
    CacheFrameStats b = plain.endFrame();
    // Corrupted payloads cross the bus before being discarded, so the
    // faulty channel costs strictly more host traffic for the same
    // access stream (every eventual success still downloads its bytes).
    EXPECT_GT(a.host_bytes, b.host_bytes);
    EXPECT_GT(a.host_retries, 0u);
}

TEST_F(FaultSimTest, FrameStatsAddAccumulatesHostCounters)
{
    CacheFrameStats a, b;
    a.host_retries = 3;
    a.host_failures = 1;
    a.degraded_accesses = 1;
    a.degraded_mip_bias = 2;
    b.host_retries = 7;
    b.host_failures = 2;
    b.degraded_accesses = 2;
    b.degraded_mip_bias = 3;
    a.add(b);
    EXPECT_EQ(a.host_retries, 10u);
    EXPECT_EQ(a.host_failures, 3u);
    EXPECT_EQ(a.degraded_accesses, 3u);
    EXPECT_EQ(a.degraded_mip_bias, 5u);
    EXPECT_DOUBLE_EQ(a.meanDegradedMipBias(), 5.0 / 3.0);
}

} // namespace
} // namespace mltc
