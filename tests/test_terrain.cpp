/**
 * @file
 * Tests for the Terrain extension workload and its registry entry.
 */
#include <gtest/gtest.h>

#include "sim/multi_config_runner.hpp"
#include "workload/registry.hpp"
#include "workload/terrain.hpp"

namespace mltc {
namespace {

TerrainParams
tinyParams()
{
    TerrainParams p;
    p.grid = 12;
    p.rocks = 4;
    p.satellite_texture_size = 256;
    p.extent = 400.0f;
    return p;
}

TEST(Terrain, RegisteredAsExtensionOnly)
{
    auto paper = workloadNames();
    EXPECT_EQ(paper.size(), 2u); // paper benches must not pick it up
    auto all = allWorkloadNames();
    ASSERT_EQ(all.size(), 3u);
    EXPECT_EQ(all[2], "terrain");
    Workload wl = buildWorkload("terrain");
    EXPECT_EQ(wl.name, "terrain");
}

TEST(Terrain, DeterministicInSeed)
{
    Workload a = buildTerrain(tinyParams());
    Workload b = buildTerrain(tinyParams());
    EXPECT_EQ(a.scene.objects().size(), b.scene.objects().size());
    EXPECT_EQ(a.textures->totalHostBytes(), b.textures->totalHostBytes());
}

TEST(Terrain, HeightfieldIsDisplaced)
{
    Workload wl = buildTerrain(tinyParams());
    const SceneObject &terrain = wl.scene.objects()[0];
    EXPECT_EQ(terrain.name, "terrain");
    Aabb b = terrain.world_bounds;
    // Hills rise and valleys dip: a real height range.
    EXPECT_GT(b.max.y - b.min.y, 10.0f);
}

TEST(Terrain, SatelliteTextureMappedOnce)
{
    Workload wl = buildTerrain(tinyParams());
    const Mesh &mesh = *wl.scene.objects()[0].mesh;
    float max_uv = 0.0f;
    for (const auto &v : mesh.vertices)
        max_uv = std::max({max_uv, v.uv.x, v.uv.y});
    EXPECT_LE(max_uv, 1.0f + 1e-5f); // no repetition: unique texels
}

TEST(Terrain, CameraStaysAboveTerrain)
{
    TerrainParams p = tinyParams();
    Workload wl = buildTerrain(p);
    // Sample the flight path; the eye must stay above the heightfield's
    // minimum and below a sane ceiling.
    Aabb b = wl.scene.objects()[0].world_bounds;
    for (int f = 0; f < 60; ++f) {
        CameraPose pose = wl.path.atFrame(f, 60);
        EXPECT_GT(pose.eye.y, b.min.y);
        EXPECT_LT(pose.eye.y, b.max.y + 150.0f);
    }
}

TEST(Terrain, UtilizationBelowVillage)
{
    // The workload's defining property: unique texel mapping gives low
    // block utilisation (the paper's Village/City are > 1).
    TerrainParams p = tinyParams();
    Workload wl = buildTerrain(p);
    DriverConfig cfg;
    cfg.width = 256;
    cfg.height = 192;
    cfg.filter = FilterMode::Point;
    cfg.frames = 4;
    MultiConfigRunner runner(wl, cfg);
    runner.addWorkingSets({16}, {});
    runner.run();
    double util = 0;
    for (const auto &row : runner.rows())
        util += row.working_sets->utilization(0);
    util /= static_cast<double>(runner.rows().size());
    EXPECT_LT(util, 3.0); // far below Village(~3.4)/City(~8.6)
    EXPECT_GT(util, 0.05);
}

TEST(Terrain, RunsEndToEndThroughCacheSim)
{
    Workload wl = buildTerrain(tinyParams());
    DriverConfig cfg;
    cfg.width = 160;
    cfg.height = 120;
    cfg.filter = FilterMode::Trilinear;
    cfg.frames = 3;
    MultiConfigRunner runner(wl, cfg);
    runner.addSim(CacheSimConfig::twoLevel(2 * 1024, 1ull << 20), "sim");
    runner.run();
    EXPECT_GT(runner.sims()[0]->totals().accesses, 0u);
    EXPECT_GT(runner.sims()[0]->totals().l1HitRate(), 0.5);
}

} // namespace
} // namespace mltc
