/**
 * @file
 * Robustness fuzzing for the trace reader: truncations at every byte,
 * bit flips, random opcode soup. Every malformed input must yield a
 * clean, typed mltc::Exception naming the offending offset or opcode —
 * never a crash, an infinite loop, or a leaked file handle.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <unistd.h>
#include <vector>

#include "trace/trace_io.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace mltc {
namespace {

/** Sink that just counts events (contents do not matter when fuzzing). */
class CountingSink final : public TexelAccessSink
{
  public:
    void bindTexture(TextureId) override { ++events; }
    void access(uint32_t, uint32_t, uint32_t) override { ++events; }
    uint64_t events = 0;
};

// PID-suffixed: ctest runs each test case as its own process, possibly
// in parallel, so shared fixed names would race on create/remove.
std::string
tempPath(const char *name)
{
    return testing::TempDir() + name + "." + std::to_string(getpid());
}

/** Bytes of a small valid trace (2 frames, a few events). */
std::vector<unsigned char>
validTraceBytes()
{
    std::string path = tempPath("fuzz_valid.bin");
    {
        TraceWriter w(path);
        w.bindTexture(3);
        w.access(1, 2, 0);
        w.access(100, 200, 5);
        w.endFrame();
        w.bindTexture(4);
        w.access(7, 8, 1);
        w.endFrame();
        w.close();
    }
    std::FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    std::vector<unsigned char> bytes(
        static_cast<size_t>(std::ftell(f)));
    std::fseek(f, 0, SEEK_SET);
    EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
    std::remove(path.c_str());
    return bytes;
}

void
writeBytes(const std::string &path, const std::vector<unsigned char> &bytes)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    if (!bytes.empty()) {
        ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f),
                  bytes.size());
    }
    ASSERT_EQ(std::fclose(f), 0);
}

/**
 * Replay @p bytes; the only acceptable outcomes are clean completion or
 * a typed mltc::Exception with a non-empty message.
 */
void
replayExpectingCleanOutcome(const std::vector<unsigned char> &bytes,
                            const std::string &path)
{
    writeBytes(path, bytes);
    try {
        TraceReader reader(path);
        CountingSink sink;
        reader.replayAll(sink);
    } catch (const Exception &e) {
        EXPECT_NE(e.code(), ErrorCode::None);
        EXPECT_FALSE(std::string(e.what()).empty());
    }
    // Any other exception type (or a crash/hang) fails the test.
    std::remove(path.c_str());
}

size_t
openFdCount()
{
    size_t n = 0;
    for (const auto &entry :
         std::filesystem::directory_iterator("/proc/self/fd"))
        (void)entry, ++n;
    return n;
}

TEST(TraceFuzz, TruncationAtEveryByteIsClean)
{
    const std::vector<unsigned char> bytes = validTraceBytes();
    const std::string path = tempPath("fuzz_trunc.bin");
    for (size_t len = 0; len < bytes.size(); ++len)
        replayExpectingCleanOutcome(
            {bytes.begin(), bytes.begin() + static_cast<long>(len)}, path);
}

TEST(TraceFuzz, TruncatedAccessNamesOffset)
{
    std::vector<unsigned char> bytes = validTraceBytes();
    bytes.resize(bytes.size() - 2); // chop into the last access payload
    const std::string path = tempPath("fuzz_offset.bin");
    writeBytes(path, bytes);
    TraceReader reader(path);
    CountingSink sink;
    try {
        reader.replayAll(sink);
        FAIL() << "expected a typed exception";
    } catch (const Exception &e) {
        EXPECT_EQ(e.code(), ErrorCode::Truncated);
        EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos);
    }
    std::remove(path.c_str());
}

TEST(TraceFuzz, BadOpcodeNamesOpcodeAndOffset)
{
    std::vector<unsigned char> bytes = validTraceBytes();
    bytes.push_back(0x7f); // garbage opcode after the final end-frame
    const std::string path = tempPath("fuzz_opcode.bin");
    writeBytes(path, bytes);
    TraceReader reader(path);
    CountingSink sink;
    try {
        reader.replayAll(sink);
        FAIL() << "expected a typed exception";
    } catch (const Exception &e) {
        EXPECT_EQ(e.code(), ErrorCode::BadOpcode);
        const std::string msg = e.what();
        EXPECT_NE(msg.find("opcode 127"), std::string::npos);
        EXPECT_NE(msg.find("offset"), std::string::npos);
    }
    std::remove(path.c_str());
}

TEST(TraceFuzz, BitFlipAtEveryByteIsClean)
{
    const std::vector<unsigned char> bytes = validTraceBytes();
    const std::string path = tempPath("fuzz_flip.bin");
    for (size_t i = 0; i < bytes.size(); ++i)
        for (int mask : {0x01, 0x80, 0xff}) {
            std::vector<unsigned char> mutated = bytes;
            mutated[i] = static_cast<unsigned char>(mutated[i] ^ mask);
            replayExpectingCleanOutcome(mutated, path);
        }
}

TEST(TraceFuzz, FlippedMagicIsBadMagic)
{
    std::vector<unsigned char> bytes = validTraceBytes();
    bytes[0] ^= 0xff;
    const std::string path = tempPath("fuzz_magic.bin");
    writeBytes(path, bytes);
    try {
        TraceReader reader(path);
        FAIL() << "expected a typed exception";
    } catch (const Exception &e) {
        EXPECT_EQ(e.code(), ErrorCode::BadMagic);
    }
    std::remove(path.c_str());
}

TEST(TraceFuzz, RandomOpcodeSoupTerminatesCleanly)
{
    const std::vector<unsigned char> valid = validTraceBytes();
    const std::string path = tempPath("fuzz_soup.bin");
    Rng rng(0xf00d);
    for (int round = 0; round < 200; ++round) {
        std::vector<unsigned char> bytes(valid.begin(), valid.begin() + 8);
        const size_t body = rng.below(96);
        for (size_t i = 0; i < body; ++i)
            bytes.push_back(static_cast<unsigned char>(rng.below(256)));
        replayExpectingCleanOutcome(bytes, path);
    }
}

TEST(TraceFuzz, FailedConstructionLeaksNoHandles)
{
    // A throwing constructor never runs the destructor; the FILE* must
    // be closed on every error path or 200 rounds would leak 200 fds.
    std::vector<unsigned char> bad = validTraceBytes();
    bad[0] ^= 0xff;
    const std::string bad_magic = tempPath("fuzz_leak_magic.bin");
    writeBytes(bad_magic, bad);
    const std::string short_hdr = tempPath("fuzz_leak_hdr.bin");
    writeBytes(short_hdr, {'M', 'L', 'T'});

    const size_t before = openFdCount();
    for (int i = 0; i < 200; ++i) {
        EXPECT_THROW(TraceReader r(bad_magic), Exception);
        EXPECT_THROW(TraceReader r(short_hdr), Exception);
    }
    EXPECT_EQ(openFdCount(), before);
    std::remove(bad_magic.c_str());
    std::remove(short_hdr.c_str());
}

TEST(TraceFuzz, WriterFailsLoudlyOnFullDevice)
{
    // /dev/full accepts the open but fails every flush: either a write
    // mid-stream or the final close must throw, never silently truncate.
    if (!std::filesystem::exists("/dev/full"))
        GTEST_SKIP() << "no /dev/full on this system";
    EXPECT_THROW(
        {
            TraceWriter w("/dev/full");
            for (uint32_t i = 0; i < 4096; ++i)
                w.access(i, i, 0);
            w.close();
        },
        Exception);
}

TEST(TraceFuzz, LegacyCatchSitesStillWork)
{
    // mltc::Exception derives std::runtime_error, so pre-taxonomy
    // callers that catch runtime_error keep working.
    const std::string path = tempPath("fuzz_legacy.bin");
    writeBytes(path, {'X'});
    EXPECT_THROW(TraceReader r(path), std::runtime_error);
    std::remove(path.c_str());
}

} // namespace
} // namespace mltc
