/**
 * @file
 * Unit tests for the texture sampler: footprint sizes per filter mode,
 * MIP level selection from lambda, wrap behaviour and filtered colors.
 */
#include <gtest/gtest.h>

#include <vector>

#include "raster/sampler.hpp"
#include "texture/procedural.hpp"

namespace mltc {
namespace {

/** Sink recording every access. */
class RecordingSink final : public TexelAccessSink
{
  public:
    void bindTexture(TextureId tid) override { this->tid = tid; }

    void
    access(uint32_t x, uint32_t y, uint32_t mip) override
    {
        records.push_back({x, y, mip});
    }

    struct Rec
    {
        uint32_t x, y, mip;
    };
    std::vector<Rec> records;
    TextureId tid = 0;
};

class SamplerTest : public ::testing::Test
{
  protected:
    SamplerTest()
    {
        tid = tm.load("checker",
                      MipPyramid(makeChecker(64, 8, packRgba(0, 0, 0),
                                             packRgba(255, 255, 255))));
        sampler.setSink(&sink);
        sampler.bind(tm.texture(tid));
    }

    TextureManager tm;
    TextureId tid;
    RecordingSink sink;
    TextureSampler sampler;
};

TEST_F(SamplerTest, BindNotifiesSink)
{
    EXPECT_EQ(sink.tid, tid);
}

TEST_F(SamplerTest, PointEmitsOneAccess)
{
    sampler.setFilter(FilterMode::Point);
    sampler.sample(0.5f, 0.5f, 0.0f);
    ASSERT_EQ(sink.records.size(), 1u);
    EXPECT_EQ(sink.records[0].x, 32u);
    EXPECT_EQ(sink.records[0].y, 32u);
    EXPECT_EQ(sink.records[0].mip, 0u);
    EXPECT_EQ(sampler.accessCount(), 1u);
}

TEST_F(SamplerTest, BilinearEmitsFourNeighbours)
{
    sampler.setFilter(FilterMode::Bilinear);
    sampler.sample(0.25f, 0.25f, 0.0f);
    ASSERT_EQ(sink.records.size(), 4u);
    // All four accesses at level 0, forming a 2x2 quad.
    uint32_t minx = ~0u, maxx = 0, miny = ~0u, maxy = 0;
    for (const auto &r : sink.records) {
        EXPECT_EQ(r.mip, 0u);
        minx = std::min(minx, r.x);
        maxx = std::max(maxx, r.x);
        miny = std::min(miny, r.y);
        maxy = std::max(maxy, r.y);
    }
    EXPECT_EQ(maxx - minx, 1u);
    EXPECT_EQ(maxy - miny, 1u);
}

TEST_F(SamplerTest, TrilinearEmitsEightAcrossTwoLevels)
{
    sampler.setFilter(FilterMode::Trilinear);
    sampler.sample(0.5f, 0.5f, 1.5f);
    ASSERT_EQ(sink.records.size(), 8u);
    int level1 = 0, level2 = 0;
    for (const auto &r : sink.records) {
        if (r.mip == 1)
            ++level1;
        else if (r.mip == 2)
            ++level2;
    }
    EXPECT_EQ(level1, 4);
    EXPECT_EQ(level2, 4);
}

TEST_F(SamplerTest, TrilinearMagnificationDegeneratesToBilinear)
{
    sampler.setFilter(FilterMode::Trilinear);
    sampler.sample(0.5f, 0.5f, -2.0f);
    EXPECT_EQ(sink.records.size(), 4u);
    for (const auto &r : sink.records)
        EXPECT_EQ(r.mip, 0u);
}

TEST_F(SamplerTest, TrilinearClampsAtCoarsestLevel)
{
    sampler.setFilter(FilterMode::Trilinear);
    sampler.sample(0.5f, 0.5f, 100.0f);
    // Both probe levels clamp to the 1x1 top: a single bilinear probe.
    EXPECT_EQ(sink.records.size(), 4u);
    for (const auto &r : sink.records)
        EXPECT_EQ(r.mip, 6u); // 64x64 -> levels 0..6
}

TEST_F(SamplerTest, PointRoundsLambda)
{
    sampler.setFilter(FilterMode::Point);
    sampler.sample(0.0f, 0.0f, 0.4f);
    sampler.sample(0.0f, 0.0f, 0.6f);
    ASSERT_EQ(sink.records.size(), 2u);
    EXPECT_EQ(sink.records[0].mip, 0u);
    EXPECT_EQ(sink.records[1].mip, 1u);
}

TEST_F(SamplerTest, NegativeLambdaClampsToBase)
{
    sampler.setFilter(FilterMode::Point);
    sampler.sample(0.1f, 0.1f, -5.0f);
    EXPECT_EQ(sink.records[0].mip, 0u);
}

TEST_F(SamplerTest, UvWrapsOutsideUnitSquare)
{
    sampler.setFilter(FilterMode::Point);
    sampler.sample(1.25f, -0.75f, 0.0f);
    ASSERT_EQ(sink.records.size(), 1u);
    EXPECT_EQ(sink.records[0].x, 16u); // 1.25 * 64 = 80 -> wraps to 16
    EXPECT_EQ(sink.records[0].y, 16u); // -0.75 * 64 = -48 -> wraps to 16
}

TEST_F(SamplerTest, ShadingOffReturnsZero)
{
    sampler.setFilter(FilterMode::Bilinear);
    sampler.setShading(false);
    EXPECT_EQ(sampler.sample(0.3f, 0.3f, 0.0f), 0u);
}

TEST_F(SamplerTest, ShadedPointReturnsTexelColor)
{
    sampler.setFilter(FilterMode::Point);
    sampler.setShading(true);
    // Checker cell (0,0) is black (color_a).
    uint32_t c = sampler.sample(0.01f, 0.01f, 0.0f);
    EXPECT_EQ(channel(c, 0), 0);
    // Cell (1,0) is white.
    c = sampler.sample(0.14f, 0.01f, 0.0f); // texel ~9 -> cell 1
    EXPECT_EQ(channel(c, 0), 255);
}

TEST_F(SamplerTest, BilinearBlendsAcrossEdge)
{
    sampler.setFilter(FilterMode::Bilinear);
    sampler.setShading(true);
    // Sample exactly on the black/white cell boundary at x = 8 texels:
    // u = 8/64 = 0.125 puts the footprint half in each cell.
    uint32_t c = sampler.sample(0.125f, 0.05f, 0.0f);
    int r = channel(c, 0);
    EXPECT_GT(r, 64);
    EXPECT_LT(r, 192);
}

TEST_F(SamplerTest, NullSinkStillCounts)
{
    sampler.setSink(nullptr);
    sampler.setFilter(FilterMode::Bilinear);
    uint64_t before = sampler.accessCount();
    sampler.sample(0.5f, 0.5f, 0.0f);
    EXPECT_EQ(sampler.accessCount(), before + 4);
}

TEST(FilterModeName, Names)
{
    EXPECT_STREQ(filterModeName(FilterMode::Point), "point");
    EXPECT_STREQ(filterModeName(FilterMode::Bilinear), "bilinear");
    EXPECT_STREQ(filterModeName(FilterMode::Trilinear), "trilinear");
}

} // namespace
} // namespace mltc
