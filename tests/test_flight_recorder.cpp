/**
 * @file
 * Unit tests for the crash-scoped flight recorder: bounded rings keep
 * the newest events across wraparound, multi-threaded recording is
 * join-safe, the dumped bundle is schema-valid JSON (re-parsed here;
 * the Chrome-trace invariants are enforced end to end by
 * trace_validate), dumps survive injected I/O faults through the
 * atomic-write retry ladder, and the global install slot downgrades
 * every helper to a no-op when empty.
 */
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <thread>
#include <unistd.h>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/io.hpp"
#include "util/json.hpp"

namespace mltc {
namespace {

std::string
tempPath(const char *name)
{
    return testing::TempDir() + name + "." + std::to_string(getpid());
}

std::string
fileText(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** Install @p config on the global backend for one test's scope. */
class ScopedFaults
{
  public:
    explicit ScopedFaults(const IoFaultConfig &config) : injector_(config)
    {
        FileBackend::instance().installInjector(&injector_);
    }
    ~ScopedFaults() { FileBackend::instance().installInjector(nullptr); }

  private:
    IoFaultInjector injector_;
};

void
removeBundle(const std::string &prefix)
{
    const std::string dir = prefix + ".flight";
    std::remove((dir + "/trace.json").c_str());
    std::remove((dir + "/metrics.jsonl").c_str());
    ::rmdir(dir.c_str());
}

// ---------------------------------------------------------------------------
// Ring behaviour.

TEST(FlightRecorder, KeepsNewestEventsAcrossWraparound)
{
    FlightRecorder::Config cfg;
    cfg.workers = 1;
    cfg.capacity = 4;
    FlightRecorder fr(cfg);
    for (int i = 0; i < 10; ++i)
        fr.record("event", "test", FlightEvent::Instant,
                  static_cast<double>(i));
    EXPECT_EQ(fr.recorded(), 10u);
    const std::vector<FlightEvent> events = fr.snapshot();
    ASSERT_EQ(events.size(), 4u); // bounded: the last moments only
    for (size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(events[i].seq, 7 + i); // seq 7..10 survive
        EXPECT_DOUBLE_EQ(events[i].value, 6.0 + static_cast<double>(i));
    }
}

TEST(FlightRecorder, TruncatesLongNamesSafely)
{
    FlightRecorder::Config cfg;
    cfg.workers = 1;
    cfg.capacity = 4;
    FlightRecorder fr(cfg);
    const std::string long_name(200, 'x');
    fr.record(long_name.c_str(), "category-name-too-long-to-fit");
    const auto events = fr.snapshot();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_LT(std::string(events[0].name).size(), sizeof events[0].name);
    EXPECT_LT(std::string(events[0].cat).size(), sizeof events[0].cat);
}

TEST(FlightRecorder, MultiThreadedRecordThenSnapshot)
{
    FlightRecorder::Config cfg;
    cfg.workers = 4;
    cfg.capacity = 64;
    FlightRecorder fr(cfg);
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t)
        threads.emplace_back([&fr]() {
            for (int i = 0; i < 50; ++i)
                fr.record("worker.event", "test");
        });
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(fr.recorded(), 200u);
    const auto events = fr.snapshot();
    EXPECT_FALSE(events.empty());
    EXPECT_LE(events.size(), 4u * 64u);
    // Global sequence order, no duplicates.
    for (size_t i = 1; i < events.size(); ++i)
        EXPECT_LT(events[i - 1].seq, events[i].seq);
}

// ---------------------------------------------------------------------------
// The dumped bundle.

TEST(FlightRecorder, DumpWritesSchemaValidBundle)
{
    const std::string prefix = tempPath("flight_dump");
    MetricsRegistry registry(true);
    registry.counter("hits", {{"stream", "1"}}).inc(3);

    FlightRecorder::Config cfg;
    cfg.workers = 2;
    cfg.capacity = 16;
    cfg.prefix = prefix;
    cfg.registry = &registry;
    FlightRecorder fr(cfg);
    fr.record("stream.quarantined", "resilience", FlightEvent::Instant,
              1.0);
    fr.record("s1.l1_misses", "metric", FlightEvent::Metric, 42.0);
    fr.record("frame", "frame", FlightEvent::Frame, 5.0);

    const std::string dir = fr.dump("quarantine");
    ASSERT_EQ(dir, prefix + ".flight");

    // trace.json: object with traceEvents; instants carry value + seq,
    // the final flight.dumped instant carries the reason.
    const JsonValue trace = parseJson(fileText(dir + "/trace.json"));
    const JsonValue *events = trace.find("traceEvents");
    ASSERT_NE(events, nullptr);
    const auto &arr = events->asArray();
    ASSERT_GE(arr.size(), 4u); // 3 metadata + 3 events + flight.dumped
    const JsonValue &last = arr.back();
    EXPECT_EQ(last.at("name").asString(), "flight.dumped");
    EXPECT_EQ(last.at("ph").asString(), "i");
    EXPECT_EQ(last.at("args").at("reason").asString(), "quarantine");
    bool saw_quarantine = false;
    for (const JsonValue &ev : arr)
        if (ev.find("name") &&
            ev.at("name").asString() == "stream.quarantined") {
            saw_quarantine = true;
            EXPECT_DOUBLE_EQ(ev.at("args").at("value").asNumber(), 1.0);
            EXPECT_GT(ev.at("args").at("seq").asNumber(), 0.0);
        }
    EXPECT_TRUE(saw_quarantine);

    // metrics.jsonl: a dump-summary row, then the registry snapshot.
    std::istringstream metrics(fileText(dir + "/metrics.jsonl"));
    std::string line;
    ASSERT_TRUE(std::getline(metrics, line));
    const JsonValue summary = parseJson(line);
    EXPECT_EQ(summary.at("flight").at("reason").asString(), "quarantine");
    EXPECT_DOUBLE_EQ(summary.at("flight").at("events").asNumber(), 3.0);
    ASSERT_TRUE(std::getline(metrics, line));
    const JsonValue snapshot = parseJson(line);
    EXPECT_DOUBLE_EQ(
        snapshot.at("counters").at("hits{stream=1}").asNumber(), 3.0);

    removeBundle(prefix);
}

TEST(FlightRecorder, DumpSurvivesInjectedIoFaults)
{
    const std::string prefix = tempPath("flight_faulty");
    FlightRecorder::Config cfg;
    cfg.workers = 1;
    cfg.capacity = 8;
    cfg.prefix = prefix;
    FlightRecorder fr(cfg);
    fr.record("watchdog.fired", "resilience");

    IoFaultConfig faults;
    faults.schedule.push_back({IoFaultKind::Eio, 1});
    faults.schedule.push_back({IoFaultKind::TornRename, 1});
    std::string dir;
    {
        ScopedFaults scoped(faults);
        dir = fr.dump("watchdog");
    }
    // The atomic-write retry ladder rides through both scheduled
    // faults; the committed bundle parses cleanly.
    ASSERT_EQ(dir, prefix + ".flight");
    EXPECT_NO_THROW(parseJson(fileText(dir + "/trace.json")));
    removeBundle(prefix);
}

TEST(FlightRecorder, DumpWithoutPrefixIsRefused)
{
    FlightRecorder::Config cfg;
    cfg.workers = 1;
    cfg.capacity = 4;
    FlightRecorder fr(cfg);
    fr.record("event", "test");
    EXPECT_EQ(fr.dump("quarantine"), "");
}

TEST(FlightRecorder, LaterDumpOverwritesWithFresherState)
{
    const std::string prefix = tempPath("flight_twice");
    FlightRecorder::Config cfg;
    cfg.workers = 1;
    cfg.capacity = 8;
    cfg.prefix = prefix;
    FlightRecorder fr(cfg);
    fr.record("first", "test");
    ASSERT_NE(fr.dump("quarantine"), "");
    fr.record("second", "test");
    const std::string dir = fr.dump("io");
    const std::string trace = fileText(dir + "/trace.json");
    EXPECT_NE(trace.find("\"second\""), std::string::npos);
    EXPECT_NE(trace.find("\"io\""), std::string::npos);
    removeBundle(prefix);
}

// ---------------------------------------------------------------------------
// The global install slot.

TEST(FlightRecorder, GlobalHelpersAreNoOpsWhenAbsent)
{
    ASSERT_EQ(flightRecorder(), nullptr);
    flightEvent("event", "test");
    flightMetric("metric", 1.0);
    flightFrame(3);
    EXPECT_EQ(flightDump("quarantine"), "");
}

TEST(FlightRecorder, GlobalHelpersRecordWhenInstalled)
{
    FlightRecorder::Config cfg;
    cfg.workers = 1;
    cfg.capacity = 8;
    FlightRecorder fr(cfg);
    installFlightRecorder(&fr);
    flightEvent("stream.quarantined", "resilience", 2.0);
    flightMetric("s0.host_bytes", 1024.0);
    flightFrame(7);
    installFlightRecorder(nullptr);
    flightEvent("after.removal", "test"); // must not land
    const auto events = fr.snapshot();
    ASSERT_EQ(events.size(), 3u);
    EXPECT_STREQ(events[0].name, "stream.quarantined");
    EXPECT_EQ(events[1].kind, FlightEvent::Metric);
    EXPECT_EQ(events[2].kind, FlightEvent::Frame);
    EXPECT_DOUBLE_EQ(events[2].value, 7.0);
}

} // namespace
} // namespace mltc
