/**
 * @file
 * Parameterized property tests over the rasterizer: invariants that
 * must hold for every filter mode and resolution.
 */
#include <gtest/gtest.h>

#include "raster/rasterizer.hpp"
#include "texture/procedural.hpp"

namespace mltc {
namespace {

constexpr float kPi = 3.14159265358979f;

struct RasterCase
{
    FilterMode filter;
    int width;
    int height;
};

class RasterProperty : public ::testing::TestWithParam<RasterCase>
{
  protected:
    RasterProperty() : cam(kPi / 2.0f, 1.0f, 0.5f, 500.0f)
    {
        tex = tm.load("t", MipPyramid(makeChecker(128, 8, 0xff202020u,
                                                  0xffe0e0e0u)));
        auto quad = std::make_shared<Mesh>(makeQuadXY(40, 40, 4, 4));
        scene.addObject(quad, Mat4::translate({0, -20, -10}), tex, "q");
        cam.lookAt({0, 0, 0}, {0, 0, -1});
    }

    TextureManager tm;
    TextureId tex;
    Scene scene;
    Camera cam;
};

/** Coverage is filter-independent: same pixels textured regardless. */
TEST_P(RasterProperty, CoverageIndependentOfFilter)
{
    const auto p = GetParam();
    Rasterizer raster(p.width, p.height);
    raster.setFilter(p.filter);
    CountingSink sink;
    raster.setSink(&sink);
    FrameStats fs = raster.renderFrame(scene, cam, tm);
    // The quad overfills the screen at fov90/distance10.
    EXPECT_EQ(fs.pixels_textured,
              static_cast<uint64_t>(p.width) *
                  static_cast<uint64_t>(p.height));
}

/** Access count per pixel is bounded by the filter footprint. */
TEST_P(RasterProperty, AccessesPerPixelBounded)
{
    const auto p = GetParam();
    Rasterizer raster(p.width, p.height);
    raster.setFilter(p.filter);
    CountingSink sink;
    raster.setSink(&sink);
    FrameStats fs = raster.renderFrame(scene, cam, tm);
    uint64_t max_per_pixel = p.filter == FilterMode::Point      ? 1
                             : p.filter == FilterMode::Bilinear ? 4
                                                                : 8;
    EXPECT_LE(sink.count, fs.pixels_textured * max_per_pixel);
    EXPECT_GE(sink.count, fs.pixels_textured); // at least 1 per pixel
    EXPECT_EQ(sink.count, fs.texel_accesses);
}

/** Rendering twice is deterministic. */
TEST_P(RasterProperty, Deterministic)
{
    const auto p = GetParam();
    uint64_t counts[2];
    for (int i = 0; i < 2; ++i) {
        Rasterizer raster(p.width, p.height);
        raster.setFilter(p.filter);
        CountingSink sink;
        raster.setSink(&sink);
        raster.renderFrame(scene, cam, tm);
        counts[i] = sink.count;
    }
    EXPECT_EQ(counts[0], counts[1]);
}

/** A shrunken viewport never *increases* work. */
TEST_P(RasterProperty, WorkScalesWithResolution)
{
    const auto p = GetParam();
    Rasterizer big(p.width, p.height);
    Rasterizer small(p.width / 2, p.height / 2);
    big.setFilter(p.filter);
    small.setFilter(p.filter);
    CountingSink s1, s2;
    big.setSink(&s1);
    small.setSink(&s2);
    big.renderFrame(scene, cam, tm);
    small.renderFrame(scene, cam, tm);
    EXPECT_LT(s2.count, s1.count);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, RasterProperty,
    ::testing::Values(RasterCase{FilterMode::Point, 64, 64},
                      RasterCase{FilterMode::Bilinear, 64, 64},
                      RasterCase{FilterMode::Trilinear, 64, 64},
                      RasterCase{FilterMode::Point, 96, 48},
                      RasterCase{FilterMode::Trilinear, 96, 48}),
    [](const ::testing::TestParamInfo<RasterCase> &info) {
        return std::string(filterModeName(info.param.filter)) + "_" +
               std::to_string(info.param.width) + "x" +
               std::to_string(info.param.height);
    });

} // namespace
} // namespace mltc
