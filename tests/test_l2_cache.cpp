/**
 * @file
 * Unit tests for the L2 texture cache: page-table allocation, sector
 * mapping, full/partial hit classification, clock eviction, byte
 * accounting and capacity behaviour.
 */
#include <gtest/gtest.h>

#include "core/l2_cache.hpp"

namespace mltc {
namespace {

/** Manager with two 64x64 textures (full MIP chains). */
class L2CacheTest : public ::testing::Test
{
  protected:
    L2CacheTest()
    {
        tex_a = tm.load("a", MipPyramid(Image(64, 64)));
        tex_b = tm.load("b", MipPyramid(Image(64, 64)));
    }

    L2Config
    smallConfig(uint64_t blocks = 4)
    {
        L2Config c;
        c.l2_tile = 16;
        c.l1_tile = 4;
        c.size_bytes = blocks * c.blockBytes();
        return c;
    }

    TextureManager tm;
    TextureId tex_a, tex_b;
};

TEST_F(L2CacheTest, ConfigDerivedQuantities)
{
    L2Config c;
    c.size_bytes = 2ull << 20;
    EXPECT_EQ(c.blockBytes(), 1024u);
    EXPECT_EQ(c.blocks(), 2048u);
    EXPECT_EQ(c.sectors(), 16u);
}

TEST_F(L2CacheTest, RejectsTooManySectors)
{
    L2Config c;
    c.l2_tile = 64;
    c.l1_tile = 4; // 256 sectors > 64-bit mask
    c.size_bytes = 1 << 20;
    EXPECT_THROW(L2TextureCache(tm, c), std::invalid_argument);
}

TEST_F(L2CacheTest, PageTableAllocationIsContiguousPerTexture)
{
    L2TextureCache l2(tm, smallConfig());
    // Each 64x64 chain with 16x16 tiles has 25 blocks (see layout test).
    EXPECT_EQ(l2.tstart(tex_a), 0u);
    EXPECT_EQ(l2.tstart(tex_b), 25u);
    EXPECT_EQ(l2.tableEntries(), 50u);
    EXPECT_EQ(l2.tableIndex(tex_b, 3), 28u);
}

TEST_F(L2CacheTest, UnloadedTexturesGetNoEntries)
{
    tm.unload(tex_a);
    L2TextureCache l2(tm, smallConfig());
    EXPECT_EQ(l2.tableEntries(), 25u);
    EXPECT_EQ(l2.tstart(tex_b), 0u);
}

TEST_F(L2CacheTest, FirstAccessIsFullMiss)
{
    L2TextureCache l2(tm, smallConfig());
    EXPECT_EQ(l2.access(0, 0, 64), L2Result::FullMiss);
    EXPECT_EQ(l2.stats().full_misses, 1u);
    EXPECT_EQ(l2.stats().host_bytes, 64u);
    EXPECT_EQ(l2.allocatedBlocks(), 1u);
}

TEST_F(L2CacheTest, SameSectorIsFullHit)
{
    L2TextureCache l2(tm, smallConfig());
    l2.access(0, 3, 64);
    EXPECT_EQ(l2.access(0, 3, 64), L2Result::FullHit);
    EXPECT_EQ(l2.stats().full_hits, 1u);
    // Full hit reads one sector (64 B at 32-bit texels) from L2 memory.
    EXPECT_EQ(l2.stats().l2_read_bytes, 64u);
    // No additional host traffic.
    EXPECT_EQ(l2.stats().host_bytes, 64u);
}

TEST_F(L2CacheTest, DifferentSectorIsPartialHit)
{
    L2TextureCache l2(tm, smallConfig());
    l2.access(0, 0, 64);
    EXPECT_EQ(l2.access(0, 1, 64), L2Result::PartialHit);
    EXPECT_EQ(l2.stats().partial_hits, 1u);
    // Sector mapping: the partial hit downloads exactly one sector.
    EXPECT_EQ(l2.stats().host_bytes, 128u);
    // Still one physical block.
    EXPECT_EQ(l2.allocatedBlocks(), 1u);
}

TEST_F(L2CacheTest, ProbeReflectsSectors)
{
    L2TextureCache l2(tm, smallConfig());
    l2.access(5, 2, 64);
    EXPECT_TRUE(l2.probe(5, 2));
    EXPECT_FALSE(l2.probe(5, 3));
    EXPECT_FALSE(l2.probe(6, 2));
}

TEST_F(L2CacheTest, EvictionRecyclesBlocksAndClearsVictim)
{
    L2TextureCache l2(tm, smallConfig(2)); // only 2 physical blocks
    l2.access(0, 0, 64);
    l2.access(1, 0, 64);
    EXPECT_EQ(l2.allocatedBlocks(), 2u);
    // Third distinct virtual block forces an eviction.
    EXPECT_EQ(l2.access(2, 0, 64), L2Result::FullMiss);
    EXPECT_EQ(l2.stats().evictions, 1u);
    EXPECT_EQ(l2.allocatedBlocks(), 2u);
    // The victim's sectors were cleared: re-accessing it is a full miss
    // again (not a partial hit on stale sector bits).
    int resident = l2.probe(0, 0) + l2.probe(1, 0);
    EXPECT_EQ(resident, 1);
    EXPECT_TRUE(l2.probe(2, 0));
}

TEST_F(L2CacheTest, ClockKeepsBlockTouchedAfterSweep)
{
    L2TextureCache l2(tm, smallConfig(2));
    l2.access(0, 0, 64); // phys 0
    l2.access(1, 0, 64); // phys 1
    // Both active: the sweep clears both and evicts phys 0 (virtual 0).
    l2.access(2, 0, 64);
    EXPECT_FALSE(l2.probe(0, 0));
    // Re-touch virtual 2 *after* the sweep: its active bit is set again,
    // while virtual 1's stays cleared.
    l2.access(2, 0, 64);
    // Next eviction must take the untouched virtual block 1.
    l2.access(3, 0, 64);
    EXPECT_TRUE(l2.probe(2, 0));
    EXPECT_FALSE(l2.probe(1, 0));
}

TEST_F(L2CacheTest, HostBytesUseCallerDepth)
{
    L2TextureCache l2(tm, smallConfig());
    l2.access(0, 0, 32); // e.g. 16-bit original depth
    l2.access(0, 1, 32);
    EXPECT_EQ(l2.stats().host_bytes, 64u);
}

TEST_F(L2CacheTest, ResetDropsContent)
{
    L2TextureCache l2(tm, smallConfig());
    l2.access(0, 0, 64);
    l2.reset();
    EXPECT_EQ(l2.allocatedBlocks(), 0u);
    EXPECT_FALSE(l2.probe(0, 0));
    EXPECT_EQ(l2.access(0, 0, 64), L2Result::FullMiss);
}

TEST_F(L2CacheTest, VictimSearchStepsRecorded)
{
    L2TextureCache l2(tm, smallConfig(2));
    l2.access(0, 0, 64);
    l2.access(1, 0, 64);
    l2.access(2, 0, 64); // eviction
    EXPECT_GE(l2.stats().victim_steps, 1u);
    EXPECT_GE(l2.stats().victim_steps_max, 1u);
    EXPECT_GE(l2.lastVictimSteps(), 1u);
}

TEST_F(L2CacheTest, AllSectorsOfABlock)
{
    L2TextureCache l2(tm, smallConfig());
    // 16 sectors in a 16x16/4x4 block: one full miss + 15 partial hits.
    for (uint32_t s = 0; s < 16; ++s)
        l2.access(7, s, 64);
    EXPECT_EQ(l2.stats().full_misses, 1u);
    EXPECT_EQ(l2.stats().partial_hits, 15u);
    for (uint32_t s = 0; s < 16; ++s)
        EXPECT_TRUE(l2.probe(7, s));
    EXPECT_EQ(l2.stats().host_bytes, 16u * 64u);
}

TEST_F(L2CacheTest, BadTidThrows)
{
    L2TextureCache l2(tm, smallConfig());
    EXPECT_THROW(l2.tstart(0), std::out_of_range);
    EXPECT_THROW(l2.tstart(99), std::out_of_range);
}

class L2PolicyTest : public ::testing::TestWithParam<ReplacementPolicy>
{
};

/** Every policy keeps the cache consistent under a random workload. */
TEST_P(L2PolicyTest, InvariantUnderRandomAccesses)
{
    TextureManager tm;
    tm.load("t", MipPyramid(Image(256, 256)));
    L2Config cfg;
    cfg.l2_tile = 16;
    cfg.l1_tile = 4;
    cfg.size_bytes = 8 * cfg.blockBytes();
    cfg.policy = GetParam();
    L2TextureCache l2(tm, cfg);

    Rng rng(99);
    for (int i = 0; i < 10000; ++i) {
        uint32_t t_index = static_cast<uint32_t>(rng.below(300));
        uint32_t sector = static_cast<uint32_t>(rng.below(16));
        l2.access(t_index, sector, 64);
        // After any access the block must be resident.
        ASSERT_TRUE(l2.probe(t_index, sector));
        ASSERT_LE(l2.allocatedBlocks(), cfg.blocks());
    }
    const L2Stats &s = l2.stats();
    EXPECT_EQ(s.lookups, 10000u);
    EXPECT_EQ(s.full_hits + s.partial_hits + s.full_misses, 10000u);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, L2PolicyTest,
    ::testing::Values(ReplacementPolicy::Clock, ReplacementPolicy::Lru,
                      ReplacementPolicy::Fifo, ReplacementPolicy::Random),
    [](const ::testing::TestParamInfo<ReplacementPolicy> &info) {
        return replacementPolicyName(info.param);
    });

} // namespace
} // namespace mltc
