/**
 * @file
 * Tests for the logging utility (level filtering and message assembly).
 */
#include <gtest/gtest.h>

#include "util/log.hpp"

namespace mltc {
namespace {

class LogTest : public ::testing::Test
{
  protected:
    void TearDown() override { setLogLevel(LogLevel::Info); }
};

TEST_F(LogTest, LevelRoundTrips)
{
    setLogLevel(LogLevel::Warn);
    EXPECT_EQ(logLevel(), LogLevel::Warn);
    setLogLevel(LogLevel::Debug);
    EXPECT_EQ(logLevel(), LogLevel::Debug);
}

TEST_F(LogTest, ConcatBuildsMessage)
{
    EXPECT_EQ(detail::concat("a", 1, "b", 2.5), "a1b2.5");
    EXPECT_EQ(detail::concat(), "");
}

TEST_F(LogTest, OffSuppressesEverything)
{
    setLogLevel(LogLevel::Off);
    // Nothing should crash; output cannot easily be captured here, but
    // the calls must be safe at every level.
    logDebug("d");
    logInfo("i");
    logWarn("w");
    logError("e");
}

TEST_F(LogTest, OrderingOfLevels)
{
    EXPECT_LT(static_cast<int>(LogLevel::Debug),
              static_cast<int>(LogLevel::Info));
    EXPECT_LT(static_cast<int>(LogLevel::Info),
              static_cast<int>(LogLevel::Warn));
    EXPECT_LT(static_cast<int>(LogLevel::Warn),
              static_cast<int>(LogLevel::Error));
    EXPECT_LT(static_cast<int>(LogLevel::Error),
              static_cast<int>(LogLevel::Off));
}

} // namespace
} // namespace mltc
