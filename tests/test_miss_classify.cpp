/**
 * @file
 * Unit tests for the 3C miss classifier: the fully-associative LRU
 * shadow, deterministic hand-built classification scenarios, agreement
 * with an independent brute-force golden model over a randomized
 * reference stream driven by a real direct-mapped cache, attribution /
 * top-texture ranking, and checkpoint round-trips (including mid-stream
 * resume equivalence and capacity-skew rejection).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <unistd.h>
#include <unordered_set>
#include <vector>

#include "obs/miss_classify.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/serializer.hpp"

namespace mltc {
namespace {

// PID-suffixed: ctest runs each test case as its own process, possibly
// in parallel, so shared fixed names would race on create/remove.
std::string
tempPath(const char *name)
{
    return testing::TempDir() + name + "." + std::to_string(getpid());
}

TEST(ShadowLru, HitMissAndEvictionOrder)
{
    ShadowLru lru(2);
    EXPECT_FALSE(lru.access(1)); // cold
    EXPECT_FALSE(lru.access(2)); // cold
    EXPECT_TRUE(lru.access(1));  // hit, promotes 1 over 2
    EXPECT_FALSE(lru.access(3)); // evicts 2 (the LRU)
    EXPECT_TRUE(lru.access(1));
    EXPECT_FALSE(lru.access(2)); // 2 was evicted
    EXPECT_EQ(lru.size(), 2u);
    EXPECT_EQ(lru.capacity(), 2u);
}

TEST(ShadowLru, ZeroCapacityAlwaysMisses)
{
    ShadowLru lru(0);
    EXPECT_FALSE(lru.access(1));
    EXPECT_FALSE(lru.access(1));
    EXPECT_EQ(lru.size(), 0u);
}

TEST(ShadowLru, SaveLoadPreservesRecencyOrder)
{
    const std::string path = tempPath("shadow_lru.snap");
    ShadowLru a(3);
    a.access(1);
    a.access(2);
    a.access(3);
    a.access(1); // order (MRU..LRU): 1 3 2
    {
        SnapshotWriter w(path);
        a.save(w);
        w.finish();
    }
    ShadowLru b(3);
    {
        SnapshotReader r(path);
        b.load(r);
        r.expectEnd();
    }
    // Same next-eviction behavior: inserting a new key must evict 2.
    EXPECT_FALSE(a.access(9));
    EXPECT_FALSE(b.access(9));
    EXPECT_FALSE(a.access(2));
    EXPECT_FALSE(b.access(2));
    EXPECT_TRUE(b.access(1));
    std::remove(path.c_str());
}

TEST(ShadowLru, CapacitySkewRejected)
{
    const std::string path = tempPath("shadow_skew.snap");
    ShadowLru a(4);
    a.access(1);
    {
        SnapshotWriter w(path);
        a.save(w);
        w.finish();
    }
    ShadowLru b(8);
    SnapshotReader r(path);
    try {
        b.load(r);
        FAIL() << "capacity skew must be rejected";
    } catch (const Exception &e) {
        EXPECT_EQ(e.code(), ErrorCode::VersionMismatch);
    }
    std::remove(path.c_str());
}

TEST(MissClassifier, HandBuiltScenario)
{
    // Shadow capacity 2. Real-cache outcomes are driven explicitly.
    MissClassifier mc(2);
    // First touches are compulsory regardless of the shadow.
    EXPECT_EQ(mc.access(1, 1, false, 0, 0, 64), MissClass::Compulsory);
    EXPECT_EQ(mc.access(2, 2, false, 0, 0, 64), MissClass::Compulsory);
    // Real hit: unclassified, but the shadow still observes the access.
    EXPECT_EQ(mc.access(1, 1, true, 0, 0, 0), std::nullopt);
    // Re-touch of 2 while the shadow holds {1, 2}: a real miss here is
    // the replacement policy's fault -> conflict.
    EXPECT_EQ(mc.access(2, 2, false, 0, 0, 64), MissClass::Conflict);
    // Stream three more distinct keys through; key 2 is now beyond the
    // shadow's capacity, so a real miss on it is a capacity miss.
    EXPECT_EQ(mc.access(3, 3, false, 0, 0, 64), MissClass::Compulsory);
    EXPECT_EQ(mc.access(4, 4, false, 0, 0, 64), MissClass::Compulsory);
    EXPECT_EQ(mc.access(2, 2, false, 0, 0, 64), MissClass::Capacity);

    EXPECT_EQ(mc.totals().compulsory, 4u);
    EXPECT_EQ(mc.totals().conflict, 1u);
    EXPECT_EQ(mc.totals().capacity, 1u);
    EXPECT_EQ(mc.totals().total(), 6u);
    EXPECT_EQ(mc.unitsSeen(), 4u);
}

/**
 * Independent golden model: an explicit seen-set plus a vector-backed
 * LRU, classifying against the same definitions as the paper taxonomy.
 */
struct GoldenClassifier
{
    explicit GoldenClassifier(size_t capacity) : capacity(capacity) {}

    std::optional<MissClass>
    access(uint64_t key, bool real_hit)
    {
        const auto pos = std::find(lru.begin(), lru.end(), key);
        const bool shadow_hit = pos != lru.end();
        if (shadow_hit)
            lru.erase(pos);
        lru.push_front(key);
        if (lru.size() > capacity)
            lru.pop_back();
        const bool first = seen.insert(key).second;
        if (real_hit)
            return std::nullopt;
        if (first)
            return MissClass::Compulsory;
        return shadow_hit ? MissClass::Conflict : MissClass::Capacity;
    }

    size_t capacity;
    std::deque<uint64_t> lru;
    std::unordered_set<uint64_t> seen;
};

/** A tiny direct-mapped "real" cache to produce honest hit/miss bits. */
struct DirectMapped
{
    explicit DirectMapped(size_t sets) : tags(sets, ~0ull) {}

    bool
    access(uint64_t key)
    {
        uint64_t &slot = tags[key % tags.size()];
        const bool hit = slot == key;
        slot = key;
        return hit;
    }

    std::vector<uint64_t> tags;
};

TEST(MissClassifier, AgreesWithGoldenModelOnRandomStream)
{
    constexpr size_t kCapacity = 8;
    MissClassifier mc(kCapacity);
    GoldenClassifier golden(kCapacity);
    DirectMapped real(kCapacity);
    Rng rng(1234);
    MissClassCounts expected;
    for (int i = 0; i < 20000; ++i) {
        // A skewed key distribution: hot set + occasional cold keys.
        const uint64_t key = (rng.below(10) < 7) ? rng.below(12)
                                                 : 100 + rng.below(4000);
        const bool real_hit = real.access(key);
        const auto got = mc.access(key, key, real_hit,
                                   static_cast<uint32_t>(key % 5), 0, 64);
        const auto want = golden.access(key, real_hit);
        ASSERT_EQ(got, want) << "access " << i << " key " << key;
        if (want)
            expected.add(*want);
    }
    EXPECT_EQ(mc.totals().compulsory, expected.compulsory);
    EXPECT_EQ(mc.totals().capacity, expected.capacity);
    EXPECT_EQ(mc.totals().conflict, expected.conflict);
    EXPECT_EQ(mc.unitsSeen(), golden.seen.size());
    // All three classes must actually occur, or the test proves little.
    EXPECT_GT(expected.compulsory, 0u);
    EXPECT_GT(expected.capacity, 0u);
    EXPECT_GT(expected.conflict, 0u);
}

TEST(MissClassifier, RepeatHeavyStreamMatchesGoldenModel)
{
    // The hot path memoizes consecutive same-key lookups (a guaranteed
    // MRU hit), so hammer exactly that pattern: long runs of one key,
    // interleaved with keys that break the run, against the golden
    // model that has no memo at all.
    constexpr size_t kCapacity = 4;
    MissClassifier mc(kCapacity);
    GoldenClassifier golden(kCapacity);
    DirectMapped real(kCapacity);
    Rng rng(4321);
    for (int run = 0; run < 800; ++run) {
        const uint64_t key = rng.below(16);
        const int len = 1 + static_cast<int>(rng.below(6));
        for (int i = 0; i < len; ++i) {
            const bool real_hit = real.access(key);
            const auto got = mc.access(key, key, real_hit,
                                       static_cast<uint32_t>(key % 3), 0,
                                       64);
            const auto want = golden.access(key, real_hit);
            ASSERT_EQ(got, want) << "run " << run << " rep " << i
                                 << " key " << key;
        }
    }
    EXPECT_EQ(mc.unitsSeen(), golden.seen.size());
}

TEST(MissClassifier, RepeatsWithZeroCapacityShadowStayCapacityMisses)
{
    // Capacity 0 always misses in the shadow; the consecutive-key memo
    // must not fabricate a shadow hit (which would misclassify the
    // repeat as a conflict miss).
    MissClassifier mc(0);
    EXPECT_EQ(mc.access(5, 5, false, 0, 0, 64), MissClass::Compulsory);
    EXPECT_EQ(mc.access(5, 5, false, 0, 0, 64), MissClass::Capacity);
    EXPECT_EQ(mc.access(5, 5, false, 0, 0, 64), MissClass::Capacity);
    EXPECT_EQ(mc.totals().conflict, 0u);
}

TEST(MissClassifier, AttributionRowsAndTopTextures)
{
    MissClassifier mc(4);
    // tex 1 mip 0: two compulsory misses, 128 bytes.
    mc.access(10, 10, false, 1, 0, 64);
    mc.access(11, 11, false, 1, 0, 64);
    // tex 2 mip 1: one compulsory miss, 256 bytes (heavier traffic).
    mc.access(20, 20, false, 2, 1, 256);
    // tex 2 mip 0: a hit contributes nothing.
    mc.access(20, 20, true, 2, 0, 0);

    const auto rows = mc.attributionRows();
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].tex, 1u);
    EXPECT_EQ(rows[0].mip, 0u);
    EXPECT_EQ(rows[0].counts.compulsory, 2u);
    EXPECT_EQ(rows[0].bytes, 128u);
    EXPECT_EQ(rows[1].tex, 2u);
    EXPECT_EQ(rows[1].mip, 1u);
    EXPECT_EQ(rows[1].bytes, 256u);

    const auto top = mc.topTexturesByTraffic(1);
    ASSERT_EQ(top.size(), 1u);
    EXPECT_EQ(top[0].tex, 2u); // 256 bytes beats 128
    const auto both = mc.topTexturesByTraffic(10);
    ASSERT_EQ(both.size(), 2u);
    EXPECT_EQ(both[1].tex, 1u);
    EXPECT_EQ(both[1].counts.total(), 2u);
}

TEST(MissClassifier, SaveLoadResumeIsBitEquivalent)
{
    constexpr size_t kCapacity = 6;
    const std::string path = tempPath("classifier.snap");
    Rng rng(77);
    std::vector<std::pair<uint64_t, bool>> stream;
    DirectMapped real(kCapacity);
    for (int i = 0; i < 4000; ++i) {
        const uint64_t key = rng.below(64);
        stream.emplace_back(key, real.access(key));
    }

    // Straight run over the whole stream.
    MissClassifier straight(kCapacity);
    for (const auto &[key, hit] : stream)
        straight.access(key, key, hit, static_cast<uint32_t>(key % 3),
                        static_cast<uint32_t>(key % 2), 32);

    // Interrupted run: checkpoint at the midpoint, resume into a fresh
    // classifier, replay the second half.
    MissClassifier first_half(kCapacity);
    const size_t mid = stream.size() / 2;
    for (size_t i = 0; i < mid; ++i)
        first_half.access(stream[i].first, stream[i].first,
                          stream[i].second,
                          static_cast<uint32_t>(stream[i].first % 3),
                          static_cast<uint32_t>(stream[i].first % 2), 32);
    {
        SnapshotWriter w(path);
        first_half.save(w);
        w.finish();
    }
    MissClassifier resumed(kCapacity);
    {
        SnapshotReader r(path);
        resumed.load(r);
        r.expectEnd();
    }
    for (size_t i = mid; i < stream.size(); ++i)
        resumed.access(stream[i].first, stream[i].first, stream[i].second,
                       static_cast<uint32_t>(stream[i].first % 3),
                       static_cast<uint32_t>(stream[i].first % 2), 32);

    EXPECT_EQ(resumed.totals().compulsory, straight.totals().compulsory);
    EXPECT_EQ(resumed.totals().capacity, straight.totals().capacity);
    EXPECT_EQ(resumed.totals().conflict, straight.totals().conflict);
    EXPECT_EQ(resumed.unitsSeen(), straight.unitsSeen());

    const auto a = straight.attributionRows();
    const auto b = resumed.attributionRows();
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].tex, b[i].tex);
        EXPECT_EQ(a[i].mip, b[i].mip);
        EXPECT_EQ(a[i].counts.total(), b[i].counts.total());
        EXPECT_EQ(a[i].bytes, b[i].bytes);
    }

    // And the serialized images themselves must match: save both again
    // and compare the snapshot payload sizes + a fresh reload.
    const std::string pa = tempPath("classifier_a.snap");
    const std::string pb = tempPath("classifier_b.snap");
    {
        SnapshotWriter wa(pa);
        straight.save(wa);
        wa.finish();
        SnapshotWriter wb(pb);
        resumed.save(wb);
        wb.finish();
    }
    std::FILE *fa = std::fopen(pa.c_str(), "rb");
    std::FILE *fb = std::fopen(pb.c_str(), "rb");
    ASSERT_NE(fa, nullptr);
    ASSERT_NE(fb, nullptr);
    std::vector<uint8_t> ba, bb;
    int ch;
    while ((ch = std::fgetc(fa)) != EOF)
        ba.push_back(static_cast<uint8_t>(ch));
    while ((ch = std::fgetc(fb)) != EOF)
        bb.push_back(static_cast<uint8_t>(ch));
    std::fclose(fa);
    std::fclose(fb);
    EXPECT_EQ(ba, bb) << "straight and resumed snapshots differ";
    std::remove(path.c_str());
    std::remove(pa.c_str());
    std::remove(pb.c_str());
}

TEST(MissClassifier, LoadRejectsCapacitySkew)
{
    const std::string path = tempPath("classifier_skew.snap");
    MissClassifier a(4);
    a.access(1, 1, false, 0, 0, 64);
    {
        SnapshotWriter w(path);
        a.save(w);
        w.finish();
    }
    MissClassifier b(16);
    SnapshotReader r(path);
    try {
        b.load(r);
        FAIL() << "shadow capacity skew must be rejected";
    } catch (const Exception &e) {
        EXPECT_EQ(e.code(), ErrorCode::VersionMismatch);
    }
    std::remove(path.c_str());
}

TEST(MissClassName, StableNames)
{
    EXPECT_STREQ(missClassName(MissClass::Compulsory), "compulsory");
    EXPECT_STREQ(missClassName(MissClass::Capacity), "capacity");
    EXPECT_STREQ(missClassName(MissClass::Conflict), "conflict");
}

} // namespace
} // namespace mltc
