/**
 * @file
 * Tests for the state invariant auditor: clean simulators pass the
 * exhaustive sweep at any point of a run, and every deliberately
 * corrupted structure yields a typed AuditViolation naming the
 * structure (and index) — via AuditTestPeer, a test-only friend with
 * mutating access to the private state.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "core/audit.hpp"
#include "core/cache_sim.hpp"
#include "util/error.hpp"
#include "workload/village.hpp"

namespace mltc {

/** Test-only peer: reaches into private state to break invariants. */
class AuditTestPeer
{
  public:
    static L1Cache &l1(CacheSim &sim) { return sim.l1_; }
    static L2TextureCache &l2(CacheSim &sim) { return *sim.l2_; }
    static TextureTlb &tlb(CacheSim &sim) { return *sim.tlb_; }
    static CacheFrameStats &frame(CacheSim &sim) { return sim.frame_; }

    static std::vector<uint64_t> &l1Tags(CacheSim &sim)
    {
        return sim.l1_.tags_;
    }
    static std::vector<uint64_t> &l1Stamps(CacheSim &sim)
    {
        return sim.l1_.stamps_;
    }
    static uint32_t l1Assoc(CacheSim &sim) { return sim.l1_.assoc_; }
    static uint32_t l1Sets(CacheSim &sim) { return sim.l1_.sets_; }
    static uint32_t l1SetOf(CacheSim &sim, uint64_t tag)
    {
        return sim.l1_.setIndex(tag);
    }

    /** First allocated t_table index, or -1 when the L2 is empty. */
    static long firstMapped(CacheSim &sim)
    {
        const auto &table = sim.l2_->table_;
        for (size_t t = 0; t < table.size(); ++t)
            if (table[t].phys_plus1 != 0)
                return static_cast<long>(t);
        return -1;
    }
    static void setSectors(CacheSim &sim, long t, uint64_t sectors,
                           uint64_t prefetched)
    {
        sim.l2_->table_[static_cast<size_t>(t)].sectors = sectors;
        sim.l2_->table_[static_cast<size_t>(t)].prefetched = prefetched;
    }
    static void disownPhysicalBlock(CacheSim &sim, long t)
    {
        auto &l2 = *sim.l2_;
        const uint32_t phys =
            l2.table_[static_cast<size_t>(t)].phys_plus1 - 1;
        l2.brl_owner_[phys] =
            static_cast<uint32_t>(t) + 2; // off-by-one owner
    }
    static void setAllocated(CacheSim &sim, uint64_t n)
    {
        sim.l2_->allocated_ = n;
    }
    static uint64_t l2Blocks(CacheSim &sim)
    {
        return sim.l2_->cfg_.blocks();
    }
    static uint32_t l2Sectors(CacheSim &sim)
    {
        return sim.l2_->cfg_.sectors();
    }

    static void setTlbHand(CacheSim &sim, uint32_t hand)
    {
        sim.tlb_->hand_ = hand;
    }
    static void setTlbSlot(CacheSim &sim, size_t i, uint32_t value)
    {
        sim.tlb_->slots_[i] = value;
    }

    static void breakLruList(CacheSim &sim)
    {
        auto &lru = static_cast<LruSelector &>(*sim.l2_->selector_);
        lru.next_[lru.head_] = lru.head_; // self-loop: list revisits
    }
    static void pushClockHandOut(CacheSim &sim)
    {
        auto &clock = static_cast<ClockSelector &>(*sim.l2_->selector_);
        clock.hand_ = static_cast<uint32_t>(clock.active_.size());
    }
};

namespace {

Workload
smallWorld()
{
    VillageParams p;
    p.houses = 3;
    p.trees = 1;
    p.ground_texture_size = 64;
    p.wall_texture_size = 64;
    return buildVillage(p);
}

/** Drive @p sim over a couple of textures so every structure has state. */
void
exercise(Workload &wl, CacheSim &sim, int frames = 2)
{
    for (int f = 0; f < frames; ++f) {
        for (TextureId tid = 1;
             tid <= std::min<uint32_t>(2, wl.textures->textureCount());
             ++tid) {
            sim.bindTexture(tid);
            const uint32_t mip = static_cast<uint32_t>(f) % 2;
            const uint32_t edge =
                wl.textures->texture(tid).pyramid.width() >> mip;
            for (uint32_t y = 0; y + 1 < edge; y += 3)
                for (uint32_t x = 0; x + 1 < edge; x += 3)
                    sim.accessQuad(x, y, x + 1, y + 1, mip);
        }
        sim.endFrame();
    }
}

void
expectViolation(CacheSim &sim, AuditLevel level, const char *structure)
{
    try {
        sim.audit(level);
        FAIL() << "expected AuditViolation naming " << structure;
    } catch (const Exception &e) {
        EXPECT_EQ(e.code(), ErrorCode::AuditViolation);
        EXPECT_NE(std::string(e.what()).find(structure), std::string::npos)
            << "got: " << e.what();
    }
}

CacheSimConfig
twoLevelTlb()
{
    CacheSimConfig cfg = CacheSimConfig::twoLevel(32 << 10, 1 << 20);
    cfg.tlb_entries = 4;
    return cfg;
}

TEST(Audit, CleanSimsPassFullSweep)
{
    Workload wl = smallWorld();
    std::vector<std::pair<std::string, CacheSimConfig>> cases;
    cases.emplace_back("pull", CacheSimConfig::pull(32 << 10));
    cases.emplace_back("two-level+tlb", twoLevelTlb());
    {
        CacheSimConfig lru = twoLevelTlb();
        lru.l2.policy = ReplacementPolicy::Lru;
        cases.emplace_back("lru", lru);
    }
    {
        CacheSimConfig pf = twoLevelTlb();
        pf.l2.prefetch = PrefetchPolicy::AdjacentSector;
        cases.emplace_back("prefetch", pf);
    }
    for (auto &[name, cfg] : cases) {
        CacheSim sim(*wl.textures, cfg, name);
        EXPECT_NO_THROW(sim.audit(AuditLevel::Full)) << name << " (empty)";
        exercise(wl, sim);
        EXPECT_NO_THROW(sim.audit(AuditLevel::Full)) << name;
        EXPECT_NO_THROW(sim.audit(AuditLevel::Cheap)) << name;
        EXPECT_NO_THROW(sim.audit(AuditLevel::Off)) << name;
    }
}

TEST(Audit, StatsInversionTripsCheapCheck)
{
    Workload wl = smallWorld();
    CacheSim sim(*wl.textures, twoLevelTlb(), "t");
    exercise(wl, sim);
    AuditTestPeer::frame(sim).l1_misses =
        AuditTestPeer::frame(sim).accesses + 1;
    expectViolation(sim, AuditLevel::Cheap, "CacheSim.frame");
}

TEST(Audit, L1GeometrySkewTripsCheapCheck)
{
    Workload wl = smallWorld();
    CacheSim sim(*wl.textures, twoLevelTlb(), "t");
    exercise(wl, sim);
    AuditTestPeer::l1Tags(sim).push_back(0);
    expectViolation(sim, AuditLevel::Cheap, "L1Cache");
}

TEST(Audit, L1BogusTextureIdTripsFullSweep)
{
    Workload wl = smallWorld();
    CacheSim sim(*wl.textures, twoLevelTlb(), "t");
    exercise(wl, sim);
    const uint64_t bogus =
        (static_cast<uint64_t>(wl.textures->textureCount()) + 5) << 32;
    AuditTestPeer::l1Tags(sim)[0] = bogus;
    AuditTestPeer::l1Stamps(sim)[0] = 1;
    expectViolation(sim, AuditLevel::Full, "L1Cache.tags");
}

TEST(Audit, L1TagInWrongSetTripsFullSweep)
{
    Workload wl = smallWorld();
    CacheSim sim(*wl.textures, twoLevelTlb(), "t");
    exercise(wl, sim);
    auto &tags = AuditTestPeer::l1Tags(sim);
    // Move a valid resident tag into a set it does not hash to. Storage
    // is way-major, so index `set` addresses way plane 0 of that set.
    const uint32_t sets = AuditTestPeer::l1Sets(sim);
    ASSERT_GT(sets, 1u);
    long src = -1;
    for (size_t i = 0; i < tags.size(); ++i)
        if (tags[i] != 0) {
            src = static_cast<long>(i);
            break;
        }
    ASSERT_GE(src, 0) << "exercise() left the L1 empty?";
    const uint64_t tag = tags[static_cast<size_t>(src)];
    const uint32_t home = AuditTestPeer::l1SetOf(sim, tag);
    const uint32_t wrong = (home + 1) % sets;
    tags[wrong] = tag;
    AuditTestPeer::l1Stamps(sim)[wrong] = 1;
    expectViolation(sim, AuditLevel::Full, "L1Cache.tags");
}

TEST(Audit, L2IllegalSectorBitsTripFullSweep)
{
    Workload wl = smallWorld();
    CacheSim sim(*wl.textures, twoLevelTlb(), "t");
    exercise(wl, sim);
    const long t = AuditTestPeer::firstMapped(sim);
    ASSERT_GE(t, 0);
    const uint32_t sectors = AuditTestPeer::l2Sectors(sim);
    ASSERT_LT(sectors, 64u);
    AuditTestPeer::setSectors(sim, t, 1ull << sectors, 0);
    expectViolation(sim, AuditLevel::Full, "t_table");
}

TEST(Audit, L2PrefetchedNotSubsetTripsFullSweep)
{
    Workload wl = smallWorld();
    CacheSim sim(*wl.textures, twoLevelTlb(), "t");
    exercise(wl, sim);
    const long t = AuditTestPeer::firstMapped(sim);
    ASSERT_GE(t, 0);
    AuditTestPeer::setSectors(sim, t, 1, 2); // prefetched bit not resident
    expectViolation(sim, AuditLevel::Full, "t_table");
}

TEST(Audit, L2BrokenBrlOwnershipTripsFullSweep)
{
    Workload wl = smallWorld();
    CacheSim sim(*wl.textures, twoLevelTlb(), "t");
    exercise(wl, sim);
    const long t = AuditTestPeer::firstMapped(sim);
    ASSERT_GE(t, 0);
    AuditTestPeer::disownPhysicalBlock(sim, t);
    expectViolation(sim, AuditLevel::Full, "t_table");
}

TEST(Audit, L2AllocationWatermarkChecked)
{
    Workload wl = smallWorld();
    CacheSim sim(*wl.textures, twoLevelTlb(), "t");
    exercise(wl, sim);
    // Over capacity: cheap check.
    AuditTestPeer::setAllocated(sim, AuditTestPeer::l2Blocks(sim) + 1);
    expectViolation(sim, AuditLevel::Cheap, "L2TextureCache");
    // Watermark above the owned region: full sweep.
    AuditTestPeer::setAllocated(sim, AuditTestPeer::l2Blocks(sim));
    expectViolation(sim, AuditLevel::Full, "BRL");
}

TEST(Audit, TlbHandOutOfRangeTripsCheapCheck)
{
    Workload wl = smallWorld();
    CacheSim sim(*wl.textures, twoLevelTlb(), "t");
    exercise(wl, sim);
    AuditTestPeer::setTlbHand(sim, 99);
    expectViolation(sim, AuditLevel::Cheap, "TextureTlb");
}

TEST(Audit, TlbDanglingTranslationTripsFullSweep)
{
    Workload wl = smallWorld();
    CacheSim sim(*wl.textures, twoLevelTlb(), "t");
    exercise(wl, sim);
    AuditTestPeer::setTlbSlot(sim, 0, 0xfffffff0u);
    expectViolation(sim, AuditLevel::Full, "TextureTlb.slots");
}

TEST(Audit, LruListCorruptionTripsFullSweep)
{
    Workload wl = smallWorld();
    CacheSimConfig cfg = twoLevelTlb();
    cfg.l2.policy = ReplacementPolicy::Lru;
    CacheSim sim(*wl.textures, cfg, "t");
    exercise(wl, sim);
    AuditTestPeer::breakLruList(sim);
    expectViolation(sim, AuditLevel::Full, "LruSelector");
}

TEST(Audit, ClockHandOutOfRangeTripsFullSweep)
{
    Workload wl = smallWorld();
    CacheSim sim(*wl.textures, twoLevelTlb(), "t");
    exercise(wl, sim);
    AuditTestPeer::pushClockHandOut(sim);
    expectViolation(sim, AuditLevel::Full, "ClockSelector");
}

TEST(Audit, ParseAuditLevel)
{
    EXPECT_EQ(parseAuditLevel("off"), AuditLevel::Off);
    EXPECT_EQ(parseAuditLevel("cheap"), AuditLevel::Cheap);
    EXPECT_EQ(parseAuditLevel("full"), AuditLevel::Full);
    try {
        parseAuditLevel("loud");
        FAIL() << "bad level accepted";
    } catch (const Exception &e) {
        EXPECT_EQ(e.code(), ErrorCode::BadArgument);
    }
    EXPECT_STREQ(auditLevelName(AuditLevel::Full), "full");
}

} // namespace
} // namespace mltc
