/**
 * @file
 * Unit + property tests for FlatSet64, the trace hot-path hash set.
 */
#include <gtest/gtest.h>

#include <set>

#include "trace/flat_set.hpp"
#include "util/rng.hpp"

namespace mltc {
namespace {

TEST(FlatSet64, InsertReturnsNewness)
{
    FlatSet64 set;
    EXPECT_TRUE(set.insert(42));
    EXPECT_FALSE(set.insert(42));
    EXPECT_TRUE(set.insert(43));
    EXPECT_EQ(set.size(), 2u);
}

TEST(FlatSet64, ContainsAfterInsert)
{
    FlatSet64 set;
    set.insert(7);
    EXPECT_TRUE(set.contains(7));
    EXPECT_FALSE(set.contains(8));
}

TEST(FlatSet64, ClearEmptiesWithoutRehash)
{
    FlatSet64 set;
    for (uint64_t i = 0; i < 100; ++i)
        set.insert(i);
    size_t cap = set.capacity();
    set.clear();
    EXPECT_EQ(set.size(), 0u);
    EXPECT_EQ(set.capacity(), cap);
    EXPECT_FALSE(set.contains(5));
    EXPECT_TRUE(set.insert(5));
}

TEST(FlatSet64, GrowsUnderLoad)
{
    FlatSet64 set(64);
    for (uint64_t i = 0; i < 1000; ++i)
        set.insert(i * 0x9e3779b97f4a7c15ull);
    EXPECT_EQ(set.size(), 1000u);
    EXPECT_GT(set.capacity(), 1000u);
    // All keys survive the growth rehash.
    for (uint64_t i = 0; i < 1000; ++i)
        EXPECT_TRUE(set.contains(i * 0x9e3779b97f4a7c15ull));
}

TEST(FlatSet64, ForEachVisitsExactlyCurrentKeys)
{
    FlatSet64 set;
    set.insert(1);
    set.insert(2);
    set.clear();
    set.insert(3);
    std::set<uint64_t> seen;
    set.forEach([&](uint64_t k) { seen.insert(k); });
    EXPECT_EQ(seen, (std::set<uint64_t>{3}));
}

TEST(FlatSet64, ManyEpochsStayCorrect)
{
    FlatSet64 set(64);
    for (int epoch = 0; epoch < 1000; ++epoch) {
        EXPECT_TRUE(set.insert(static_cast<uint64_t>(epoch)));
        EXPECT_TRUE(set.contains(static_cast<uint64_t>(epoch)));
        set.clear();
        EXPECT_FALSE(set.contains(static_cast<uint64_t>(epoch)));
    }
}

TEST(FlatSet64, MatchesReferenceSetRandomised)
{
    FlatSet64 set(256);
    std::set<uint64_t> ref;
    Rng rng(5);
    for (int i = 0; i < 20000; ++i) {
        uint64_t key = rng.below(4096);
        bool fresh_ref = ref.insert(key).second;
        bool fresh = set.insert(key);
        ASSERT_EQ(fresh, fresh_ref) << "key " << key << " iter " << i;
        if (i % 5000 == 4999) {
            EXPECT_EQ(set.size(), ref.size());
            set.clear();
            ref.clear();
        }
    }
}

TEST(FlatSet64, ZeroAndMaxKeysWork)
{
    FlatSet64 set;
    EXPECT_TRUE(set.insert(0));
    EXPECT_TRUE(set.insert(~0ull));
    EXPECT_TRUE(set.contains(0));
    EXPECT_TRUE(set.contains(~0ull));
    EXPECT_FALSE(set.insert(0));
}

} // namespace
} // namespace mltc
