/**
 * @file
 * Unit tests for the SLO rule grammar and the multi-window burn-rate
 * tracker: parse errors name the offending rule, alerts need both
 * windows burning and a full fast window, recovery clears on the fast
 * window alone, frame gaps and rewinds (checkpoint resume) reset every
 * window, NaN samples count as satisfied, and entities track
 * independently.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "obs/slo.hpp"
#include "util/error.hpp"

namespace mltc {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// ---------------------------------------------------------------------------
// Grammar.

TEST(SloGrammar, ParsesRuleList)
{
    const auto rules = parseSloRules(
        "stream.miss_rate.l2<0.15@30f,stream.lod_bias>1@16f");
    ASSERT_EQ(rules.size(), 2u);
    EXPECT_EQ(rules[0].metric, "stream.miss_rate.l2");
    EXPECT_EQ(rules[0].op, '<');
    EXPECT_DOUBLE_EQ(rules[0].threshold, 0.15);
    EXPECT_EQ(rules[0].window, 30u);
    EXPECT_EQ(rules[0].spec, "stream.miss_rate.l2<0.15@30f");
    EXPECT_EQ(rules[1].metric, "stream.lod_bias");
    EXPECT_EQ(rules[1].op, '>');
    EXPECT_DOUBLE_EQ(rules[1].threshold, 1.0);
    EXPECT_EQ(rules[1].window, 16u);
}

TEST(SloGrammar, EmptySpecParsesToNoRules)
{
    EXPECT_TRUE(parseSloRules("").empty());
}

TEST(SloGrammar, RejectsMalformedRules)
{
    const char *bad[] = {
        "noop",                    // no operator
        "<0.5@4f",                 // empty metric
        "m<@4f",                   // empty threshold
        "m<abc@4f",                // non-numeric threshold
        "m<0.5",                   // missing window
        "m<0.5@4",                 // window without 'f'
        "m<0.5@0f",                // zero window
        "m<0.5@-3f",               // negative window
    };
    for (const char *spec : bad) {
        try {
            parseSloRules(spec);
            FAIL() << "rule '" << spec << "' must be rejected";
        } catch (const Exception &e) {
            EXPECT_EQ(e.code(), ErrorCode::BadArgument) << spec;
        }
    }
}

TEST(SloGrammar, SatisfiedFollowsOperator)
{
    const SloRule lt = parseSloRules("m<0.5@4f")[0];
    EXPECT_TRUE(lt.satisfied(0.4));
    EXPECT_FALSE(lt.satisfied(0.5));
    const SloRule gt = parseSloRules("m>0.5@4f")[0];
    EXPECT_TRUE(gt.satisfied(0.6));
    EXPECT_FALSE(gt.satisfied(0.5));
}

// ---------------------------------------------------------------------------
// Burn-rate tracking. Rule "m<0.5@4f", default budget 0.1: fast
// window 4 frames, slow 16; an all-violating fast window burns at 10x.

std::vector<SloEvent>
feed(SloTracker &t, int64_t frame, double value)
{
    return t.observeFrame(frame, {{value}});
}

TEST(SloTracker, FiresOnlyWhenFastWindowIsFull)
{
    SloTracker t(parseSloRules("m<0.5@4f"));
    EXPECT_TRUE(feed(t, 0, 0.9).empty());
    EXPECT_TRUE(feed(t, 1, 0.9).empty());
    EXPECT_TRUE(feed(t, 2, 0.9).empty());
    const auto events = feed(t, 3, 0.9); // 4th violating frame
    ASSERT_EQ(events.size(), 1u);
    EXPECT_TRUE(events[0].firing);
    EXPECT_EQ(events[0].rule, 0u);
    EXPECT_EQ(events[0].entity, 0u);
    EXPECT_EQ(events[0].frame, 3);
    EXPECT_GE(events[0].burn_fast, 2.0);
    EXPECT_GE(events[0].burn_slow, 1.0);
    EXPECT_TRUE(t.alerting(0, 0));
    EXPECT_TRUE(t.anyAlerting(0));
}

TEST(SloTracker, SingleBadFrameCannotFireAtSteadyState)
{
    SloTracker t(parseSloRules("m<0.5@4f"));
    // Fill the slow window (16 frames) with healthy samples first; a
    // lone violation then burns 2.5x fast but only 0.625x slow, and
    // the two-window AND keeps the alert quiet.
    for (int64_t f = 0; f < 16; ++f)
        feed(t, f, 0.1);
    EXPECT_TRUE(feed(t, 16, 0.9).empty());
    EXPECT_GE(t.burnFast(0, 0), 2.0);
    EXPECT_LT(t.burnSlow(0, 0), 1.0);
    for (int64_t f = 17; f < 30; ++f)
        EXPECT_TRUE(feed(t, f, 0.1).empty()) << "frame " << f;
    EXPECT_FALSE(t.alerting(0, 0));
}

TEST(SloTracker, ClearsWhenFastWindowRecovers)
{
    SloTracker t(parseSloRules("m<0.5@4f"));
    for (int64_t f = 0; f < 4; ++f)
        feed(t, f, 0.9);
    ASSERT_TRUE(t.alerting(0, 0));
    // Three good frames still leave one violation in the fast window
    // (burn_fast = 2.5): the alert holds.
    feed(t, 4, 0.1);
    feed(t, 5, 0.1);
    EXPECT_TRUE(t.alerting(0, 0));
    feed(t, 6, 0.1);
    const auto events = feed(t, 7, 0.1); // fast window now clean
    ASSERT_EQ(events.size(), 1u);
    EXPECT_FALSE(events[0].firing);
    EXPECT_FALSE(t.alerting(0, 0));
}

TEST(SloTracker, FrameGapResetsWindows)
{
    SloTracker t(parseSloRules("m<0.5@4f"));
    feed(t, 0, 0.9);
    feed(t, 1, 0.9);
    feed(t, 2, 0.9);
    // Frame 3 is skipped: the pre-gap violations must not carry over,
    // so three more violating frames still cannot fill a fast window.
    EXPECT_TRUE(feed(t, 4, 0.9).empty());
    EXPECT_TRUE(feed(t, 5, 0.9).empty());
    EXPECT_TRUE(feed(t, 6, 0.9).empty());
    EXPECT_FALSE(t.alerting(0, 0));
    // The fourth post-gap violation completes the new window.
    EXPECT_EQ(feed(t, 7, 0.9).size(), 1u);
}

TEST(SloTracker, RewindResetsLikeAResume)
{
    SloTracker t(parseSloRules("m<0.5@4f"));
    for (int64_t f = 0; f < 3; ++f)
        feed(t, f, 0.9);
    // A resume replays from an earlier frame number.
    EXPECT_TRUE(feed(t, 1, 0.9).empty());
    EXPECT_TRUE(feed(t, 2, 0.9).empty());
    EXPECT_TRUE(feed(t, 3, 0.9).empty());
    EXPECT_EQ(feed(t, 4, 0.9).size(), 1u);
}

TEST(SloTracker, NanSamplesCountAsSatisfied)
{
    SloTracker t(parseSloRules("m<0.5@4f"));
    for (int64_t f = 0; f < 12; ++f)
        EXPECT_TRUE(feed(t, f, kNaN).empty());
    EXPECT_FALSE(t.alerting(0, 0));
    // A quarantined (NaN) stream also cannot keep a fired alert alive.
    SloTracker u(parseSloRules("m<0.5@4f"));
    for (int64_t f = 0; f < 4; ++f)
        feed(u, f, 0.9);
    ASSERT_TRUE(u.alerting(0, 0));
    for (int64_t f = 4; f < 8; ++f)
        feed(u, f, kNaN);
    EXPECT_FALSE(u.alerting(0, 0));
}

TEST(SloTracker, EntitiesTrackIndependently)
{
    SloTracker t(parseSloRules("m<0.5@4f"));
    for (int64_t f = 0; f < 3; ++f)
        EXPECT_TRUE(t.observeFrame(f, {{0.9, 0.1}}).empty());
    const auto events = t.observeFrame(3, {{0.9, 0.1}});
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].entity, 0u);
    EXPECT_TRUE(t.alerting(0, 0));
    EXPECT_FALSE(t.alerting(0, 1));
    EXPECT_TRUE(t.anyAlerting(0));
    EXPECT_FALSE(t.anyAlerting(1));
}

TEST(SloTracker, EntitiesMayGrowBetweenFrames)
{
    SloTracker t(parseSloRules("m<0.5@4f"));
    feed(t, 0, 0.9);
    // A second entity appears mid-run; its window starts fresh.
    for (int64_t f = 1; f < 4; ++f)
        t.observeFrame(f, {{0.9, 0.9}});
    EXPECT_TRUE(t.alerting(0, 0));  // four violations
    EXPECT_FALSE(t.alerting(0, 1)); // only three
}

TEST(SloTracker, MultipleRulesEvaluateIndependently)
{
    SloTracker t(parseSloRules("m<0.5@4f,n>10@2f"));
    for (int64_t f = 0; f < 4; ++f)
        t.observeFrame(f, {{0.1}, {20.0}}); // both satisfied
    EXPECT_FALSE(t.anyAlerting(0));
    for (int64_t f = 4; f < 6; ++f)
        t.observeFrame(f, {{0.1}, {5.0}}); // only rule 1 violates
    EXPECT_FALSE(t.alerting(0, 0));
    EXPECT_TRUE(t.alerting(1, 0));
}

TEST(SloTracker, RejectsBadBudget)
{
    try {
        SloTracker t(parseSloRules("m<0.5@4f"), 0.0);
        FAIL() << "zero budget must throw";
    } catch (const Exception &e) {
        EXPECT_EQ(e.code(), ErrorCode::BadArgument);
    }
}

} // namespace
} // namespace mltc
