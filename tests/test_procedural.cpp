/**
 * @file
 * Tests for procedural texture synthesis: determinism, dimensions,
 * structural properties (mortar lines, window grids, alpha cutouts) and
 * value ranges.
 */
#include <gtest/gtest.h>

#include "texture/procedural.hpp"

namespace mltc {
namespace {

TEST(FractalNoise, DeterministicAndBounded)
{
    for (int i = 0; i < 100; ++i) {
        float a = fractalNoise(i * 7, i * 3, 256, 42);
        float b = fractalNoise(i * 7, i * 3, 256, 42);
        EXPECT_EQ(a, b);
        EXPECT_GE(a, 0.0f);
        EXPECT_LE(a, 1.0f);
    }
}

TEST(FractalNoise, SeedChangesField)
{
    int diff = 0;
    for (int i = 0; i < 50; ++i)
        if (fractalNoise(i, i, 256, 1) != fractalNoise(i, i, 256, 2))
            ++diff;
    EXPECT_GT(diff, 40);
}

TEST(Checker, AlternatesCells)
{
    Image img = makeChecker(8, 2, 1, 2);
    EXPECT_EQ(img.texel(0, 0), 1u);
    EXPECT_EQ(img.texel(2, 0), 2u);
    EXPECT_EQ(img.texel(0, 2), 2u);
    EXPECT_EQ(img.texel(2, 2), 1u);
}

class GeneratorTest : public ::testing::TestWithParam<int>
{
};

/** Every generator yields the requested power-of-two size and is
 *  deterministic in its seed. */
TEST_P(GeneratorTest, SizeAndDeterminism)
{
    const uint32_t size = 64;
    const uint64_t seed = 99;
    auto make = [&](uint64_t s) -> Image {
        switch (GetParam()) {
          case 0: return makeBrickWall(size, s);
          case 1: return makeRoofShingles(size, s);
          case 2: return makeGrass(size, s);
          case 3: return makeDirt(size, s);
          case 4: return makeRoad(size, s);
          case 5: return makeFacade(size, s, 4, 4);
          case 6: return makeSky(size, s);
          case 7: return makeWoodPlanks(size, s);
          case 8: return makeStone(size, s);
          case 9: return makeFoliage(size, s);
          default: return makePlaster(size, s);
        }
    };
    Image a = make(seed);
    Image b = make(seed);
    ASSERT_EQ(a.width(), size);
    ASSERT_EQ(a.height(), size);
    EXPECT_EQ(a.data(), b.data());
    // A different seed must change at least some texels (sky gradient
    // dominated images still have noise clouds).
    Image c = make(seed + 1);
    EXPECT_NE(a.data(), c.data());
}

INSTANTIATE_TEST_SUITE_P(AllGenerators, GeneratorTest,
                         ::testing::Range(0, 11));

TEST(Brick, HasDistinctMortarAndBrickColors)
{
    Image img = makeBrickWall(64, 5);
    // Bricks are red-dominant; mortar is grey (R ~= G). Expect both
    // kinds of texel to appear.
    int red_dominant = 0, greyish = 0;
    for (uint32_t y = 0; y < 64; ++y)
        for (uint32_t x = 0; x < 64; ++x) {
            uint32_t t = img.texel(x, y);
            int r = channel(t, 0), g = channel(t, 1);
            if (r > g + 40)
                ++red_dominant;
            else if (std::abs(r - g) < 25)
                ++greyish;
        }
    EXPECT_GT(red_dominant, 64 * 64 / 4);
    EXPECT_GT(greyish, 64 * 64 / 20);
}

TEST(Facade, HasLitAndDarkWindows)
{
    Image img = makeFacade(128, 7, 6, 6);
    int bright = 0, dark = 0;
    for (uint32_t y = 0; y < 128; ++y)
        for (uint32_t x = 0; x < 128; ++x) {
            uint32_t t = img.texel(x, y);
            int lum = channel(t, 0) + channel(t, 1) + channel(t, 2);
            if (lum > 470) // lit windows reach ~(242,217,102)
                ++bright;
            if (lum < 220)
                ++dark;
        }
    EXPECT_GT(dark, 100) << "expected unlit window texels";
    EXPECT_GT(bright, 0) << "expected some lit windows or highlights";
}

TEST(Foliage, HasTransparentGaps)
{
    Image img = makeFoliage(64, 11);
    int transparent = 0, opaque = 0;
    for (uint32_t y = 0; y < 64; ++y)
        for (uint32_t x = 0; x < 64; ++x) {
            if (channel(img.texel(x, y), 3) == 0)
                ++transparent;
            else
                ++opaque;
        }
    EXPECT_GT(transparent, 64);
    EXPECT_GT(opaque, 64 * 64 / 4);
    // Corners are outside the canopy disc.
    EXPECT_EQ(channel(img.texel(0, 0), 3), 0);
}

TEST(Sky, TopDarkerBlueThanBottom)
{
    Image img = makeSky(64, 13);
    // The gradient runs darker blue at y=0 to pale at y=max; compare
    // average red channel (pale has more red).
    long top = 0, bottom = 0;
    for (uint32_t x = 0; x < 64; ++x) {
        top += channel(img.texel(x, 1), 0);
        bottom += channel(img.texel(x, 62), 0);
    }
    EXPECT_LT(top, bottom);
}

TEST(Grass, IsGreenDominant)
{
    Image img = makeGrass(64, 17);
    long r = 0, g = 0, b = 0;
    for (uint32_t y = 0; y < 64; ++y)
        for (uint32_t x = 0; x < 64; ++x) {
            uint32_t t = img.texel(x, y);
            r += channel(t, 0);
            g += channel(t, 1);
            b += channel(t, 2);
        }
    EXPECT_GT(g, r);
    EXPECT_GT(g, b);
}

TEST(Road, HasLaneMarkings)
{
    Image img = makeRoad(128, 19);
    // Some texels near the center column should be yellowish (R,G >> B).
    int markings = 0;
    for (uint32_t y = 0; y < 128; ++y) {
        uint32_t t = img.texel(64, y);
        if (channel(t, 0) > 120 && channel(t, 1) > 110 &&
            channel(t, 2) < 110)
            ++markings;
    }
    EXPECT_GT(markings, 8);
}

} // namespace
} // namespace mltc
