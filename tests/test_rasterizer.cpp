/**
 * @file
 * Rasterizer tests: coverage, perspective correctness, LOD selection,
 * clipping, backface culling, two-sided rendering and the z-prepass
 * extension. A screen-filling textured quad gives exact expectations.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "raster/rasterizer.hpp"
#include "texture/procedural.hpp"

namespace mltc {
namespace {

constexpr float kPi = 3.14159265358979f;

/** Sink recording the mip histogram and access count. */
class HistogramSink final : public TexelAccessSink
{
  public:
    void bindTexture(TextureId) override {}

    void
    access(uint32_t, uint32_t, uint32_t mip) override
    {
        ++total;
        if (mip < 16)
            ++by_mip[mip];
    }

    uint64_t total = 0;
    uint64_t by_mip[16] = {};
};

class RasterizerTest : public ::testing::Test
{
  protected:
    RasterizerTest() : cam(kPi / 2.0f, 1.0f, 0.5f, 500.0f)
    {
        tex = tm.load("checker",
                      MipPyramid(makeChecker(256, 16, packRgba(255, 0, 0),
                                             packRgba(0, 255, 0))));
    }

    /** Vertical quad centred ahead of the camera filling the screen. */
    void
    addFacingQuad(float distance, float size, float uv_repeat = 1.0f)
    {
        auto quad = std::make_shared<Mesh>(
            makeQuadXY(size, size, uv_repeat, uv_repeat));
        // makeQuadXY faces +Z; place it at -distance so it faces the
        // camera at the origin looking down -Z.
        scene.addObject(quad,
                        Mat4::translate({0.0f, -size * 0.5f, -distance}),
                        tex, "quad");
    }

    TextureManager tm;
    TextureId tex;
    Scene scene;
    Camera cam;
};

TEST_F(RasterizerTest, ScreenFillingQuadTexturesEveryPixel)
{
    // fov 90, distance 10: half-height of frustum = 10, so a 40-size
    // quad overfills the screen.
    addFacingQuad(10.0f, 40.0f);
    cam.lookAt({0, 0, 0}, {0, 0, -1});

    Rasterizer raster(64, 64);
    raster.setFilter(FilterMode::Point);
    HistogramSink sink;
    raster.setSink(&sink);
    FrameStats fs = raster.renderFrame(scene, cam, tm);

    EXPECT_EQ(fs.pixels_textured, 64u * 64u);
    EXPECT_EQ(sink.total, 64u * 64u);
    EXPECT_NEAR(fs.depthComplexity(64, 64), 1.0, 1e-6);
}

TEST_F(RasterizerTest, BackfacingQuadIsCulled)
{
    addFacingQuad(10.0f, 40.0f);
    // Looking from behind the quad (from -20 towards +Z).
    cam.lookAt({0, 0, -20}, {0, 0, 0});
    Rasterizer raster(64, 64);
    HistogramSink sink;
    raster.setSink(&sink);
    FrameStats fs = raster.renderFrame(scene, cam, tm);
    EXPECT_EQ(fs.pixels_textured, 0u);
}

TEST_F(RasterizerTest, TwoSidedQuadVisibleFromBehind)
{
    auto quad = std::make_shared<Mesh>(makeQuadXY(40, 40, 1, 1));
    scene.addObject(quad, Mat4::translate({0.0f, -20.0f, -10.0f}), tex,
                    "ts", /*two_sided=*/true);
    cam.lookAt({0, 0, -20}, {0, 0, 0});
    Rasterizer raster(64, 64);
    HistogramSink sink;
    raster.setSink(&sink);
    FrameStats fs = raster.renderFrame(scene, cam, tm);
    EXPECT_GT(fs.pixels_textured, 0u);
}

TEST_F(RasterizerTest, FilterFootprintScalesAccesses)
{
    addFacingQuad(10.0f, 40.0f);
    cam.lookAt({0, 0, 0}, {0, 0, -1});
    uint64_t counts[3];
    FilterMode modes[3] = {FilterMode::Point, FilterMode::Bilinear,
                           FilterMode::Trilinear};
    for (int i = 0; i < 3; ++i) {
        Rasterizer raster(64, 64);
        raster.setFilter(modes[i]);
        HistogramSink sink;
        raster.setSink(&sink);
        raster.renderFrame(scene, cam, tm);
        counts[i] = sink.total;
    }
    EXPECT_EQ(counts[1], counts[0] * 4); // bilinear = 4x point
    EXPECT_GE(counts[2], counts[1]);     // trilinear >= bilinear
    EXPECT_LE(counts[2], counts[0] * 8); // at most 8x point
}

TEST_F(RasterizerTest, LodIncreasesWithDistance)
{
    // The same quad at 4x the distance covers 1/16 the pixels, so each
    // pixel maps ~4x as many texels per axis: mean mip rises by ~2.
    cam.lookAt({0, 0, 0}, {0, 0, -1});
    auto run = [&](float dist) {
        Scene s;
        auto quad = std::make_shared<Mesh>(makeQuadXY(40, 40, 8, 8));
        s.addObject(quad, Mat4::translate({0.0f, -20.0f, -dist}), tex,
                    "q");
        Rasterizer raster(64, 64);
        raster.setFilter(FilterMode::Point);
        HistogramSink sink;
        raster.setSink(&sink);
        raster.renderFrame(s, cam, tm);
        // Weighted mean mip level.
        double acc = 0;
        for (int m = 0; m < 16; ++m)
            acc += m * static_cast<double>(sink.by_mip[m]);
        return acc / static_cast<double>(sink.total);
    };
    double near_mip = run(10.0f);
    double far_mip = run(40.0f);
    EXPECT_GT(far_mip, near_mip + 1.5);
}

TEST_F(RasterizerTest, PerspectiveCorrectInterpolation)
{
    // A ground plane receding to the horizon: with perspective-correct
    // uv, the checker pattern compresses with distance. Verify the v
    // texel frequency at the bottom (near) differs from mid-screen and
    // that no pixel samples outside the expected wrap range (would show
    // as NaN/garbage accesses; the sink counts mips only, so check the
    // frame completes and covers the lower half of the screen).
    auto ground = std::make_shared<Mesh>(makeQuadXZ(200, 200, 16, 16));
    scene.addObject(ground, Mat4::translate({0, -2, -100}), tex, "g");
    cam.lookAt({0, 0, 0}, {0, -0.05f, -1});
    Rasterizer raster(64, 64);
    raster.setFilter(FilterMode::Point);
    HistogramSink sink;
    raster.setSink(&sink);
    FrameStats fs = raster.renderFrame(scene, cam, tm);
    EXPECT_GT(fs.pixels_textured, 64u * 64u / 4);
    // Receding plane must touch several MIP levels (LOD gradient).
    int levels_touched = 0;
    for (int m = 0; m < 16; ++m)
        if (sink.by_mip[m] > 0)
            ++levels_touched;
    EXPECT_GE(levels_touched, 3);
}

TEST_F(RasterizerTest, NearPlaneClippingKeepsPartialTriangles)
{
    // Quad straddling the camera plane: near clip must keep the front
    // part rather than dropping or exploding.
    auto ground = std::make_shared<Mesh>(makeQuadXZ(4, 200, 1, 16));
    scene.addObject(ground, Mat4::translate({0, -1, 0}), tex, "g");
    cam.lookAt({0, 0, 50}, {0, 0, -100});
    Rasterizer raster(64, 64);
    HistogramSink sink;
    raster.setSink(&sink);
    FrameStats fs = raster.renderFrame(scene, cam, tm);
    EXPECT_GT(fs.pixels_textured, 0u);
    EXPECT_LT(fs.pixels_textured, 64u * 64u); // not the whole screen
}

TEST_F(RasterizerTest, FullyBehindCameraDrawsNothing)
{
    addFacingQuad(10.0f, 40.0f);
    cam.lookAt({0, 0, -50}, {0, 0, -100}); // quad is behind the camera
    Rasterizer raster(64, 64);
    HistogramSink sink;
    raster.setSink(&sink);
    FrameStats fs = raster.renderFrame(scene, cam, tm);
    EXPECT_EQ(fs.pixels_textured, 0u);
}

TEST_F(RasterizerTest, FramebufferDepthTestKeepsNearSurface)
{
    // Red quad near, green-ish checker far: final image shows the near
    // surface though both are textured (texture-before-z).
    TextureId red = tm.load(
        "red", MipPyramid(Image(16, 16, packRgba(255, 0, 0))));
    TextureId blue = tm.load(
        "blue", MipPyramid(Image(16, 16, packRgba(0, 0, 255))));
    auto quad = std::make_shared<Mesh>(makeQuadXY(40, 40, 1, 1));
    Scene s;
    s.addObject(quad, Mat4::translate({0, -20, -20}), blue, "far");
    s.addObject(quad, Mat4::translate({0, -20, -10}), red, "near");
    cam.lookAt({0, 0, 0}, {0, 0, -1});

    Rasterizer raster(32, 32);
    Framebuffer fb(32, 32);
    fb.clear();
    raster.setFramebuffer(&fb);
    raster.setFilter(FilterMode::Point);
    FrameStats fs = raster.renderFrame(s, cam, tm);
    EXPECT_NEAR(fs.depthComplexity(32, 32), 2.0, 0.05);
    EXPECT_EQ(channel(fb.pixel(16, 16), 0), 255); // red wins
    EXPECT_EQ(channel(fb.pixel(16, 16), 2), 0);
}

TEST_F(RasterizerTest, ZPrepassEliminatesOccludedTexturing)
{
    TextureId red = tm.load(
        "red", MipPyramid(Image(16, 16, packRgba(255, 0, 0))));
    auto quad = std::make_shared<Mesh>(makeQuadXY(40, 40, 1, 1));
    Scene s;
    s.addObject(quad, Mat4::translate({0, -20, -20}), tex, "far");
    s.addObject(quad, Mat4::translate({0, -20, -10}), red, "near");
    cam.lookAt({0, 0, 0}, {0, 0, -1});

    Rasterizer raster(32, 32);
    raster.setZPrepass(true);
    HistogramSink sink;
    raster.setSink(&sink);
    FrameStats fs = raster.renderFrame(s, cam, tm);
    // Only the visible (near) surface should be textured: d ~= 1.
    EXPECT_NEAR(fs.depthComplexity(32, 32), 1.0, 0.05);
}

TEST_F(RasterizerTest, StatsCountTriangles)
{
    addFacingQuad(10.0f, 40.0f);
    cam.lookAt({0, 0, 0}, {0, 0, -1});
    Rasterizer raster(64, 64);
    HistogramSink sink;
    raster.setSink(&sink);
    FrameStats fs = raster.renderFrame(scene, cam, tm);
    EXPECT_EQ(fs.objects_visible, 1u);
    EXPECT_EQ(fs.triangles_in, 2u);
    EXPECT_GE(fs.triangles_drawn, 2u); // clipping may fan out more
}

TEST_F(RasterizerTest, RejectsBadDimensions)
{
    EXPECT_THROW(Rasterizer(0, 64), std::invalid_argument);
    EXPECT_THROW(Rasterizer(64, -1), std::invalid_argument);
}

TEST(FramebufferTest, DepthTestSemantics)
{
    Framebuffer fb(4, 4);
    fb.clear(0);
    EXPECT_TRUE(fb.shade(1, 1, 0.5f, 42));
    EXPECT_FALSE(fb.shade(1, 1, 0.9f, 7)); // behind: rejected
    EXPECT_EQ(fb.pixel(1, 1), 42u);
    EXPECT_TRUE(fb.shade(1, 1, 0.1f, 9)); // in front: wins
    EXPECT_EQ(fb.pixel(1, 1), 9u);
    EXPECT_FLOAT_EQ(fb.depth(1, 1), 0.1f);
}

TEST(FramebufferTest, DepthMatchesWithEpsilon)
{
    Framebuffer fb(2, 2);
    fb.clear(0);
    fb.depthOnly(0, 0, 0.5f);
    EXPECT_TRUE(fb.depthMatches(0, 0, 0.5f));
    EXPECT_TRUE(fb.depthMatches(0, 0, 0.500001f));
    EXPECT_FALSE(fb.depthMatches(0, 0, 0.6f));
}

TEST(FramebufferTest, ClearResetsDepthNotSize)
{
    Framebuffer fb(2, 2);
    fb.depthOnly(0, 0, 0.5f);
    fb.clearDepth();
    EXPECT_TRUE(fb.depthMatches(0, 0, 1000.0f));
    EXPECT_EQ(fb.width(), 2);
}

} // namespace
} // namespace mltc
