/**
 * @file
 * Unit tests for the victim selectors: clock, exact LRU, FIFO, random.
 */
#include <gtest/gtest.h>

#include <set>

#include "core/replacement.hpp"

namespace mltc {
namespace {

TEST(PolicyParsing, RoundTrips)
{
    for (auto p : {ReplacementPolicy::Clock, ReplacementPolicy::Lru,
                   ReplacementPolicy::Fifo, ReplacementPolicy::Random})
        EXPECT_EQ(parseReplacementPolicy(replacementPolicyName(p)), p);
    EXPECT_THROW(parseReplacementPolicy("bogus"), std::invalid_argument);
}

TEST(Factory, MakesEachKind)
{
    for (auto p : {ReplacementPolicy::Clock, ReplacementPolicy::Lru,
                   ReplacementPolicy::Fifo, ReplacementPolicy::Random}) {
        auto sel = makeVictimSelector(p, 8);
        ASSERT_NE(sel, nullptr);
        uint32_t v = sel->selectVictim();
        EXPECT_LT(v, 8u);
    }
}

// --- Clock -----------------------------------------------------------------

TEST(Clock, EvictsInactiveFirst)
{
    ClockSelector clock(4);
    clock.onAccess(0);
    clock.onAccess(1);
    // 2 and 3 inactive; hand at 0: clears 0,1 then takes 2.
    EXPECT_EQ(clock.selectVictim(), 2u);
    EXPECT_EQ(clock.lastSearchSteps(), 3u);
}

TEST(Clock, SecondChanceSemantics)
{
    ClockSelector clock(2);
    clock.onAccess(0);
    clock.onAccess(1);
    // All active: first sweep clears both, second sweep takes index 0.
    EXPECT_EQ(clock.selectVictim(), 0u);
    // 1's bit was cleared; it goes next.
    EXPECT_EQ(clock.selectVictim(), 1u);
}

TEST(Clock, HandAdvances)
{
    ClockSelector clock(4);
    // No activity: victims come out in circular order.
    EXPECT_EQ(clock.selectVictim(), 0u);
    EXPECT_EQ(clock.selectVictim(), 1u);
    EXPECT_EQ(clock.selectVictim(), 2u);
    EXPECT_EQ(clock.selectVictim(), 3u);
    EXPECT_EQ(clock.selectVictim(), 0u);
}

TEST(Clock, ResetRestoresInitialState)
{
    ClockSelector clock(4);
    clock.onAccess(0);
    clock.selectVictim();
    clock.reset();
    EXPECT_EQ(clock.selectVictim(), 0u);
    EXPECT_EQ(clock.lastSearchSteps(), 1u);
}

TEST(Clock, ApproximatesLruUnderSkew)
{
    // Keep block 5 hot; it should never be chosen over 16 evictions.
    ClockSelector clock(8);
    for (int i = 0; i < 16; ++i) {
        clock.onAccess(5);
        EXPECT_NE(clock.selectVictim(), 5u);
    }
}

// --- LRU ---------------------------------------------------------------------

TEST(Lru, EvictsLeastRecentlyUsed)
{
    LruSelector lru(4);
    lru.onAccess(3);
    lru.onAccess(2);
    lru.onAccess(1);
    lru.onAccess(0);
    // Recency now 0 (MRU) .. 3 (LRU).
    EXPECT_EQ(lru.selectVictim(), 3u);
    lru.onAccess(3); // victim reused -> becomes MRU
    EXPECT_EQ(lru.selectVictim(), 2u);
}

TEST(Lru, TouchMovesToFront)
{
    LruSelector lru(3);
    lru.onAccess(0);
    lru.onAccess(1);
    lru.onAccess(2); // order: 2,1,0
    lru.onAccess(0); // order: 0,2,1
    EXPECT_EQ(lru.selectVictim(), 1u);
}

TEST(Lru, RepeatedTouchOfHeadIsNoop)
{
    LruSelector lru(3);
    lru.onAccess(2);
    lru.onAccess(2);
    lru.onAccess(2);
    EXPECT_EQ(lru.selectVictim(), 1u); // initial order 0,1 behind 2...
}

TEST(Lru, ExhaustiveRotation)
{
    LruSelector lru(4);
    // Touch everything in order; LRU should be the first touched.
    for (uint32_t i = 0; i < 4; ++i)
        lru.onAccess(i);
    EXPECT_EQ(lru.selectVictim(), 0u);
}

TEST(Lru, ResetRestoresOrder)
{
    LruSelector lru(4);
    lru.onAccess(3);
    lru.reset();
    EXPECT_EQ(lru.selectVictim(), 3u); // initial LRU is highest index
}

// --- FIFO ---------------------------------------------------------------------

TEST(Fifo, IgnoresTouches)
{
    FifoSelector fifo(3);
    fifo.onAccess(0);
    fifo.onAccess(0);
    EXPECT_EQ(fifo.selectVictim(), 0u);
    EXPECT_EQ(fifo.selectVictim(), 1u);
    EXPECT_EQ(fifo.selectVictim(), 2u);
    EXPECT_EQ(fifo.selectVictim(), 0u);
}

// --- Random ---------------------------------------------------------------------

TEST(Random, StaysInRangeAndCoversSpace)
{
    RandomSelector rnd(16);
    std::set<uint32_t> seen;
    for (int i = 0; i < 500; ++i) {
        uint32_t v = rnd.selectVictim();
        ASSERT_LT(v, 16u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 16u); // all blocks eventually chosen
}

TEST(Random, ResetReproduces)
{
    RandomSelector rnd(16);
    uint32_t first = rnd.selectVictim();
    rnd.selectVictim();
    rnd.reset();
    EXPECT_EQ(rnd.selectVictim(), first);
}

} // namespace
} // namespace mltc
