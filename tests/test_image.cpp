/**
 * @file
 * Unit tests for Image, texel packing and MipPyramid construction.
 */
#include <gtest/gtest.h>

#include "texture/image.hpp"
#include "texture/mip_pyramid.hpp"

namespace mltc {
namespace {

TEST(TexelPacking, RoundTripsChannels)
{
    uint32_t t = packRgba(10, 20, 30, 40);
    EXPECT_EQ(channel(t, 0), 10);
    EXPECT_EQ(channel(t, 1), 20);
    EXPECT_EQ(channel(t, 2), 30);
    EXPECT_EQ(channel(t, 3), 40);
}

TEST(TexelPacking, DefaultAlphaOpaque)
{
    EXPECT_EQ(channel(packRgba(1, 2, 3), 3), 255);
}

TEST(PowerOfTwo, Detection)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(256));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_FALSE(isPowerOfTwo(255));
}

TEST(Log2u, Values)
{
    EXPECT_EQ(log2u(1), 0u);
    EXPECT_EQ(log2u(2), 1u);
    EXPECT_EQ(log2u(1024), 10u);
}

TEST(Image, ConstructsWithFill)
{
    Image img(4, 8, 0xdeadbeefu);
    EXPECT_EQ(img.width(), 4u);
    EXPECT_EQ(img.height(), 8u);
    EXPECT_EQ(img.texel(3, 7), 0xdeadbeefu);
    EXPECT_EQ(img.bytes(), 4u * 8u * 4u);
}

TEST(Image, RejectsNonPowerOfTwo)
{
    EXPECT_THROW(Image(3, 4), std::invalid_argument);
    EXPECT_THROW(Image(4, 6), std::invalid_argument);
}

TEST(Image, SetAndGetTexel)
{
    Image img(8, 8);
    img.setTexel(5, 2, 42);
    EXPECT_EQ(img.texel(5, 2), 42u);
    EXPECT_EQ(img.texel(5, 3), 0u);
}

TEST(Image, WrappedAccessRepeats)
{
    Image img(4, 4);
    img.setTexel(1, 2, 7);
    EXPECT_EQ(img.texelWrapped(1 + 4, 2 - 4), 7u);
    EXPECT_EQ(img.texelWrapped(-3, 2), 7u); // -3 mod 4 == 1
}

TEST(MipPyramid, LevelCountForSquare)
{
    MipPyramid p(Image(256, 256));
    EXPECT_EQ(p.levels(), 9u); // 256..1
    EXPECT_EQ(p.level(0).width(), 256u);
    EXPECT_EQ(p.level(8).width(), 1u);
    EXPECT_EQ(p.level(8).height(), 1u);
}

TEST(MipPyramid, LevelCountForRectangular)
{
    MipPyramid p(Image(64, 16));
    // Levels: 64x16, 32x8, 16x4, 8x2, 4x1, 2x1, 1x1 -> 7 levels.
    EXPECT_EQ(p.levels(), 7u);
    EXPECT_EQ(p.level(4).width(), 4u);
    EXPECT_EQ(p.level(4).height(), 1u);
}

TEST(MipPyramid, BoxFilterAveragesUniformImage)
{
    Image base(8, 8, packRgba(100, 100, 100, 255));
    MipPyramid p(std::move(base));
    for (uint32_t m = 0; m < p.levels(); ++m)
        EXPECT_EQ(channel(p.level(m).texel(0, 0), 0), 100);
}

TEST(MipPyramid, BoxFilterAveragesCheckerToMid)
{
    Image base(2, 2);
    base.setTexel(0, 0, packRgba(0, 0, 0));
    base.setTexel(1, 0, packRgba(200, 0, 0));
    base.setTexel(0, 1, packRgba(200, 0, 0));
    base.setTexel(1, 1, packRgba(0, 0, 0));
    MipPyramid p(std::move(base));
    EXPECT_EQ(p.levels(), 2u);
    EXPECT_EQ(channel(p.level(1).texel(0, 0), 0), 100);
}

TEST(MipPyramid, TotalTexelsMatchesGeometricSum)
{
    MipPyramid p(Image(16, 16));
    // 256 + 64 + 16 + 4 + 1 = 341
    EXPECT_EQ(p.totalTexels(), 341u);
    EXPECT_EQ(p.totalBytes(), 341u * 4u);
}

TEST(MipPyramid, OneByOneBase)
{
    MipPyramid p(Image(1, 1, 5));
    EXPECT_EQ(p.levels(), 1u);
    EXPECT_EQ(p.totalTexels(), 1u);
}

TEST(MipPyramid, PreservesAlphaChannel)
{
    Image base(4, 4, packRgba(0, 0, 0, 128));
    MipPyramid p(std::move(base));
    EXPECT_EQ(channel(p.level(2).texel(0, 0), 3), 128);
}

} // namespace
} // namespace mltc
