/**
 * @file
 * Unit tests for the set-associative L2 comparison design (§5.1's
 * rejected organisation).
 */
#include <gtest/gtest.h>

#include "core/set_assoc_l2.hpp"
#include "util/rng.hpp"

namespace mltc {
namespace {

class SetAssocTest : public ::testing::Test
{
  protected:
    SetAssocTest()
    {
        tex = tm.load("t", MipPyramid(Image(256, 256)));
    }

    SetAssocL2Config
    config(uint64_t l2_bytes, uint32_t ways)
    {
        SetAssocL2Config c;
        c.l1.size_bytes = 2 * 1024;
        c.l2_size_bytes = l2_bytes;
        c.l2_assoc = ways;
        return c;
    }

    TextureManager tm;
    TextureId tex;
};

TEST_F(SetAssocTest, RejectsBadGeometry)
{
    EXPECT_THROW(SetAssocL2Sim(tm, config(0, 4)), std::invalid_argument);
    EXPECT_THROW(SetAssocL2Sim(tm, config(1024 * 3, 4)),
                 std::invalid_argument);
}

TEST_F(SetAssocTest, ColdMissThenSectorHits)
{
    SetAssocL2Sim sim(tm, config(1 << 20, 4), "sa");
    sim.bindTexture(tex);
    sim.access(0, 0, 0);
    CacheFrameStats fs = sim.endFrame();
    EXPECT_EQ(fs.l1_misses, 1u);
    EXPECT_EQ(fs.l2_full_misses, 1u);
    EXPECT_EQ(fs.host_bytes, 64u);

    // Another texel in the same L1 tile: pure L1 hit.
    sim.access(1, 1, 0);
    // A texel in another sector of the same L2 tile: partial hit.
    sim.access(8, 0, 0);
    fs = sim.endFrame();
    EXPECT_EQ(fs.accesses, 2u);
    EXPECT_EQ(fs.l1_misses, 1u);
    EXPECT_EQ(fs.l2_partial_hits, 1u);
}

TEST_F(SetAssocTest, RevisitAfterL1EvictionIsFullHit)
{
    SetAssocL2Sim sim(tm, config(1 << 20, 4), "sa");
    sim.bindTexture(tex);
    // Walk a region larger than L1 but smaller than L2, twice.
    for (int pass = 0; pass < 2; ++pass)
        for (uint32_t y = 0; y < 128; y += 2)
            for (uint32_t x = 0; x < 128; x += 2)
                sim.access(x, y, 0);
    CacheFrameStats fs = sim.endFrame();
    EXPECT_GT(fs.l2_full_hits, 0u);
    // All downloads happened once; total host bytes equal the distinct
    // sector count times the sector size.
    EXPECT_EQ(fs.host_bytes, (128u / 4) * (128u / 4) * 64u);
}

TEST_F(SetAssocTest, LowAssociativityThrashesUnderConflict)
{
    // Same capacity, different associativity, adversarial pattern that
    // cycles more blocks than one set can hold.
    auto run = [&](uint32_t ways) {
        SetAssocL2Sim sim(tm, config(64 * 1024, ways), "x");
        sim.bindTexture(tex);
        Rng rng(5);
        for (int i = 0; i < 40000; ++i) {
            uint32_t x = static_cast<uint32_t>(rng.below(256));
            uint32_t y = static_cast<uint32_t>(rng.below(256));
            sim.access(x, y, 0);
        }
        return sim.endFrame().host_bytes;
    };
    uint64_t direct = run(1);
    uint64_t four_way = run(4);
    // Under a hashed index and a random stream the two are statistically
    // close; direct-mapped must not be *significantly* better.
    EXPECT_GE(direct, four_way * 95 / 100);
}

TEST_F(SetAssocTest, TotalsAccumulate)
{
    SetAssocL2Sim sim(tm, config(1 << 20, 4), "sa");
    sim.bindTexture(tex);
    sim.access(0, 0, 0);
    sim.endFrame();
    sim.access(64, 64, 0);
    sim.endFrame();
    EXPECT_EQ(sim.totals().l1_misses, 2u);
}

} // namespace
} // namespace mltc
