/**
 * @file
 * End-to-end integration tests: small workloads driven through the full
 * rasterizer -> sinks pipeline, checking cross-module invariants that
 * the paper's experiments rest on.
 */
#include <gtest/gtest.h>

#include "core/push_model.hpp"
#include "sim/multi_config_runner.hpp"
#include "workload/city.hpp"
#include "workload/village.hpp"

namespace mltc {
namespace {

/** A miniature Village for fast end-to-end runs. */
Workload
tinyVillage()
{
    VillageParams p;
    p.houses = 8;
    p.trees = 6;
    p.extent = 120.0f;
    p.ground_texture_size = 128;
    p.wall_texture_size = 128;
    return buildVillage(p);
}

DriverConfig
tinyConfig(FilterMode filter = FilterMode::Bilinear, int frames = 4)
{
    DriverConfig cfg;
    cfg.width = 160;
    cfg.height = 120;
    cfg.filter = filter;
    cfg.frames = frames;
    return cfg;
}

TEST(Integration, RunAnimationProducesAccesses)
{
    Workload wl = tinyVillage();
    CountingSink sink;
    FrameStats total = runAnimation(wl, tinyConfig(), &sink);
    EXPECT_GT(total.pixels_textured, 0u);
    EXPECT_EQ(sink.count, total.texel_accesses);
    // Bilinear: 4 texels per textured pixel.
    EXPECT_EQ(total.texel_accesses, total.pixels_textured * 4);
}

TEST(Integration, DeterministicAcrossRuns)
{
    Workload a = tinyVillage();
    Workload b = tinyVillage();
    CountingSink sa, sb;
    runAnimation(a, tinyConfig(), &sa);
    runAnimation(b, tinyConfig(), &sb);
    EXPECT_EQ(sa.count, sb.count);
}

TEST(Integration, MultiConfigRunnerRowsComplete)
{
    Workload wl = tinyVillage();
    MultiConfigRunner runner(wl, tinyConfig());
    runner.addSim(CacheSimConfig::pull(2 * 1024), "pull");
    runner.addSim(CacheSimConfig::twoLevel(2 * 1024, 1ull << 20), "two");
    runner.addWorkingSets({16}, {4});
    runner.addPushModel();

    int callbacks = 0;
    runner.run([&](const FrameRow &row) {
        ++callbacks;
        ASSERT_EQ(row.sims.size(), 2u);
        ASSERT_TRUE(row.working_sets.has_value());
        EXPECT_GT(row.push_bytes, 0u);
        // Identical access streams: both sims see the same count.
        EXPECT_EQ(row.sims[0].accesses, row.sims[1].accesses);
    });
    EXPECT_EQ(callbacks, 4);
    EXPECT_EQ(runner.rows().size(), 4u);
}

TEST(Integration, L2ArchitectureNeverUsesMoreHostBandwidth)
{
    // The paper's sector-mapping guarantee, end-to-end: with identical
    // L1, the L2 architecture's host traffic is <= pull's in every
    // frame.
    Workload wl = tinyVillage();
    MultiConfigRunner runner(wl, tinyConfig(FilterMode::Trilinear, 6));
    runner.addSim(CacheSimConfig::pull(2 * 1024), "pull");
    runner.addSim(CacheSimConfig::twoLevel(2 * 1024, 2ull << 20), "two");
    runner.run([&](const FrameRow &row) {
        EXPECT_LE(row.sims[1].host_bytes, row.sims[0].host_bytes);
        EXPECT_EQ(row.sims[0].l1_misses, row.sims[1].l1_misses);
    });
}

TEST(Integration, BiggerL1NeverMoreMisses)
{
    Workload wl = tinyVillage();
    MultiConfigRunner runner(wl, tinyConfig());
    runner.addSim(CacheSimConfig::pull(2 * 1024), "2k");
    runner.addSim(CacheSimConfig::pull(16 * 1024), "16k");
    runner.run();
    EXPECT_LE(runner.sims()[1]->totals().l1_misses,
              runner.sims()[0]->totals().l1_misses);
}

TEST(Integration, BiggerL2NeverMoreHostBytes)
{
    Workload wl = tinyVillage();
    MultiConfigRunner runner(wl, tinyConfig(FilterMode::Bilinear, 6));
    runner.addSim(CacheSimConfig::twoLevel(2 * 1024, 512 * 1024), "small");
    runner.addSim(CacheSimConfig::twoLevel(2 * 1024, 4ull << 20), "big");
    runner.run();
    EXPECT_LE(runner.sims()[1]->totals().host_bytes,
              runner.sims()[0]->totals().host_bytes * 11 / 10);
}

TEST(Integration, WorkingSetNewLessThanTotalAfterWarmup)
{
    Workload wl = tinyVillage();
    MultiConfigRunner runner(wl, tinyConfig(FilterMode::Point, 8));
    runner.addWorkingSets({16}, {4});
    runner.run();
    for (const auto &row : runner.rows()) {
        if (row.frame == 0)
            continue;
        const auto &ws = row.working_sets->l2[0];
        EXPECT_LE(ws.blocks_new, ws.blocks_touched);
        // Incremental camera: most blocks repeat from last frame.
        EXPECT_LT(ws.blocks_new, ws.blocks_touched);
    }
}

TEST(Integration, ZPrepassReducesAccessesNotCoverage)
{
    Workload wl = tinyVillage();
    DriverConfig base = tinyConfig(FilterMode::Bilinear, 3);
    DriverConfig zp = base;
    zp.z_prepass = true;

    CountingSink s1, s2;
    FrameStats f1 = runAnimation(wl, base, &s1);
    FrameStats f2 = runAnimation(wl, zp, &s2);
    EXPECT_LT(f2.pixels_textured, f1.pixels_textured);
    EXPECT_GT(f2.pixels_textured, 0u);
}

TEST(Integration, TrilinearUsesMoreBandwidthThanBilinear)
{
    Workload wl = tinyVillage();
    uint64_t bytes[2];
    for (int i = 0; i < 2; ++i) {
        MultiConfigRunner runner(
            wl, tinyConfig(i ? FilterMode::Trilinear : FilterMode::Bilinear,
                           4));
        runner.addSim(CacheSimConfig::pull(2 * 1024), "p");
        runner.run();
        bytes[i] = runner.sims()[0]->totals().host_bytes;
    }
    EXPECT_GT(bytes[1], bytes[0]);
}

TEST(Integration, CityRunsEndToEnd)
{
    CityParams p;
    p.blocks_x = p.blocks_z = 3;
    p.facade_texture_size = 64;
    Workload wl = buildCity(p);
    MultiConfigRunner runner(wl, tinyConfig(FilterMode::Trilinear, 4));
    CacheSimConfig sc = CacheSimConfig::twoLevel(2 * 1024, 1ull << 20);
    sc.tlb_entries = 8;
    runner.addSim(sc, "city-sim");
    runner.run();
    const CacheFrameStats &t = runner.sims()[0]->totals();
    EXPECT_GT(t.accesses, 0u);
    EXPECT_GT(t.tlb_probes, 0u);
    EXPECT_GT(t.l1HitRate(), 0.5);
}

} // namespace
} // namespace mltc
