/**
 * @file
 * Robustness fuzzing for the rasterizer: random triangles, cameras and
 * degenerate geometry must never crash, emit out-of-range accesses or
 * produce non-finite statistics.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "raster/rasterizer.hpp"
#include "texture/procedural.hpp"
#include "util/rng.hpp"

namespace mltc {
namespace {

constexpr float kPi = 3.14159265358979f;

/** Sink asserting every access stays within the bound texture. */
class BoundsCheckSink final : public TexelAccessSink
{
  public:
    explicit BoundsCheckSink(const TextureManager &tm) : tm_(tm) {}

    void bindTexture(TextureId tid) override { tid_ = tid; }

    void
    access(uint32_t x, uint32_t y, uint32_t mip) override
    {
        const MipPyramid &pyr = tm_.texture(tid_).pyramid;
        ASSERT_LT(mip, pyr.levels());
        ASSERT_LT(x, pyr.level(mip).width());
        ASSERT_LT(y, pyr.level(mip).height());
        ++count;
    }

    uint64_t count = 0;

  private:
    const TextureManager &tm_;
    TextureId tid_ = 0;
};

class RasterFuzz : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RasterFuzz, RandomTrianglesNeverMisbehave)
{
    TextureManager tm;
    TextureId tex = tm.load(
        "t", MipPyramid(makeChecker(64, 4, 0xff112233u, 0xffccddeeu)));

    Rng rng(GetParam());
    Scene scene;
    for (int i = 0; i < 40; ++i) {
        Mesh m;
        for (int v = 0; v < 3; ++v)
            m.vertices.push_back(
                {{rng.uniformf(-100, 100), rng.uniformf(-100, 100),
                  rng.uniformf(-100, 100)},
                 {rng.uniformf(-4, 4), rng.uniformf(-4, 4)}});
        m.indices = {0, 1, 2};
        scene.addObject(std::make_shared<Mesh>(std::move(m)),
                        Mat4::identity(), tex,
                        "tri" + std::to_string(i), rng.chance(0.5));
    }
    // Degenerate geometry: zero-area triangle, duplicate vertices.
    Mesh degen;
    degen.vertices = {{{0, 0, -5}, {0, 0}},
                      {{0, 0, -5}, {1, 0}},
                      {{0, 0, -5}, {0, 1}}};
    degen.indices = {0, 1, 2};
    scene.addObject(std::make_shared<Mesh>(std::move(degen)),
                    Mat4::identity(), tex, "degenerate");

    BoundsCheckSink sink(tm);
    Rasterizer raster(48, 48);
    raster.setSink(&sink);
    FilterMode modes[] = {FilterMode::Point, FilterMode::Bilinear,
                          FilterMode::Trilinear};
    raster.setFilter(modes[GetParam() % 3]);

    for (int f = 0; f < 6; ++f) {
        Camera cam(kPi / 3.0f, 1.0f, 0.25f, 300.0f);
        Vec3 eye{rng.uniformf(-50, 50), rng.uniformf(-50, 50),
                 rng.uniformf(-50, 50)};
        Vec3 tgt{rng.uniformf(-50, 50), rng.uniformf(-50, 50),
                 rng.uniformf(-50, 50)};
        cam.lookAt(eye, tgt);
        FrameStats fs = raster.renderFrame(scene, cam, tm);
        // Stats must be finite and internally consistent.
        ASSERT_LE(fs.pixels_textured, 48ull * 48ull * 82ull);
        ASSERT_LE(fs.triangles_drawn, fs.triangles_in * 8);
        ASSERT_EQ(fs.objects_visible <= scene.objects().size(), true);
    }
    SUCCEED();
}

TEST_P(RasterFuzz, CameraInsideGeometryIsSafe)
{
    TextureManager tm;
    TextureId tex = tm.load("t", MipPyramid(Image(32, 32, 0xffffffffu)));
    Scene scene;
    auto box = std::make_shared<Mesh>(makeBox(10, 10, 10, 0.5f));
    scene.addObject(box, Mat4::identity(), tex, "box");

    Rng rng(GetParam() ^ 0xabcdeull);
    Rasterizer raster(32, 32);
    BoundsCheckSink sink(tm);
    raster.setSink(&sink);
    for (int f = 0; f < 10; ++f) {
        Camera cam(kPi / 2.0f, 1.0f, 0.1f, 100.0f);
        // Camera inside and around the box, including right at faces.
        cam.lookAt({rng.uniformf(-6, 6), rng.uniformf(0, 10),
                    rng.uniformf(-6, 6)},
                   {rng.uniformf(-6, 6), rng.uniformf(0, 10),
                    rng.uniformf(-6, 6)});
        raster.renderFrame(scene, cam, tm);
    }
    SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RasterFuzz,
                         ::testing::Values(11ull, 22ull, 33ull, 44ull,
                                           55ull, 66ull));

} // namespace
} // namespace mltc
