/**
 * @file
 * The tentpole parallelism property: a sweep of independent simulation
 * legs run through SweepExecutor produces *byte-identical* observable
 * output no matter the worker count. For filters × fault-injection
 * on/off × jobs ∈ {1, 2, 8} this asserts equality of
 *
 *  - every per-frame counter of every leg (FrameRow-level equality),
 *  - the sweep CSV assembled from per-leg results in leg order,
 *  - the merged per-leg metrics JSONL stream,
 *  - the final per-leg checkpoint snapshots (.snap bytes), and
 *  - the sweep manifest CSV.
 *
 * Extends the PR 2 resume-equivalence pattern: legs are complete
 * runner passes over their own tiny Workload, exactly how the bench
 * drivers and cache_explorer use the executor.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "obs/observability.hpp"
#include "sim/multi_config_runner.hpp"
#include "sim/parallel_runner.hpp"
#include "util/csv.hpp"
#include "workload/village.hpp"

namespace mltc {
namespace {

Workload
tiny()
{
    VillageParams p;
    p.houses = 4;
    p.trees = 2;
    p.extent = 80.0f;
    p.ground_texture_size = 64;
    p.wall_texture_size = 64;
    return buildVillage(p);
}

DriverConfig
driver(FilterMode filter, int frames)
{
    DriverConfig cfg;
    cfg.width = 64;
    cfg.height = 48;
    cfg.filter = filter;
    cfg.frames = frames;
    return cfg;
}

HostPathConfig
faultyHost()
{
    HostPathConfig host;
    host.fault_injection = true;
    host.faults.seed = 99;
    host.faults.drop_rate = 0.12;
    host.faults.corrupt_rate = 0.05;
    host.faults.spike_rate = 0.05;
    host.faults.burst_period = 150;
    host.faults.burst_length = 15;
    return host;
}

/** One leg of the sweep grid. */
struct LegSpec
{
    std::string name;
    FilterMode filter;
    bool faults;
};

std::vector<LegSpec>
grid()
{
    return {
        {"bilinear/clean", FilterMode::Bilinear, false},
        {"bilinear/faults", FilterMode::Bilinear, true},
        {"trilinear/clean", FilterMode::Trilinear, false},
        {"trilinear/faults", FilterMode::Trilinear, true},
    };
}

// PID-suffixed: ctest runs cases as parallel processes.
std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + name + "." + std::to_string(getpid());
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Everything observable one sweep run produced. */
struct SweepArtifacts
{
    std::vector<std::vector<FrameRow>> rows; ///< per leg
    std::string csv;                         ///< assembled sweep CSV
    std::string metrics;                     ///< merged per-leg JSONL
    std::vector<std::string> snaps;          ///< per-leg snapshot bytes
    std::string manifest_csv;                ///< sweep manifest bytes
};

/**
 * Run the whole grid at the given worker count the same way the bench
 * drivers do: per-leg Workload/runner/sims/metrics/checkpoint, results
 * into leg-indexed slots, files emitted in leg order after the run.
 */
SweepArtifacts
runSweep(unsigned jobs, int frames)
{
    const std::vector<LegSpec> legs = grid();
    const std::string base =
        tempPath("par_eq_j" + std::to_string(jobs));

    SweepArtifacts art;
    art.rows.resize(legs.size());

    SweepExecutor sweep(jobs);
    for (size_t i = 0; i < legs.size(); ++i) {
        const LegSpec &spec = legs[i];
        sweep.addLeg(spec.name, [&, i, spec](LegContext &) {
            Workload wl = tiny();
            MultiConfigRunner runner(wl, driver(spec.filter, frames));
            const HostPathConfig host =
                spec.faults ? faultyHost() : HostPathConfig{};
            CacheSimConfig pull = CacheSimConfig::pull(128 << 10);
            pull.host = host;
            runner.addSim(pull, "pull");
            CacheSimConfig two =
                CacheSimConfig::twoLevel(128 << 10, 2ull << 20);
            two.tlb_entries = 8;
            two.host = host;
            runner.addSim(two, "l2-2mb");

            ObsConfig oc;
            oc.metrics_path = base + ".leg" + std::to_string(i) + ".jsonl";
            Observability obs(oc, /*install_process_hooks=*/false);
            runner.setObservability(&obs);

            ResilienceConfig rc;
            rc.checkpoint_path =
                base + ".leg" + std::to_string(i) + ".snap";
            RunManifest m = runner.runSupervised(rc);
            EXPECT_EQ(m.outcome, RunOutcome::Completed) << spec.name;
            obs.close();
            art.rows[i] = runner.rows();
        });
    }
    SweepManifest manifest = sweep.run();
    EXPECT_TRUE(manifest.allCompleted()) << "jobs=" << jobs;
    manifest.writeCsv(base + ".manifest.csv");

    // Emit the sweep CSV from per-leg results, strictly in leg order.
    {
        CsvWriter csv(base + ".csv",
                      {"leg", "frame", "sim", "accesses", "l1_misses",
                       "host_bytes", "host_retries", "degraded"});
        for (size_t i = 0; i < legs.size(); ++i)
            for (const FrameRow &row : art.rows[i])
                for (size_t s = 0; s < row.sims.size(); ++s) {
                    const CacheFrameStats &st = row.sims[s];
                    csv.rowStrings(
                        {legs[i].name, std::to_string(row.frame),
                         std::to_string(s), std::to_string(st.accesses),
                         std::to_string(st.l1_misses),
                         std::to_string(st.host_bytes),
                         std::to_string(st.host_retries),
                         std::to_string(st.degraded_accesses)});
                }
        csv.close();
    }
    // Merge per-leg metrics JSONL in leg order, exactly like
    // cache_explorer's --jobs path does.
    for (size_t i = 0; i < legs.size(); ++i)
        art.metrics += slurp(base + ".leg" + std::to_string(i) + ".jsonl");
    for (size_t i = 0; i < legs.size(); ++i)
        art.snaps.push_back(
            slurp(base + ".leg" + std::to_string(i) + ".snap"));
    art.csv = slurp(base + ".csv");
    art.manifest_csv = slurp(base + ".manifest.csv");

    for (size_t i = 0; i < legs.size(); ++i) {
        std::remove((base + ".leg" + std::to_string(i) + ".jsonl").c_str());
        std::remove((base + ".leg" + std::to_string(i) + ".snap").c_str());
        std::remove(
            (base + ".leg" + std::to_string(i) + ".snap.manifest").c_str());
    }
    std::remove((base + ".csv").c_str());
    std::remove((base + ".manifest.csv").c_str());
    return art;
}

void
expectRowsEqual(const std::vector<FrameRow> &a,
                const std::vector<FrameRow> &b, const std::string &ctx)
{
    ASSERT_EQ(a.size(), b.size()) << ctx;
    for (size_t i = 0; i < a.size(); ++i) {
        const FrameRow &x = a[i];
        const FrameRow &y = b[i];
        const std::string at = ctx + " row " + std::to_string(i);
        EXPECT_EQ(x.frame, y.frame) << at;
        EXPECT_EQ(x.raster.texel_accesses, y.raster.texel_accesses) << at;
        EXPECT_EQ(x.raster.pixels_textured, y.raster.pixels_textured) << at;
        ASSERT_EQ(x.sims.size(), y.sims.size()) << at;
        for (size_t s = 0; s < x.sims.size(); ++s) {
            const CacheFrameStats &p = x.sims[s];
            const CacheFrameStats &q = y.sims[s];
            const std::string sim = at + " sim " + std::to_string(s);
            EXPECT_EQ(p.accesses, q.accesses) << sim;
            EXPECT_EQ(p.l1_misses, q.l1_misses) << sim;
            EXPECT_EQ(p.l2_full_hits, q.l2_full_hits) << sim;
            EXPECT_EQ(p.l2_partial_hits, q.l2_partial_hits) << sim;
            EXPECT_EQ(p.l2_full_misses, q.l2_full_misses) << sim;
            EXPECT_EQ(p.host_bytes, q.host_bytes) << sim;
            EXPECT_EQ(p.l2_read_bytes, q.l2_read_bytes) << sim;
            EXPECT_EQ(p.tlb_probes, q.tlb_probes) << sim;
            EXPECT_EQ(p.tlb_hits, q.tlb_hits) << sim;
            EXPECT_EQ(p.host_retries, q.host_retries) << sim;
            EXPECT_EQ(p.host_failures, q.host_failures) << sim;
            EXPECT_EQ(p.degraded_accesses, q.degraded_accesses) << sim;
        }
    }
}

TEST(ParallelEquivalence, ThreadCountInvariantBytes)
{
    const int frames = 3;
    const SweepArtifacts serial = runSweep(1, frames);
    ASSERT_EQ(serial.rows.size(), grid().size());
    ASSERT_FALSE(serial.csv.empty());
    ASSERT_FALSE(serial.metrics.empty());

    for (unsigned jobs : {2u, 8u}) {
        const SweepArtifacts par = runSweep(jobs, frames);
        const std::string ctx = "jobs=" + std::to_string(jobs);
        ASSERT_EQ(par.rows.size(), serial.rows.size()) << ctx;
        for (size_t i = 0; i < serial.rows.size(); ++i)
            expectRowsEqual(serial.rows[i], par.rows[i],
                            ctx + " leg " + grid()[i].name);
        EXPECT_EQ(par.csv, serial.csv) << ctx;
        EXPECT_EQ(par.metrics, serial.metrics) << ctx;
        ASSERT_EQ(par.snaps.size(), serial.snaps.size()) << ctx;
        for (size_t i = 0; i < serial.snaps.size(); ++i) {
            EXPECT_FALSE(serial.snaps[i].empty())
                << ctx << " leg " << i << " snapshot missing";
            EXPECT_EQ(par.snaps[i], serial.snaps[i])
                << ctx << " leg " << i << " snapshot bytes differ";
        }
        EXPECT_EQ(par.manifest_csv, serial.manifest_csv) << ctx;
    }
}

TEST(ParallelEquivalence, RepeatedParallelRunsAreStable)
{
    // Two identical --jobs 8 sweeps must agree with each other too
    // (guards against any hidden cross-leg state, e.g. a shared RNG).
    const SweepArtifacts a = runSweep(8, 2);
    const SweepArtifacts b = runSweep(8, 2);
    EXPECT_EQ(a.csv, b.csv);
    EXPECT_EQ(a.metrics, b.metrics);
    ASSERT_EQ(a.snaps.size(), b.snaps.size());
    for (size_t i = 0; i < a.snaps.size(); ++i)
        EXPECT_EQ(a.snaps[i], b.snaps[i]) << "leg " << i;
}

} // namespace
} // namespace mltc
