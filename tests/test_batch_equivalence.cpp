/**
 * @file
 * Differential harness for the batched access path
 * (docs/batched_access.md): the batched and scalar pipelines must be
 * *byte-identical* — every CacheFrameStats counter, every snapshot
 * payload byte — over real workloads (Village, City), a synthetic L2
 * thrasher, every filter mode, fault injection, 3C classification and
 * TLB modelling; plus property/fuzz coverage of accessBatch() itself
 * (empty spans, length-1 spans, non-SIMD-width tails, MIP/texture
 * boundaries inside one span, duplicate texels against the coalescing
 * filter).
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/cache_sim.hpp"
#include "raster/rasterizer.hpp"
#include "util/rng.hpp"
#include "util/serializer.hpp"
#include "workload/city.hpp"
#include "workload/village.hpp"

namespace mltc {
namespace {

/** Restores the process-wide batching toggle on scope exit. */
struct BatchToggleGuard
{
    bool saved = batchedAccess();
    ~BatchToggleGuard() { setBatchedAccess(saved); }
};

/** Complete simulator state as bytes — the strongest equality there is. */
std::vector<uint8_t>
snapshotBytes(const CacheSim &sim)
{
    SnapshotWriter w("unused-never-finished");
    sim.save(w);
    return w.payload();
}

/** Every field of CacheFrameStats, not just the headline counters. */
void
expectStatsEqual(const CacheFrameStats &a, const CacheFrameStats &b,
                 const std::string &ctx)
{
    EXPECT_EQ(a.accesses, b.accesses) << ctx;
    EXPECT_EQ(a.l1_misses, b.l1_misses) << ctx;
    EXPECT_EQ(a.l2_full_hits, b.l2_full_hits) << ctx;
    EXPECT_EQ(a.l2_partial_hits, b.l2_partial_hits) << ctx;
    EXPECT_EQ(a.l2_full_misses, b.l2_full_misses) << ctx;
    EXPECT_EQ(a.host_bytes, b.host_bytes) << ctx;
    EXPECT_EQ(a.l2_read_bytes, b.l2_read_bytes) << ctx;
    EXPECT_EQ(a.tlb_probes, b.tlb_probes) << ctx;
    EXPECT_EQ(a.tlb_hits, b.tlb_hits) << ctx;
    EXPECT_EQ(a.victim_steps_max, b.victim_steps_max) << ctx;
    EXPECT_EQ(a.host_retries, b.host_retries) << ctx;
    EXPECT_EQ(a.host_failures, b.host_failures) << ctx;
    EXPECT_EQ(a.degraded_accesses, b.degraded_accesses) << ctx;
    EXPECT_EQ(a.degraded_mip_bias, b.degraded_mip_bias) << ctx;
    EXPECT_EQ(a.l1_compulsory, b.l1_compulsory) << ctx;
    EXPECT_EQ(a.l1_capacity, b.l1_capacity) << ctx;
    EXPECT_EQ(a.l1_conflict, b.l1_conflict) << ctx;
    EXPECT_EQ(a.l2_compulsory, b.l2_compulsory) << ctx;
    EXPECT_EQ(a.l2_capacity, b.l2_capacity) << ctx;
    EXPECT_EQ(a.l2_conflict, b.l2_conflict) << ctx;
}

Workload
tinyVillage()
{
    VillageParams p;
    p.houses = 4;
    p.trees = 2;
    p.extent = 80.0f;
    p.ground_texture_size = 64;
    p.wall_texture_size = 64;
    return buildVillage(p);
}

Workload
tinyCity()
{
    CityParams p;
    p.blocks_x = 3;
    p.blocks_z = 3;
    p.facade_texture_size = 64;
    p.large_facades = 1;
    return buildCity(p);
}

HostPathConfig
faultyHost()
{
    HostPathConfig host;
    host.fault_injection = true;
    host.faults.seed = 1234;
    host.faults.drop_rate = 0.15;
    host.faults.corrupt_rate = 0.08;
    host.faults.spike_rate = 0.05;
    host.faults.burst_period = 200;
    host.faults.burst_length = 20;
    return host;
}

/**
 * The rendering differential: the same workload rendered twice through
 * the full rasterizer → sampler → CacheSim pipeline, once batched and
 * once scalar, must produce identical per-frame stats and an identical
 * end-state snapshot.
 */
void
checkRenderDifferential(Workload (*build)(), FilterMode filter,
                        const CacheSimConfig &cfg, int frames,
                        const std::string &ctx)
{
    BatchToggleGuard guard;
    std::vector<CacheFrameStats> rows[2];
    std::vector<uint8_t> snap[2];
    uint64_t texels[2] = {0, 0};
    for (int mode = 0; mode < 2; ++mode) {
        setBatchedAccess(mode == 1);
        Workload wl = build();
        CacheSim sim(*wl.textures, cfg, "diff");
        Rasterizer raster(96, 64);
        raster.setFilter(filter);
        raster.setSink(&sim);
        const float aspect = 96.0f / 64.0f;
        for (int f = 0; f < frames; ++f) {
            Camera cam = wl.cameraAtFrame(f, wl.default_frames, aspect);
            FrameStats fs = raster.renderFrame(wl.scene, cam, *wl.textures);
            texels[mode] += fs.texel_accesses;
            rows[mode].push_back(sim.endFrame());
        }
        snap[mode] = snapshotBytes(sim);
    }
    EXPECT_EQ(texels[0], texels[1]) << ctx;
    ASSERT_EQ(rows[0].size(), rows[1].size()) << ctx;
    for (size_t i = 0; i < rows[0].size(); ++i)
        expectStatsEqual(rows[0][i], rows[1][i],
                         ctx + " frame " + std::to_string(i));
    EXPECT_EQ(snap[0], snap[1]) << ctx << ": snapshot bytes diverge";
}

TEST(BatchRenderDifferential, VillageEveryFilterMode)
{
    const CacheSimConfig cfg = CacheSimConfig::twoLevel(2 << 10, 256 << 10);
    for (FilterMode f : {FilterMode::Point, FilterMode::Bilinear,
                         FilterMode::Trilinear})
        checkRenderDifferential(tinyVillage, f, cfg, 3,
                                std::string("village-") + filterModeName(f));
}

TEST(BatchRenderDifferential, VillagePullArchitecture)
{
    checkRenderDifferential(tinyVillage, FilterMode::Trilinear,
                            CacheSimConfig::pull(16 << 10), 3, "village-pull");
}

TEST(BatchRenderDifferential, VillageWithFaultInjection)
{
    CacheSimConfig cfg = CacheSimConfig::twoLevel(2 << 10, 128 << 10);
    cfg.host = faultyHost();
    checkRenderDifferential(tinyVillage, FilterMode::Trilinear, cfg, 3,
                            "village-faults");
}

TEST(BatchRenderDifferential, VillageClassifiedWithTlb)
{
    // classify_misses attaches the hit-observing shadow models, forcing
    // the batched path onto its faithful replay branch — which must be
    // just as identical.
    CacheSimConfig cfg = CacheSimConfig::twoLevel(2 << 10, 128 << 10);
    cfg.classify_misses = true;
    cfg.tlb_entries = 8;
    checkRenderDifferential(tinyVillage, FilterMode::Trilinear, cfg, 3,
                            "village-classified-tlb");
}

TEST(BatchRenderDifferential, CityTrilinear)
{
    const CacheSimConfig cfg = CacheSimConfig::twoLevel(2 << 10, 256 << 10);
    checkRenderDifferential(tinyCity, FilterMode::Trilinear, cfg, 3, "city");
}

/**
 * Direct-drive differential fixture: hand-built TexelRef streams pushed
 * through accessBatch() on one simulator and replayed scalar on a twin.
 */
class BatchSpanTest : public ::testing::Test
{
  protected:
    BatchSpanTest()
    {
        tex = tm.load("t", MipPyramid(Image(256, 256)));
        tex2 = tm.load("u", MipPyramid(Image(128, 128)));
    }

    /** Replay @p refs through the scalar entry points. */
    static void
    replayScalar(CacheSim &sim, const std::vector<TexelRef> &refs)
    {
        for (const TexelRef &r : refs) {
            switch (r.kind) {
              case TexelRef::kTexel:
                sim.access(r.x0, r.y0, r.mip);
                break;
              case TexelRef::kQuad:
                sim.accessQuad(r.x0, r.y0, r.x1, r.y1, r.mip);
                break;
              default:
                sim.beginPixel(r.x0, r.y0);
                break;
            }
        }
    }

    /**
     * Drive both sims with the same ref stream split into batches of
     * the given length and assert frame stats + snapshot equality.
     */
    void
    checkSpans(CacheSim &batched, CacheSim &scalar,
               const std::vector<TexelRef> &refs, size_t span_len,
               const std::string &ctx)
    {
        for (size_t i = 0; i < refs.size(); i += span_len) {
            const size_t n = std::min(span_len, refs.size() - i);
            std::vector<TexelRef> span(refs.begin() + i,
                                       refs.begin() + i + n);
            batched.accessBatch(span);
            replayScalar(scalar, span);
        }
        expectStatsEqual(batched.endFrame(), scalar.endFrame(), ctx);
        EXPECT_EQ(snapshotBytes(batched), snapshotBytes(scalar))
            << ctx << ": snapshot bytes diverge";
    }

    /** Random mixed-kind stream confined to the bound texture. */
    std::vector<TexelRef>
    randomRefs(int count, uint32_t dim_base, uint64_t seed)
    {
        Rng rng(seed);
        std::vector<TexelRef> out;
        out.reserve(static_cast<size_t>(count));
        for (int i = 0; i < count; ++i) {
            const uint32_t mip = static_cast<uint32_t>(rng.below(3));
            const uint32_t dim = dim_base >> mip;
            const uint32_t x = static_cast<uint32_t>(rng.below(dim));
            const uint32_t y = static_cast<uint32_t>(rng.below(dim));
            if (rng.chance(0.25)) {
                out.push_back(TexelRef::quad(x, y, (x + 1) % dim,
                                             (y + 1) % dim, mip));
            } else if (rng.chance(0.05)) {
                out.push_back(TexelRef::pixel(x, y));
            } else {
                out.push_back(TexelRef::texel(x, y, mip));
            }
        }
        return out;
    }

    TextureManager tm;
    TextureId tex, tex2;
};

TEST_F(BatchSpanTest, EmptySpanIsANoOp)
{
    CacheSim sim(tm, CacheSimConfig::twoLevel(2 << 10, 64 << 10), "sim");
    sim.bindTexture(tex);
    const std::vector<uint8_t> before = snapshotBytes(sim);
    sim.accessBatch({});
    EXPECT_EQ(snapshotBytes(sim), before);
    const CacheFrameStats fs = sim.endFrame();
    EXPECT_EQ(fs.accesses, 0u);
    EXPECT_EQ(fs.l1_misses, 0u);
}

TEST_F(BatchSpanTest, EverySpanLengthTailMatchesScalar)
{
    // Lengths 1..67 cover the length-1 span, sub-chunk spans, and
    // non-multiple-of-SIMD-width tails of the 256-entry staging chunk.
    const CacheSimConfig cfg = CacheSimConfig::twoLevel(2 << 10, 64 << 10);
    for (size_t len : {size_t{1}, size_t{2}, size_t{3}, size_t{7},
                       size_t{16}, size_t{31}, size_t{67}, size_t{256},
                       size_t{300}}) {
        CacheSim batched(tm, cfg, "batched");
        CacheSim scalar(tm, cfg, "scalar");
        batched.bindTexture(tex);
        scalar.bindTexture(tex);
        checkSpans(batched, scalar, randomRefs(2000, 256, 7 + len), len,
                   "span-len-" + std::to_string(len));
    }
}

TEST_F(BatchSpanTest, SpansCrossingMipBoundaries)
{
    // Alternating MIP levels inside one span: the filter key must never
    // coalesce the same (x, y) across levels.
    const CacheSimConfig cfg = CacheSimConfig::twoLevel(2 << 10, 64 << 10);
    CacheSim batched(tm, cfg, "batched");
    CacheSim scalar(tm, cfg, "scalar");
    batched.bindTexture(tex);
    scalar.bindTexture(tex);
    std::vector<TexelRef> refs;
    for (uint32_t i = 0; i < 512; ++i)
        refs.push_back(TexelRef::texel(i & 63, (i >> 3) & 63, i % 3));
    checkSpans(batched, scalar, refs, 128, "mip-boundaries");
}

TEST_F(BatchSpanTest, TextureBindsBetweenSpans)
{
    // Batches never span a bind; interleaving binds between spans must
    // reset the coalescing filter identically on both paths.
    const CacheSimConfig cfg = CacheSimConfig::twoLevel(2 << 10, 64 << 10);
    CacheSim batched(tm, cfg, "batched");
    CacheSim scalar(tm, cfg, "scalar");
    Rng rng(99);
    for (int round = 0; round < 20; ++round) {
        const TextureId tid = rng.chance(0.5) ? tex : tex2;
        batched.bindTexture(tid);
        scalar.bindTexture(tid);
        const uint32_t dim = tid == tex ? 256 : 128;
        const auto refs = randomRefs(100, dim, 1000 + round);
        batched.accessBatch(refs);
        replayScalar(scalar, refs);
    }
    expectStatsEqual(batched.endFrame(), scalar.endFrame(), "binds");
    EXPECT_EQ(snapshotBytes(batched), snapshotBytes(scalar));
}

TEST_F(BatchSpanTest, DuplicateTexelsCoalesceIdentically)
{
    // The one-entry filter must treat a run of identical texels inside
    // one span exactly as it treats the scalar stream: one L1 probe.
    const CacheSimConfig cfg = CacheSimConfig::twoLevel(2 << 10, 64 << 10);
    CacheSim batched(tm, cfg, "batched");
    CacheSim scalar(tm, cfg, "scalar");
    batched.bindTexture(tex);
    scalar.bindTexture(tex);
    std::vector<TexelRef> refs;
    for (int i = 0; i < 50; ++i)
        refs.push_back(TexelRef::texel(5, 5, 0));
    // ...then a different tile and back: the filter must re-probe.
    refs.push_back(TexelRef::texel(200, 200, 0));
    for (int i = 0; i < 50; ++i)
        refs.push_back(TexelRef::texel(5, 5, 0));
    checkSpans(batched, scalar, refs, refs.size(), "duplicates");
}

TEST_F(BatchSpanTest, QuadsStraddlingTileBoundaries)
{
    // Quads whose corners straddle L1-tile edges expand to 1/2/4 probes
    // inside the batch loop; sweep every alignment phase.
    const CacheSimConfig cfg = CacheSimConfig::twoLevel(2 << 10, 64 << 10);
    CacheSim batched(tm, cfg, "batched");
    CacheSim scalar(tm, cfg, "scalar");
    batched.bindTexture(tex);
    scalar.bindTexture(tex);
    std::vector<TexelRef> refs;
    for (uint32_t y = 0; y < 64; ++y)
        for (uint32_t x = 0; x < 64; ++x)
            refs.push_back(
                TexelRef::quad(x, y, (x + 1) & 255, (y + 1) & 255, 0));
    checkSpans(batched, scalar, refs, 97, "quad-tiles");
}

TEST_F(BatchSpanTest, FaultInjectionTakesTheSameSlowPath)
{
    // The miss path (fault RNG draws included) is shared code; the
    // batched filter must present it the identical miss sequence so the
    // RNG streams stay aligned.
    CacheSimConfig cfg = CacheSimConfig::twoLevel(2 << 10, 32 << 10);
    cfg.host = faultyHost();
    CacheSim batched(tm, cfg, "batched");
    CacheSim scalar(tm, cfg, "scalar");
    batched.bindTexture(tex);
    scalar.bindTexture(tex);
    checkSpans(batched, scalar, randomRefs(5000, 256, 41), 113, "faults");
}

TEST_F(BatchSpanTest, ClassifiedSimsMatchThroughReplayBranch)
{
    CacheSimConfig cfg = CacheSimConfig::twoLevel(2 << 10, 32 << 10);
    cfg.classify_misses = true;
    cfg.tlb_entries = 8;
    CacheSim batched(tm, cfg, "batched");
    CacheSim scalar(tm, cfg, "scalar");
    batched.bindTexture(tex);
    scalar.bindTexture(tex);
    checkSpans(batched, scalar, randomRefs(5000, 256, 43), 77, "classified");
}

TEST_F(BatchSpanTest, ThrasherSweepMatchesScalar)
{
    // Linear sweep over twice the L2's block count — the multi-stream
    // thrasher's access pattern — maximal eviction churn on both paths.
    const CacheSimConfig cfg = CacheSimConfig::twoLevel(2 << 10, 32 << 10);
    CacheSim batched(tm, cfg, "batched");
    CacheSim scalar(tm, cfg, "scalar");
    batched.bindTexture(tex);
    scalar.bindTexture(tex);
    std::vector<TexelRef> refs;
    for (int round = 0; round < 4; ++round)
        for (uint32_t y = 0; y < 256; y += 16)
            for (uint32_t x = 0; x < 256; x += 16)
                refs.push_back(TexelRef::texel(x, y, 0));
    checkSpans(batched, scalar, refs, 256, "thrasher");
}

TEST_F(BatchSpanTest, FuzzRandomSpansAndLengths)
{
    // Seeded fuzz: random streams chopped at random span lengths,
    // including empties, against the scalar twin. Any divergence fails
    // with the seed in the message.
    for (uint64_t seed = 1; seed <= 8; ++seed) {
        const CacheSimConfig cfg =
            CacheSimConfig::twoLevel(2 << 10, 64 << 10);
        CacheSim batched(tm, cfg, "batched");
        CacheSim scalar(tm, cfg, "scalar");
        batched.bindTexture(tex);
        scalar.bindTexture(tex);
        Rng rng(seed * 7919);
        const auto refs = randomRefs(3000, 256, seed);
        size_t i = 0;
        while (i < refs.size()) {
            const size_t len =
                std::min(rng.below(70), // 0 = empty span, also valid
                         static_cast<uint64_t>(refs.size() - i));
            std::vector<TexelRef> span(refs.begin() + static_cast<long>(i),
                                       refs.begin() +
                                           static_cast<long>(i + len));
            batched.accessBatch(span);
            replayScalar(scalar, span);
            i += len == 0 ? 1 : len; // re-align after an empty span
            if (len == 0 && i <= refs.size()) {
                // Deliver the skipped ref scalar-side on both sims so
                // the streams stay identical.
                std::vector<TexelRef> one(refs.begin() +
                                              static_cast<long>(i - 1),
                                          refs.begin() +
                                              static_cast<long>(i));
                batched.accessBatch(one);
                replayScalar(scalar, one);
            }
        }
        expectStatsEqual(batched.endFrame(), scalar.endFrame(),
                         "fuzz-seed-" + std::to_string(seed));
        EXPECT_EQ(snapshotBytes(batched), snapshotBytes(scalar))
            << "fuzz-seed-" << seed;
    }
}

TEST(BatchSinkDefaults, CountingSinkCountsBatchedRefs)
{
    CountingSink sink;
    std::vector<TexelRef> refs;
    refs.push_back(TexelRef::texel(1, 2, 0));
    refs.push_back(TexelRef::quad(1, 2, 3, 4, 1));
    refs.push_back(TexelRef::pixel(9, 9));
    sink.accessBatch(refs);
    EXPECT_EQ(sink.count, 5u); // 1 texel + 4 quad corners, pixel ignored
}

TEST(BatchSinkDefaults, ToggleRoundTrips)
{
    BatchToggleGuard guard;
    setBatchedAccess(false);
    EXPECT_FALSE(batchedAccess());
    setBatchedAccess(true);
    EXPECT_TRUE(batchedAccess());
}

} // namespace
} // namespace mltc
