/**
 * @file
 * Integration tests for the CacheSim controller (Figure 7 flow): pull vs
 * two-level behaviour, sector mapping bandwidth invariants, per-frame
 * accounting and TLB wiring.
 */
#include <gtest/gtest.h>

#include "core/cache_sim.hpp"
#include "util/rng.hpp"

namespace mltc {
namespace {

class CacheSimTest : public ::testing::Test
{
  protected:
    CacheSimTest()
    {
        tex = tm.load("t", MipPyramid(Image(256, 256)));
    }

    /** Stream a row-major walk over a region of the base level. */
    template <typename Sim>
    void
    walk(Sim &sim, uint32_t x0, uint32_t y0, uint32_t w, uint32_t h)
    {
        sim.bindTexture(tex);
        for (uint32_t y = y0; y < y0 + h; ++y)
            for (uint32_t x = x0; x < x0 + w; ++x)
                sim.access(x, y, 0);
    }

    TextureManager tm;
    TextureId tex;
};

TEST_F(CacheSimTest, FactoryConfigs)
{
    CacheSimConfig pull = CacheSimConfig::pull(2048);
    EXPECT_FALSE(pull.l2_enabled);
    EXPECT_EQ(pull.l1.size_bytes, 2048u);

    CacheSimConfig two = CacheSimConfig::twoLevel(2048, 1 << 20, 32, 8);
    EXPECT_TRUE(two.l2_enabled);
    EXPECT_EQ(two.l2.l2_tile, 32u);
    EXPECT_EQ(two.l1.l1_tile, 8u);
    EXPECT_EQ(two.l2.l1_tile, 8u); // sector granularity follows L1 tile
}

TEST_F(CacheSimTest, PullDownloadsOneTilePerMiss)
{
    CacheSim sim(tm, CacheSimConfig::pull(16 * 1024), "pull");
    walk(sim, 0, 0, 64, 64);
    CacheFrameStats fs = sim.endFrame();
    EXPECT_EQ(fs.accesses, 64u * 64u);
    // A cold 64x64 walk touches 256 distinct 4x4 tiles; each misses at
    // least once, plus at most a few set-conflict evictions within the
    // hashed 2-way cache.
    EXPECT_GE(fs.l1_misses, 256u);
    EXPECT_LE(fs.l1_misses, 290u);
    EXPECT_EQ(fs.host_bytes, fs.l1_misses * 64u);
    EXPECT_EQ(fs.l2_full_hits + fs.l2_partial_hits + fs.l2_full_misses, 0u);
}

TEST_F(CacheSimTest, SecondFrameHitsInL1WhenItFits)
{
    CacheSim sim(tm, CacheSimConfig::pull(16 * 1024), "pull");
    walk(sim, 0, 0, 64, 64);
    sim.endFrame();
    walk(sim, 0, 0, 64, 64);
    CacheFrameStats fs = sim.endFrame();
    EXPECT_EQ(fs.l1_misses, 0u);
    EXPECT_EQ(fs.host_bytes, 0u);
    EXPECT_DOUBLE_EQ(fs.l1HitRate(), 1.0);
}

TEST_F(CacheSimTest, L2AbsorbsRefetchesAfterL1Eviction)
{
    // Tiny L1 (2 KB = 32 tiles) + roomy L2: walking a 128x128 region
    // (1024 tiles) twice thrashes L1, but the second pass is served
    // from L2, not host.
    CacheSim sim(tm, CacheSimConfig::twoLevel(2 * 1024, 1ull << 20),
                 "two");
    walk(sim, 0, 0, 128, 128);
    CacheFrameStats first = sim.endFrame();
    walk(sim, 0, 0, 128, 128);
    CacheFrameStats second = sim.endFrame();

    EXPECT_EQ(first.host_bytes, 1024u * 64u); // cold downloads
    EXPECT_GT(second.l1_misses, 0u);          // L1 thrashes
    EXPECT_EQ(second.host_bytes, 0u);         // ... but L2 serves it all
    EXPECT_EQ(second.l2_full_hits, second.l1_misses);
    EXPECT_EQ(second.l2_read_bytes, second.l1_misses * 64u);
}

TEST_F(CacheSimTest, PullAndL2HaveIdenticalL1Behaviour)
{
    // The L1 tag path is independent of the L2 configuration (§3.3).
    CacheSim pull(tm, CacheSimConfig::pull(2 * 1024), "pull");
    CacheSim two(tm, CacheSimConfig::twoLevel(2 * 1024, 1ull << 20),
                 "two");
    Rng rng(12);
    pull.bindTexture(tex);
    two.bindTexture(tex);
    for (int i = 0; i < 20000; ++i) {
        uint32_t x = static_cast<uint32_t>(rng.below(256));
        uint32_t y = static_cast<uint32_t>(rng.below(256));
        uint32_t m = static_cast<uint32_t>(rng.below(3));
        uint32_t dim = 256u >> m;
        pull.access(x % dim, y % dim, m);
        two.access(x % dim, y % dim, m);
    }
    CacheFrameStats a = pull.endFrame();
    CacheFrameStats b = two.endFrame();
    EXPECT_EQ(a.l1_misses, b.l1_misses);
    EXPECT_EQ(a.accesses, b.accesses);
}

TEST_F(CacheSimTest, L2NeverCostsMoreHostBandwidthThanPull)
{
    // Sector mapping guarantee: with the same L1, host bytes with L2
    // <= host bytes without, for any access pattern.
    CacheSim pull(tm, CacheSimConfig::pull(2 * 1024), "pull");
    CacheSim two(tm, CacheSimConfig::twoLevel(2 * 1024, 256 * 1024),
                 "two");
    Rng rng(77);
    pull.bindTexture(tex);
    two.bindTexture(tex);
    for (int i = 0; i < 50000; ++i) {
        uint32_t x = static_cast<uint32_t>(rng.below(256));
        uint32_t y = static_cast<uint32_t>(rng.below(256));
        pull.access(x, y, 0);
        two.access(x, y, 0);
    }
    EXPECT_LE(two.endFrame().host_bytes, pull.endFrame().host_bytes);
}

TEST_F(CacheSimTest, HostBytesScaleWithOriginalDepth)
{
    TextureId t16 = tm.load("t16", MipPyramid(Image(64, 64)), 2);
    CacheSim sim(tm, CacheSimConfig::pull(2 * 1024), "pull");
    sim.bindTexture(t16);
    sim.access(0, 0, 0); // one tile miss
    CacheFrameStats fs = sim.endFrame();
    // 4x4 texels at 2 bytes each.
    EXPECT_EQ(fs.host_bytes, 32u);
}

TEST_F(CacheSimTest, TlbProbedOncePerL1Miss)
{
    CacheSimConfig cfg = CacheSimConfig::twoLevel(2 * 1024, 1ull << 20);
    cfg.tlb_entries = 4;
    CacheSim sim(tm, cfg, "tlb");
    walk(sim, 0, 0, 64, 64);
    CacheFrameStats fs = sim.endFrame();
    EXPECT_EQ(fs.tlb_probes, fs.l1_misses);
    EXPECT_GT(fs.tlb_hits, 0u);
    ASSERT_NE(sim.tlb(), nullptr);
}

TEST_F(CacheSimTest, NoTlbByDefault)
{
    CacheSim sim(tm, CacheSimConfig::twoLevel(2 * 1024, 1ull << 20), "x");
    EXPECT_EQ(sim.tlb(), nullptr);
    walk(sim, 0, 0, 8, 8);
    EXPECT_EQ(sim.endFrame().tlb_probes, 0u);
}

TEST_F(CacheSimTest, EndFrameResetsPerFrameCounters)
{
    CacheSim sim(tm, CacheSimConfig::pull(2 * 1024), "p");
    walk(sim, 0, 0, 16, 16);
    CacheFrameStats f1 = sim.endFrame();
    EXPECT_GT(f1.accesses, 0u);
    CacheFrameStats f2 = sim.endFrame();
    EXPECT_EQ(f2.accesses, 0u);
    EXPECT_EQ(sim.frames(), 2u);
    EXPECT_EQ(sim.totals().accesses, f1.accesses);
}

TEST_F(CacheSimTest, ConditionalRatesSumBelowOne)
{
    CacheSim sim(tm, CacheSimConfig::twoLevel(2 * 1024, 64 * 1024), "x");
    Rng rng(3);
    sim.bindTexture(tex);
    for (int i = 0; i < 30000; ++i)
        sim.access(static_cast<uint32_t>(rng.below(256)),
                   static_cast<uint32_t>(rng.below(256)), 0);
    CacheFrameStats fs = sim.endFrame();
    EXPECT_EQ(fs.l2_full_hits + fs.l2_partial_hits + fs.l2_full_misses,
              fs.l1_misses);
    EXPECT_LE(fs.l2FullHitRate() + fs.l2PartialHitRate(), 1.0 + 1e-12);
}

TEST_F(CacheSimTest, MipLevelsMapToDistinctBlocks)
{
    // Accessing (0,0) of every level must produce one miss per level
    // (each level starts a new L2 block, Figure 2).
    CacheSim sim(tm, CacheSimConfig::twoLevel(16 * 1024, 1ull << 20),
                 "x");
    sim.bindTexture(tex);
    uint32_t levels = tm.texture(tex).pyramid.levels();
    for (uint32_t m = 0; m < levels; ++m)
        sim.access(0, 0, m);
    CacheFrameStats fs = sim.endFrame();
    EXPECT_EQ(fs.l1_misses, levels);
    EXPECT_EQ(fs.l2_full_misses, levels);
}

TEST_F(CacheSimTest, InclusionIsNotMaintained)
{
    // Paper footnote 5: an L1 block loaded from L2 block B may remain in
    // L1 after B is replaced in L2. Build exactly that scenario: a big
    // fully-associative L1 (so no set aliasing can evict tile A) while a
    // tiny L2 is flooded past A's block.
    CacheSimConfig cfg = CacheSimConfig::twoLevel(64 * 1024, 0);
    cfg.l1.assoc = 0; // fully associative
    cfg.l2.size_bytes = 4 * cfg.l2.blockBytes(); // 4-block L2
    CacheSim sim(tm, cfg, "tiny-l2");
    sim.bindTexture(tex);

    sim.access(0, 0, 0); // tile A: L1 + L2 resident
    // Flood the L2 with 8 other L2 blocks (64 texels apart in y).
    for (uint32_t i = 1; i <= 8; ++i)
        sim.access(0, i * 16, 0);
    CacheFrameStats warm = sim.endFrame();
    EXPECT_GT(warm.l2_full_misses, 4u); // the flood caused evictions

    // Tile A must still hit in L1 even though its L2 block is gone.
    sim.access(0, 0, 0);
    CacheFrameStats fs = sim.endFrame();
    EXPECT_EQ(fs.l1_misses, 0u);
    EXPECT_EQ(fs.host_bytes, 0u);
}

TEST_F(CacheSimTest, FrameStatsAddAccumulates)
{
    CacheFrameStats a, b;
    a.accesses = 10;
    a.l1_misses = 2;
    a.host_bytes = 100;
    a.victim_steps_max = 3;
    b.accesses = 5;
    b.l1_misses = 1;
    b.host_bytes = 50;
    b.victim_steps_max = 7;
    a.add(b);
    EXPECT_EQ(a.accesses, 15u);
    EXPECT_EQ(a.l1_misses, 3u);
    EXPECT_EQ(a.host_bytes, 150u);
    EXPECT_EQ(a.victim_steps_max, 7u); // max, not sum
}

TEST_F(CacheSimTest, RateHelpersHandleZeroDenominators)
{
    CacheFrameStats empty;
    EXPECT_DOUBLE_EQ(empty.l1HitRate(), 0.0);
    EXPECT_DOUBLE_EQ(empty.l2FullHitRate(), 0.0);
    EXPECT_DOUBLE_EQ(empty.l2PartialHitRate(), 0.0);
    EXPECT_DOUBLE_EQ(empty.tlbHitRate(), 0.0);
}

TEST_F(CacheSimTest, MultipleTexturesDoNotAlias)
{
    TextureId other = tm.load("u", MipPyramid(Image(256, 256)));
    CacheSim sim(tm, CacheSimConfig::twoLevel(16 * 1024, 1ull << 20),
                 "x");
    sim.bindTexture(tex);
    sim.access(0, 0, 0);
    sim.bindTexture(other);
    sim.access(0, 0, 0); // same coordinates, different texture
    CacheFrameStats fs = sim.endFrame();
    EXPECT_EQ(fs.l1_misses, 2u);
    EXPECT_EQ(fs.l2_full_misses, 2u);
}

} // namespace
} // namespace mltc
