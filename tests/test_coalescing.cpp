/**
 * @file
 * Equivalence tests for the access-coalescing fast paths: the batched
 * accessQuad path and the one-entry filter must never change miss
 * counts, download bytes or L2 state relative to plain per-texel
 * accesses — only LRU stamp freshness may differ.
 */
#include <gtest/gtest.h>

#include "core/cache_sim.hpp"
#include "core/set_assoc_l2.hpp"
#include "util/rng.hpp"

namespace mltc {
namespace {

class CoalescingTest : public ::testing::Test
{
  protected:
    CoalescingTest()
    {
        tex = tm.load("t", MipPyramid(Image(256, 256)));
        tex2 = tm.load("u", MipPyramid(Image(128, 128)));
    }

    /** Random bilinear footprint anchored at (x, y) with wrap. */
    struct Quad
    {
        uint32_t x0, y0, x1, y1, mip;
        TextureId tid;
    };

    std::vector<Quad>
    randomQuads(int count, uint64_t seed)
    {
        Rng rng(seed);
        std::vector<Quad> out;
        out.reserve(static_cast<size_t>(count));
        for (int i = 0; i < count; ++i) {
            TextureId tid = rng.chance(0.2) ? tex2 : tex;
            uint32_t base = tid == tex ? 256 : 128;
            uint32_t mip = static_cast<uint32_t>(rng.below(3));
            uint32_t dim = base >> mip;
            uint32_t x0 = static_cast<uint32_t>(rng.below(dim));
            uint32_t y0 = static_cast<uint32_t>(rng.below(dim));
            out.push_back({x0, y0, (x0 + 1) % dim, (y0 + 1) % dim, mip,
                           tid});
        }
        return out;
    }

    TextureManager tm;
    TextureId tex, tex2;
};

TEST_F(CoalescingTest, QuadPathMatchesScalarPathPull)
{
    CacheSim scalar(tm, CacheSimConfig::pull(2 * 1024), "scalar");
    CacheSim quad(tm, CacheSimConfig::pull(2 * 1024), "quad");
    for (const Quad &q : randomQuads(20000, 11)) {
        scalar.bindTexture(q.tid);
        quad.bindTexture(q.tid);
        scalar.access(q.x0, q.y0, q.mip);
        scalar.access(q.x1, q.y0, q.mip);
        scalar.access(q.x0, q.y1, q.mip);
        scalar.access(q.x1, q.y1, q.mip);
        quad.accessQuad(q.x0, q.y0, q.x1, q.y1, q.mip);
    }
    CacheFrameStats a = scalar.endFrame();
    CacheFrameStats b = quad.endFrame();
    EXPECT_EQ(a.accesses, b.accesses);
    EXPECT_EQ(a.l1_misses, b.l1_misses);
    EXPECT_EQ(a.host_bytes, b.host_bytes);
}

TEST_F(CoalescingTest, QuadPathMatchesScalarPathTwoLevel)
{
    CacheSim scalar(tm, CacheSimConfig::twoLevel(2 * 1024, 256 * 1024),
                    "scalar");
    CacheSim quad(tm, CacheSimConfig::twoLevel(2 * 1024, 256 * 1024),
                  "quad");
    for (const Quad &q : randomQuads(20000, 17)) {
        scalar.bindTexture(q.tid);
        quad.bindTexture(q.tid);
        scalar.access(q.x0, q.y0, q.mip);
        scalar.access(q.x1, q.y0, q.mip);
        scalar.access(q.x0, q.y1, q.mip);
        scalar.access(q.x1, q.y1, q.mip);
        quad.accessQuad(q.x0, q.y0, q.x1, q.y1, q.mip);
    }
    CacheFrameStats a = scalar.endFrame();
    CacheFrameStats b = quad.endFrame();
    EXPECT_EQ(a.l1_misses, b.l1_misses);
    EXPECT_EQ(a.l2_full_hits, b.l2_full_hits);
    EXPECT_EQ(a.l2_partial_hits, b.l2_partial_hits);
    EXPECT_EQ(a.l2_full_misses, b.l2_full_misses);
    EXPECT_EQ(a.host_bytes, b.host_bytes);
    EXPECT_EQ(a.l2_read_bytes, b.l2_read_bytes);
}

TEST_F(CoalescingTest, FilterInvalidatedAcrossBind)
{
    // Same coordinates in two different textures must not be coalesced.
    CacheSim sim(tm, CacheSimConfig::pull(2 * 1024), "sim");
    sim.bindTexture(tex);
    sim.access(0, 0, 0);
    sim.bindTexture(tex2);
    sim.access(0, 0, 0);
    CacheFrameStats fs = sim.endFrame();
    EXPECT_EQ(fs.l1_misses, 2u);
}

TEST_F(CoalescingTest, RepeatedSameTexelCountsAccesses)
{
    CacheSim sim(tm, CacheSimConfig::pull(2 * 1024), "sim");
    sim.bindTexture(tex);
    for (int i = 0; i < 100; ++i)
        sim.access(5, 5, 0);
    CacheFrameStats fs = sim.endFrame();
    EXPECT_EQ(fs.accesses, 100u);
    EXPECT_EQ(fs.l1_misses, 1u);
}

TEST_F(CoalescingTest, SetAssocQuadPathMatchesScalar)
{
    SetAssocL2Config cfg;
    cfg.l1.size_bytes = 2 * 1024;
    cfg.l2_size_bytes = 256 * 1024;
    cfg.l2_assoc = 4;
    SetAssocL2Sim scalar(tm, cfg, "scalar");
    SetAssocL2Sim quad(tm, cfg, "quad");
    for (const Quad &q : randomQuads(10000, 23)) {
        scalar.bindTexture(q.tid);
        quad.bindTexture(q.tid);
        scalar.access(q.x0, q.y0, q.mip);
        scalar.access(q.x1, q.y0, q.mip);
        scalar.access(q.x0, q.y1, q.mip);
        scalar.access(q.x1, q.y1, q.mip);
        quad.accessQuad(q.x0, q.y0, q.x1, q.y1, q.mip);
    }
    CacheFrameStats a = scalar.endFrame();
    CacheFrameStats b = quad.endFrame();
    EXPECT_EQ(a.l1_misses, b.l1_misses);
    EXPECT_EQ(a.host_bytes, b.host_bytes);
}

} // namespace
} // namespace mltc
