/**
 * @file
 * Unit tests for the util module: CLI parsing, CSV/table formatting,
 * PRNG determinism and distribution sanity, env knobs, PPM output.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/env.hpp"
#include "util/error.hpp"
#include "util/ppm.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace mltc {
namespace {

// --- CommandLine -------------------------------------------------------

TEST(CommandLine, ParsesKeyEqualsValue)
{
    const char *argv[] = {"prog", "--workload=city", "--frames=42"};
    CommandLine cli(3, argv);
    EXPECT_EQ(cli.getString("workload", ""), "city");
    EXPECT_EQ(cli.getInt("frames", 0), 42);
}

TEST(CommandLine, ParsesKeySpaceValue)
{
    const char *argv[] = {"prog", "--frames", "17", "--name", "x"};
    CommandLine cli(5, argv);
    EXPECT_EQ(cli.getInt("frames", 0), 17);
    EXPECT_EQ(cli.getString("name", ""), "x");
}

TEST(CommandLine, BareFlagIsTrue)
{
    const char *argv[] = {"prog", "--verbose", "--count=3"};
    CommandLine cli(3, argv);
    EXPECT_TRUE(cli.getFlag("verbose"));
    EXPECT_FALSE(cli.getFlag("quiet"));
}

TEST(CommandLine, FlagFollowedByFlagDoesNotConsume)
{
    const char *argv[] = {"prog", "--a", "--b"};
    CommandLine cli(3, argv);
    EXPECT_TRUE(cli.getFlag("a"));
    EXPECT_TRUE(cli.getFlag("b"));
}

TEST(CommandLine, PositionalArguments)
{
    const char *argv[] = {"prog", "input.txt", "--k=v", "more"};
    CommandLine cli(4, argv);
    ASSERT_EQ(cli.positional().size(), 2u);
    EXPECT_EQ(cli.positional()[0], "input.txt");
    EXPECT_EQ(cli.positional()[1], "more");
}

TEST(CommandLine, DefaultsWhenAbsent)
{
    const char *argv[] = {"prog"};
    CommandLine cli(1, argv);
    EXPECT_EQ(cli.getInt("missing", -7), -7);
    EXPECT_DOUBLE_EQ(cli.getDouble("missing", 2.5), 2.5);
    EXPECT_EQ(cli.getString("missing", "d"), "d");
}

TEST(CommandLine, UnparseableIntThrowsBadArgument)
{
    const char *argv[] = {"prog", "--n=abc"};
    CommandLine cli(2, argv);
    try {
        cli.getInt("n", 5);
        FAIL() << "expected BadArgument";
    } catch (const Exception &e) {
        EXPECT_EQ(e.code(), ErrorCode::BadArgument);
        EXPECT_NE(e.error().message.find("--n"), std::string::npos)
            << "error should name the flag: " << e.error().message;
    }
}

TEST(CommandLine, TrailingJunkThrowsBadArgument)
{
    const char *argv[] = {"prog", "--n=12zz", "--x=1.5q"};
    CommandLine cli(3, argv);
    EXPECT_THROW(cli.getInt("n", 0), Exception);
    EXPECT_THROW(cli.getDouble("x", 0.0), Exception);
}

TEST(CommandLine, IntOverflowThrowsBadArgument)
{
    const char *argv[] = {"prog", "--n=99999999999999999999999"};
    CommandLine cli(2, argv);
    EXPECT_THROW(cli.getInt("n", 0), Exception);
}

TEST(CommandLine, NegativeForUnsignedThrowsBadArgument)
{
    const char *argv[] = {"prog", "--n=-3", "--m=7"};
    CommandLine cli(3, argv);
    EXPECT_THROW(cli.getUnsigned("n", 0), Exception);
    EXPECT_EQ(cli.getUnsigned("m", 0), 7ul);
    EXPECT_EQ(cli.getUnsigned("missing", 9), 9ul);
}

TEST(CommandLine, DoubleParsing)
{
    const char *argv[] = {"prog", "--x=2.75"};
    CommandLine cli(2, argv);
    EXPECT_DOUBLE_EQ(cli.getDouble("x", 0.0), 2.75);
}

TEST(CommandLine, FlagValueZeroIsFalse)
{
    const char *argv[] = {"prog", "--opt=0"};
    CommandLine cli(2, argv);
    EXPECT_TRUE(cli.has("opt"));
    EXPECT_FALSE(cli.getFlag("opt"));
}

// --- Rng ----------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformIntervalRespectsBounds)
{
    Rng rng(10);
    for (int i = 0; i < 1000; ++i) {
        double v = rng.uniform(-3.0, 7.0);
        EXPECT_GE(v, -3.0);
        EXPECT_LT(v, 7.0);
    }
}

TEST(Rng, BelowIsBounded)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(12);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        int v = rng.range(3, 6);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 6);
        saw_lo |= v == 3;
        saw_hi |= v == 6;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, MeanIsRoughlyHalf)
{
    Rng rng(13);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ReseedReproduces)
{
    Rng rng(77);
    uint64_t first = rng.next();
    rng.next();
    rng.reseed(77);
    EXPECT_EQ(rng.next(), first);
}

// --- Table formatting ----------------------------------------------------

TEST(TextTable, RendersHeaderAndRows)
{
    TextTable t({"a", "bb"});
    t.addRow({"1", "2"});
    std::string out = t.render();
    EXPECT_NE(out.find("a"), std::string::npos);
    EXPECT_NE(out.find("bb"), std::string::npos);
    EXPECT_NE(out.find("---"), std::string::npos);
    EXPECT_NE(out.find("1"), std::string::npos);
}

TEST(TextTable, PadsShortRows)
{
    TextTable t({"x", "y", "z"});
    t.addRow({"only"});
    EXPECT_NO_THROW(t.render());
}

TEST(TextTable, NumericRowFormatting)
{
    TextTable t({"label", "v1", "v2"});
    t.addRow("row", {1.234, 5.678}, 1);
    std::string out = t.render();
    EXPECT_NE(out.find("1.2"), std::string::npos);
    EXPECT_NE(out.find("5.7"), std::string::npos);
}

TEST(Format, Bytes)
{
    EXPECT_EQ(formatBytes(512), "512.00 B");
    EXPECT_EQ(formatBytes(2048), "2.00 KB");
    EXPECT_EQ(formatBytes(3.5 * 1024 * 1024), "3.50 MB");
}

TEST(Format, Percent)
{
    EXPECT_EQ(formatPercent(0.5), "50.0%");
    EXPECT_EQ(formatPercent(0.987, 2), "98.70%");
}

TEST(Format, Double)
{
    EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
    EXPECT_EQ(formatDouble(2.0, 0), "2");
}

// --- CSV -----------------------------------------------------------------

TEST(CsvWriter, WritesHeaderAndRows)
{
    std::string path = testing::TempDir() + "mltc_csv_test.csv";
    {
        CsvWriter csv(path, {"a", "b"});
        csv.row({1.5, 2.5});
        csv.rowStrings({"x", "y"});
    }
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "a,b");
    std::getline(in, line);
    EXPECT_EQ(line, "1.5,2.5");
    std::getline(in, line);
    EXPECT_EQ(line, "x,y");
    std::remove(path.c_str());
}

TEST(CsvWriter, RejectsWidthMismatch)
{
    std::string path = testing::TempDir() + "mltc_csv_test2.csv";
    CsvWriter csv(path, {"a", "b"});
    EXPECT_THROW(csv.row({1.0}), std::invalid_argument);
    std::remove(path.c_str());
}

TEST(CsvWriter, ThrowsOnBadPath)
{
    EXPECT_THROW(CsvWriter("/nonexistent_dir_xyz/file.csv", {"a"}),
                 std::runtime_error);
}

// --- PPM -----------------------------------------------------------------

TEST(Ppm, WritesValidHeaderAndSize)
{
    std::string path = testing::TempDir() + "mltc_ppm_test.ppm";
    std::vector<uint32_t> pixels(4, 0xff0000ffu); // red
    ASSERT_TRUE(writePpm(path, 2, 2, pixels));
    std::ifstream in(path, std::ios::binary);
    std::string magic;
    in >> magic;
    EXPECT_EQ(magic, "P6");
    int w, h, maxv;
    in >> w >> h >> maxv;
    EXPECT_EQ(w, 2);
    EXPECT_EQ(h, 2);
    EXPECT_EQ(maxv, 255);
    in.get(); // single whitespace after header
    unsigned char rgb[3];
    in.read(reinterpret_cast<char *>(rgb), 3);
    EXPECT_EQ(rgb[0], 255); // R
    EXPECT_EQ(rgb[1], 0);   // G
    EXPECT_EQ(rgb[2], 0);   // B
    std::remove(path.c_str());
}

TEST(Ppm, RejectsShortBuffer)
{
    std::vector<uint32_t> pixels(3);
    EXPECT_FALSE(writePpm(testing::TempDir() + "x.ppm", 2, 2, pixels));
}

TEST(Ppm, RejectsBadDimensions)
{
    std::vector<uint32_t> pixels(4);
    EXPECT_FALSE(writePpm(testing::TempDir() + "x.ppm", 0, 2, pixels));
}

// --- Env -----------------------------------------------------------------

TEST(Env, IntFallsBackWhenUnset)
{
    unsetenv("MLTC_TEST_UNSET_VAR");
    EXPECT_EQ(envInt("MLTC_TEST_UNSET_VAR", 99), 99);
}

TEST(Env, IntParsesWhenSet)
{
    setenv("MLTC_TEST_VAR", "123", 1);
    EXPECT_EQ(envInt("MLTC_TEST_VAR", 0), 123);
    unsetenv("MLTC_TEST_VAR");
}

TEST(Env, BenchFrameCountUsesOverride)
{
    setenv("MLTC_FRAMES", "7", 1);
    EXPECT_EQ(benchFrameCount(100), 7);
    unsetenv("MLTC_FRAMES");
    EXPECT_EQ(benchFrameCount(100), 100);
}

} // namespace
} // namespace mltc
