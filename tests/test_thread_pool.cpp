/**
 * @file
 * Unit tests for the work-stealing ThreadPool and the SweepExecutor
 * built on it: completion, result/exception propagation through
 * futures, nested submits, drain-on-shutdown, the MLTC_JOBS default
 * policy, and — the property the parallel sweep engine rests on —
 * in-registration-order emission no matter how the pool schedules the
 * legs.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "sim/parallel_runner.hpp"
#include "sim/resilience.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace mltc {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.workerCount(), 4u);
    std::atomic<int> ran{0};
    for (int i = 0; i < 200; ++i)
        pool.submit([&ran]() { ran.fetch_add(1); });
    pool.waitIdle();
    EXPECT_EQ(ran.load(), 200);
}

TEST(ThreadPool, FuturesCarryResults)
{
    ThreadPool pool(3);
    std::vector<std::future<int>> futs;
    for (int i = 0; i < 50; ++i)
        futs.push_back(pool.submit([i]() { return i * i; }));
    int sum = 0;
    for (auto &f : futs)
        sum += f.get();
    int expect = 0;
    for (int i = 0; i < 50; ++i)
        expect += i * i;
    EXPECT_EQ(sum, expect);
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures)
{
    ThreadPool pool(2);
    auto ok = pool.submit([]() { return 7; });
    auto boom = pool.submit([]() -> int {
        throw std::runtime_error("leg exploded");
    });
    auto typed = pool.submit([]() -> int {
        throw Exception(ErrorCode::Io, "disk gone");
    });
    EXPECT_EQ(ok.get(), 7);
    EXPECT_THROW(
        {
            try {
                boom.get();
            } catch (const std::runtime_error &e) {
                EXPECT_STREQ(e.what(), "leg exploded");
                throw;
            }
        },
        std::runtime_error);
    EXPECT_THROW(
        {
            try {
                typed.get();
            } catch (const Exception &e) {
                EXPECT_EQ(e.code(), ErrorCode::Io);
                throw;
            }
        },
        Exception);
    // A throwing task must not poison the pool.
    auto after = pool.submit([]() { return 11; });
    EXPECT_EQ(after.get(), 11);
}

TEST(ThreadPool, NestedSubmitsComplete)
{
    ThreadPool pool(2);
    std::atomic<int> inner_ran{0};
    auto outer = pool.submit([&]() {
        std::vector<std::future<void>> inner;
        for (int i = 0; i < 8; ++i)
            inner.push_back(
                pool.submit([&inner_ran]() { inner_ran.fetch_add(1); }));
        for (auto &f : inner)
            f.get();
        return inner_ran.load();
    });
    EXPECT_EQ(outer.get(), 8);
}

TEST(ThreadPool, DestructorDrainsQueuedWork)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 64; ++i)
            pool.submit([&ran]() {
                std::this_thread::sleep_for(std::chrono::microseconds(50));
                ran.fetch_add(1);
            });
        // No waitIdle(): the destructor must not drop queued tasks.
    }
    EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, DefaultJobsHonoursEnvironment)
{
    setenv("MLTC_JOBS", "3", 1);
    EXPECT_EQ(ThreadPool::defaultJobs(), 3u);
    setenv("MLTC_JOBS", "0", 1); // non-positive -> hardware policy
    EXPECT_GE(ThreadPool::defaultJobs(), 1u);
    unsetenv("MLTC_JOBS");
    EXPECT_GE(ThreadPool::defaultJobs(), 1u);
}

TEST(SweepExecutor, EmitsBufferedOutputInRegistrationOrder)
{
    // Legs finish in reverse order (leg 0 slowest); stdout must still
    // read leg0, leg1, ... — the byte-identical-output property.
    for (unsigned jobs : {1u, 4u}) {
        SweepExecutor sweep(jobs);
        const int n = 6;
        for (int i = 0; i < n; ++i)
            sweep.addLeg("leg" + std::to_string(i), [i, n](LegContext &ctx) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(2 * (n - i)));
                ctx.printf("leg%d\n", i);
            });
        testing::internal::CaptureStdout();
        SweepManifest manifest = sweep.run();
        const std::string out = testing::internal::GetCapturedStdout();
        std::string expect;
        for (int i = 0; i < n; ++i)
            expect += "leg" + std::to_string(i) + "\n";
        EXPECT_EQ(out, expect) << "jobs=" << jobs;
        EXPECT_TRUE(manifest.allCompleted()) << "jobs=" << jobs;
    }
}

TEST(SweepExecutor, FailedLegIsContainedAndReported)
{
    for (unsigned jobs : {1u, 3u}) {
        SweepExecutor sweep(jobs);
        std::atomic<int> ran{0};
        sweep.addLeg("good-a", [&](LegContext &) { ran.fetch_add(1); });
        sweep.addLeg("bad", [](LegContext &) {
            throw Exception(ErrorCode::Corrupt, "checksum mismatch");
        });
        sweep.addLeg("good-b", [&](LegContext &) { ran.fetch_add(1); });
        SweepManifest manifest = sweep.run();
        EXPECT_EQ(ran.load(), 2);
        ASSERT_EQ(manifest.legs.size(), 3u);
        EXPECT_FALSE(manifest.allCompleted());
        EXPECT_EQ(manifest.legs[0].outcome, LegOutcome::Completed);
        EXPECT_EQ(manifest.legs[1].outcome, LegOutcome::Failed);
        EXPECT_NE(manifest.legs[1].error.find("checksum mismatch"),
                  std::string::npos);
        EXPECT_EQ(manifest.legs[2].outcome, LegOutcome::Completed);
    }
}

TEST(SweepExecutor, CancellationStopsDispatchingLegs)
{
    clearCancellation();
    SweepExecutor sweep(1); // serial: deterministic dispatch order
    std::atomic<int> ran{0};
    sweep.addLeg("first", [&](LegContext &) {
        ran.fetch_add(1);
        requestCancellation();
    });
    sweep.addLeg("second", [&](LegContext &) { ran.fetch_add(1); });
    SweepManifest manifest = sweep.run();
    clearCancellation();
    EXPECT_EQ(ran.load(), 1);
    EXPECT_EQ(manifest.legs[0].outcome, LegOutcome::Completed);
    EXPECT_EQ(manifest.legs[1].outcome, LegOutcome::Cancelled);
}

TEST(SweepExecutor, ManifestCsvIsThreadCountInvariant)
{
    auto render = [](unsigned jobs) {
        SweepExecutor sweep(jobs);
        sweep.addLeg("alpha", [](LegContext &) {});
        sweep.addLeg("beta", [](LegContext &) {
            throw std::runtime_error("beta failed");
        });
        SweepManifest m = sweep.run();
        const std::string path = testing::TempDir() + "sweep_manifest_j" +
                                 std::to_string(jobs) + ".csv";
        m.writeCsv(path);
        std::FILE *f = std::fopen(path.c_str(), "rb");
        EXPECT_NE(f, nullptr);
        std::string bytes;
        char buf[256];
        size_t got;
        while ((got = std::fread(buf, 1, sizeof buf, f)) > 0)
            bytes.append(buf, got);
        std::fclose(f);
        std::remove(path.c_str());
        return bytes;
    };
    const std::string serial = render(1);
    const std::string parallel = render(8);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);
}

TEST(JobsFromCli, ParsesAndDefaults)
{
    {
        const char *argv[] = {"prog", "--jobs=5"};
        CommandLine cli(2, const_cast<char **>(argv));
        EXPECT_EQ(jobsFromCli(cli), 5u);
    }
    {
        const char *argv[] = {"prog"};
        CommandLine cli(1, const_cast<char **>(argv));
        EXPECT_GE(jobsFromCli(cli), 1u);
    }
    {
        const char *argv[] = {"prog", "--jobs=9999"};
        CommandLine cli(2, const_cast<char **>(argv));
        EXPECT_THROW(jobsFromCli(cli), Exception);
    }
}

} // namespace
} // namespace mltc
