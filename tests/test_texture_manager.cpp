/**
 * @file
 * Unit tests for TextureManager: id assignment, load/unload, byte
 * accounting and layout caching.
 */
#include <gtest/gtest.h>

#include "texture/texture_manager.hpp"

namespace mltc {
namespace {

MipPyramid
pyr(uint32_t size)
{
    return MipPyramid(Image(size, size));
}

TEST(TextureManager, IdsStartAtOneAndIncrement)
{
    TextureManager tm;
    EXPECT_EQ(tm.load("a", pyr(16)), 1u);
    EXPECT_EQ(tm.load("b", pyr(16)), 2u);
    EXPECT_EQ(tm.textureCount(), 2u);
}

TEST(TextureManager, ZeroTidIsInvalid)
{
    TextureManager tm;
    tm.load("a", pyr(16));
    EXPECT_FALSE(tm.isLoaded(0));
    EXPECT_THROW(tm.texture(0), std::out_of_range);
}

TEST(TextureManager, UnknownTidThrows)
{
    TextureManager tm;
    EXPECT_THROW(tm.texture(5), std::out_of_range);
    EXPECT_THROW(tm.unload(5), std::out_of_range);
}

TEST(TextureManager, UnloadKeepsIdStable)
{
    TextureManager tm;
    TextureId a = tm.load("a", pyr(16));
    TextureId b = tm.load("b", pyr(16));
    tm.unload(a);
    EXPECT_FALSE(tm.isLoaded(a));
    EXPECT_TRUE(tm.isLoaded(b));
    EXPECT_EQ(tm.texture(b).name, "b");
}

TEST(TextureManager, HostBytesUseOriginalDepth)
{
    TextureManager tm;
    TextureId a = tm.load("a16", pyr(16), 2); // 16-bit original depth
    const TextureEntry &e = tm.texture(a);
    // 16x16 chain has 341 texels.
    EXPECT_EQ(e.hostBytes(), 341u * 2u);
    EXPECT_EQ(tm.totalHostBytes(), 341u * 2u);
    EXPECT_EQ(tm.totalExpandedBytes(), 341u * 4u);
}

TEST(TextureManager, TotalsSkipUnloaded)
{
    TextureManager tm;
    TextureId a = tm.load("a", pyr(16));
    tm.load("b", pyr(16));
    uint64_t both = tm.totalHostBytes();
    tm.unload(a);
    EXPECT_EQ(tm.totalHostBytes(), both / 2);
}

TEST(TextureManager, LayoutIsCachedAndStable)
{
    TextureManager tm;
    TextureId a = tm.load("a", pyr(64));
    const TiledLayout &l1 = tm.layout(a, TileSpec{16, 4});
    const TiledLayout &l2 = tm.layout(a, TileSpec{16, 4});
    EXPECT_EQ(&l1, &l2); // same cached object
    const TiledLayout &other = tm.layout(a, TileSpec{32, 4});
    EXPECT_NE(&l1, &other);
    EXPECT_EQ(l1.levels(), 7u);
}

TEST(TextureManager, LayoutMatchesPyramidGeometry)
{
    TextureManager tm;
    TextureId a = tm.load("a", pyr(128));
    const TiledLayout &layout = tm.layout(a, TileSpec{16, 4});
    EXPECT_EQ(layout.levels(), tm.texture(a).pyramid.levels());
}

TEST(TextureManager, ForEachLoadedVisitsOnlyLoaded)
{
    TextureManager tm;
    TextureId a = tm.load("a", pyr(16));
    tm.load("b", pyr(16));
    tm.unload(a);
    int count = 0;
    tm.forEachLoaded([&](const TextureEntry &e) {
        ++count;
        EXPECT_EQ(e.name, "b");
    });
    EXPECT_EQ(count, 1);
}

TEST(TextureManager, RejectsEmptyPyramid)
{
    TextureManager tm;
    EXPECT_THROW(tm.load("empty", MipPyramid()), std::invalid_argument);
}

} // namespace
} // namespace mltc
