/**
 * @file
 * Differential test: the production L2TextureCache against a simple,
 * obviously-correct golden model (std::map page table + list-based
 * clock), under long randomized access streams across several
 * configurations. Classic architecture-simulator validation.
 */
#include <gtest/gtest.h>

#include <deque>
#include <map>

#include "core/l2_cache.hpp"
#include "util/rng.hpp"

namespace mltc {
namespace {

/** Golden reference: unoptimised but transparently correct. */
class GoldenL2
{
  public:
    GoldenL2(uint32_t blocks, uint32_t sectors, uint64_t read_bytes)
        : capacity_(blocks), sectors_(sectors), read_bytes_(read_bytes),
          active_(blocks, false), owner_(blocks, ~0u)
    {
    }

    L2Result
    access(uint32_t t_index, uint32_t sector, uint64_t bytes)
    {
        auto it = table_.find(t_index);
        if (it != table_.end()) {
            uint32_t phys = it->second.phys;
            active_[phys] = true;
            if (it->second.present.count(sector)) {
                l2_read_bytes += read_bytes_;
                return L2Result::FullHit;
            }
            it->second.present.insert(sector);
            host_bytes += bytes;
            return L2Result::PartialHit;
        }

        uint32_t phys;
        if (allocated_ < capacity_) {
            phys = allocated_++;
        } else {
            // Clock over the physical blocks.
            for (;;) {
                if (!active_[hand_]) {
                    phys = hand_;
                    hand_ = (hand_ + 1) % capacity_;
                    break;
                }
                active_[hand_] = false;
                hand_ = (hand_ + 1) % capacity_;
            }
            if (owner_[phys] != ~0u) {
                table_.erase(owner_[phys]);
                ++evictions;
            }
        }
        owner_[phys] = t_index;
        Entry e;
        e.phys = phys;
        e.present.insert(sector);
        table_[t_index] = std::move(e);
        active_[phys] = true;
        host_bytes += bytes;
        return L2Result::FullMiss;
    }

    bool
    probe(uint32_t t_index, uint32_t sector) const
    {
        auto it = table_.find(t_index);
        return it != table_.end() && it->second.present.count(sector);
    }

    uint64_t host_bytes = 0;
    uint64_t l2_read_bytes = 0;
    uint64_t evictions = 0;

  private:
    struct Entry
    {
        uint32_t phys = 0;
        std::set<uint32_t> present;
    };

    uint32_t capacity_;
    uint32_t sectors_;
    uint64_t read_bytes_;
    std::map<uint32_t, Entry> table_;
    std::vector<bool> active_;
    std::vector<uint32_t> owner_;
    uint32_t allocated_ = 0;
    uint32_t hand_ = 0;
};

struct GoldenCase
{
    uint32_t blocks;
    uint32_t l2_tile;
    uint32_t l1_tile;
    uint32_t table_span; ///< distinct t_index values in the stream
    uint64_t seed;
};

class GoldenModelTest : public ::testing::TestWithParam<GoldenCase>
{
};

TEST_P(GoldenModelTest, MatchesProductionL2)
{
    const GoldenCase p = GetParam();
    TextureManager tm;
    // One texture big enough that its page table covers table_span.
    tm.load("t", MipPyramid(Image(1024, 1024)));

    L2Config cfg;
    cfg.l2_tile = p.l2_tile;
    cfg.l1_tile = p.l1_tile;
    cfg.size_bytes = p.blocks * cfg.blockBytes();
    L2TextureCache dut(tm, cfg);
    ASSERT_GE(dut.tableEntries(), p.table_span);

    GoldenL2 gold(p.blocks, cfg.sectors(),
                  static_cast<uint64_t>(p.l1_tile) * p.l1_tile * 4);

    Rng rng(p.seed);
    for (int i = 0; i < 30000; ++i) {
        // Zipf-ish reuse: mostly revisit a hot region, sometimes jump.
        uint32_t t_index =
            rng.chance(0.8)
                ? static_cast<uint32_t>(rng.below(p.table_span / 4 + 1))
                : static_cast<uint32_t>(rng.below(p.table_span));
        uint32_t sector = static_cast<uint32_t>(rng.below(cfg.sectors()));

        L2Result expect = gold.access(t_index, sector, 64);
        L2Result got = dut.access(t_index, sector, 64);
        ASSERT_EQ(got, expect) << "iteration " << i;
        ASSERT_EQ(dut.probe(t_index, sector), true);
    }

    const L2Stats &s = dut.stats();
    EXPECT_EQ(s.host_bytes, gold.host_bytes);
    EXPECT_EQ(s.l2_read_bytes, gold.l2_read_bytes);
    EXPECT_EQ(s.evictions, gold.evictions);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, GoldenModelTest,
    ::testing::Values(GoldenCase{4, 16, 4, 64, 1},
                      GoldenCase{16, 16, 4, 200, 2},
                      GoldenCase{64, 16, 4, 500, 3},
                      GoldenCase{16, 32, 4, 120, 4},
                      GoldenCase{16, 16, 8, 120, 5},
                      GoldenCase{8, 8, 4, 300, 6}),
    [](const ::testing::TestParamInfo<GoldenCase> &info) {
        return "b" + std::to_string(info.param.blocks) + "_t" +
               std::to_string(info.param.l2_tile) + "_s" +
               std::to_string(info.param.l1_tile) + "_n" +
               std::to_string(info.param.table_span);
    });

} // namespace
} // namespace mltc
