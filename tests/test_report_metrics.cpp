/**
 * @file
 * Unit tests for the `report --metrics` summarization library
 * (obs/metrics_summary): counter folding, gauge series statistics,
 * mirrored-log-row handling and typed error paths.
 */
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <unistd.h>

#include "obs/metrics_summary.hpp"
#include "util/error.hpp"

namespace mltc {
namespace {

TEST(MetricsSummary, CountersKeepTheLastRow)
{
    std::istringstream in(
        "{\"frame\":0,\"counters\":{\"accesses\":10,\"misses\":2}}\n"
        "{\"frame\":1,\"counters\":{\"accesses\":25,\"misses\":3}}\n");
    const MetricsSummary s = summarizeMetricsStream(in);
    EXPECT_EQ(s.frame_rows, 2u);
    EXPECT_EQ(s.log_rows, 0u);
    ASSERT_EQ(s.final_counters.size(), 2u);
    EXPECT_DOUBLE_EQ(s.final_counters.at("accesses"), 25.0);
    EXPECT_DOUBLE_EQ(s.final_counters.at("misses"), 3.0);
}

TEST(MetricsSummary, GaugesSummarizeAcrossFrames)
{
    std::istringstream in(
        "{\"frame\":0,\"gauges\":{\"hit_rate\":0.5}}\n"
        "{\"frame\":1,\"gauges\":{\"hit_rate\":0.9}}\n"
        "{\"frame\":2,\"gauges\":{\"hit_rate\":0.7}}\n");
    const MetricsSummary s = summarizeMetricsStream(in);
    ASSERT_EQ(s.gauges.count("hit_rate"), 1u);
    const SeriesSummary &g = s.gauges.at("hit_rate");
    EXPECT_DOUBLE_EQ(g.min, 0.5);
    EXPECT_DOUBLE_EQ(g.max, 0.9);
    EXPECT_NEAR(g.mean, 0.7, 1e-12);
}

TEST(MetricsSummary, LogRowsAndBlankLinesAreSkipped)
{
    std::istringstream in(
        "{\"level\":\"info\",\"msg\":\"boot\"}\n"
        "\n"
        "{\"frame\":0,\"counters\":{\"accesses\":1}}\n"
        "{\"level\":\"warn\",\"msg\":\"retry\"}\n");
    const MetricsSummary s = summarizeMetricsStream(in);
    EXPECT_EQ(s.frame_rows, 1u);
    EXPECT_EQ(s.log_rows, 2u);
    EXPECT_DOUBLE_EQ(s.final_counters.at("accesses"), 1.0);
}

TEST(MetricsSummary, MalformedRowReportsLineNumber)
{
    std::istringstream in(
        "{\"frame\":0,\"counters\":{\"accesses\":1}}\n"
        "{not json\n");
    try {
        summarizeMetricsStream(in, "metrics.jsonl");
        FAIL() << "corrupt row must throw";
    } catch (const Exception &e) {
        EXPECT_EQ(e.code(), ErrorCode::Corrupt);
        EXPECT_NE(std::string(e.what()).find("metrics.jsonl line 2"),
                  std::string::npos)
            << e.what();
    }
}

TEST(MetricsSummary, MissingFileThrowsIo)
{
    const std::string path = testing::TempDir() + "does_not_exist." +
                             std::to_string(getpid()) + ".jsonl";
    try {
        summarizeMetricsFile(path);
        FAIL() << "missing file must throw";
    } catch (const Exception &e) {
        EXPECT_EQ(e.code(), ErrorCode::Io);
    }
}

TEST(MetricsSummary, EmptyStreamRendersZeroRows)
{
    std::istringstream in("");
    const MetricsSummary s = summarizeMetricsStream(in);
    EXPECT_EQ(s.frame_rows, 0u);
    EXPECT_EQ(s.log_rows, 0u);
    const std::string text = renderMetricsSummary(s);
    EXPECT_NE(text.find("0 frame rows"), std::string::npos) << text;
}

TEST(MetricsSummary, RenderListsCountersAndGauges)
{
    std::istringstream in(
        "{\"frame\":0,\"counters\":{\"host_bytes\":4096},"
        "\"gauges\":{\"hit_rate\":0.25}}\n"
        "{\"level\":\"info\",\"msg\":\"x\"}\n");
    const std::string text =
        renderMetricsSummary(summarizeMetricsStream(in));
    EXPECT_NE(text.find("1 frame rows (+1 log rows)"), std::string::npos)
        << text;
    EXPECT_NE(text.find("host_bytes"), std::string::npos) << text;
    EXPECT_NE(text.find("4096"), std::string::npos) << text;
    EXPECT_NE(text.find("hit_rate"), std::string::npos) << text;
    EXPECT_NE(text.find("0.2500"), std::string::npos) << text;
}

} // namespace
} // namespace mltc
