/**
 * @file
 * Unit tests for the L2 sector prefetch extension.
 */
#include <gtest/gtest.h>

#include "core/l2_cache.hpp"

namespace mltc {
namespace {

class PrefetchTest : public ::testing::Test
{
  protected:
    PrefetchTest()
    {
        tex = tm.load("t", MipPyramid(Image(64, 64)));
    }

    L2TextureCache
    cache(PrefetchPolicy policy)
    {
        L2Config c;
        c.l2_tile = 16;
        c.l1_tile = 4; // 16 sectors, 4 per row
        c.size_bytes = 8 * c.blockBytes();
        c.prefetch = policy;
        return L2TextureCache(tm, c);
    }

    TextureManager tm;
    TextureId tex;
};

TEST_F(PrefetchTest, PolicyNames)
{
    EXPECT_STREQ(prefetchPolicyName(PrefetchPolicy::None), "none");
    EXPECT_STREQ(prefetchPolicyName(PrefetchPolicy::AdjacentSector),
                 "adjacent");
    EXPECT_STREQ(prefetchPolicyName(PrefetchPolicy::WholeBlock),
                 "whole-block");
}

TEST_F(PrefetchTest, NonePrefetchesNothing)
{
    L2TextureCache l2 = cache(PrefetchPolicy::None);
    l2.access(0, 0, 64);
    EXPECT_EQ(l2.stats().prefetch_sectors, 0u);
    EXPECT_EQ(l2.lastDownloadSectors(), 1u);
    EXPECT_FALSE(l2.probe(0, 1));
}

TEST_F(PrefetchTest, AdjacentFetchesNextSectorInRow)
{
    L2TextureCache l2 = cache(PrefetchPolicy::AdjacentSector);
    l2.access(0, 0, 64);
    EXPECT_EQ(l2.stats().prefetch_sectors, 1u);
    EXPECT_EQ(l2.lastDownloadSectors(), 2u);
    EXPECT_TRUE(l2.probe(0, 1)); // sector 1 prefetched
    EXPECT_FALSE(l2.probe(0, 2));
    // Host bytes include the prefetch.
    EXPECT_EQ(l2.stats().host_bytes, 128u);
}

TEST_F(PrefetchTest, AdjacentStopsAtRowEnd)
{
    L2TextureCache l2 = cache(PrefetchPolicy::AdjacentSector);
    // Sector 3 is the last in its row (4 per row): no prefetch.
    l2.access(0, 3, 64);
    EXPECT_EQ(l2.stats().prefetch_sectors, 0u);
    EXPECT_FALSE(l2.probe(0, 4)); // next row not fetched
}

TEST_F(PrefetchTest, PrefetchedSectorIsFullHitAndCountedUseful)
{
    L2TextureCache l2 = cache(PrefetchPolicy::AdjacentSector);
    l2.access(0, 0, 64);
    EXPECT_EQ(l2.access(0, 1, 64), L2Result::FullHit);
    EXPECT_EQ(l2.stats().prefetch_useful, 1u);
    // A second demand on the same sector is no longer "useful".
    l2.access(0, 1, 64);
    EXPECT_EQ(l2.stats().prefetch_useful, 1u);
}

TEST_F(PrefetchTest, AdjacentDoesNotRefetchPresentSector)
{
    L2TextureCache l2 = cache(PrefetchPolicy::AdjacentSector);
    l2.access(0, 1, 64); // brings 1 (demand) and 2 (prefetch)
    uint64_t bytes = l2.stats().host_bytes;
    l2.access(0, 0, 64); // demand 0; adjacent 1 already present
    EXPECT_EQ(l2.stats().host_bytes, bytes + 64);
    EXPECT_EQ(l2.lastDownloadSectors(), 1u);
}

TEST_F(PrefetchTest, WholeBlockFetchesAllSectors)
{
    L2TextureCache l2 = cache(PrefetchPolicy::WholeBlock);
    l2.access(0, 5, 64);
    EXPECT_EQ(l2.stats().prefetch_sectors, 15u);
    EXPECT_EQ(l2.lastDownloadSectors(), 16u);
    for (uint32_t s = 0; s < 16; ++s)
        EXPECT_TRUE(l2.probe(0, s));
    // Every later sector demand is a full hit.
    for (uint32_t s = 0; s < 16; ++s)
        EXPECT_EQ(l2.access(0, s, 64), L2Result::FullHit);
    EXPECT_EQ(l2.stats().prefetch_useful, 15u);
}

TEST_F(PrefetchTest, EvictionClearsPrefetchState)
{
    L2Config c;
    c.l2_tile = 16;
    c.l1_tile = 4;
    c.size_bytes = 2 * c.blockBytes(); // 2 physical blocks
    c.prefetch = PrefetchPolicy::WholeBlock;
    L2TextureCache l2(tm, c);
    l2.access(0, 0, 64);
    l2.access(1, 0, 64);
    l2.access(2, 0, 64); // evicts one block
    // The evicted virtual block must come back as a full miss, not a
    // stale prefetched hit.
    uint32_t evicted = l2.probe(0, 0) ? 1 : 0;
    EXPECT_EQ(l2.access(evicted, 0, 64), L2Result::FullMiss);
}

TEST_F(PrefetchTest, WholeBlockUsesMoreBandwidthThanDemand)
{
    L2TextureCache demand = cache(PrefetchPolicy::None);
    L2TextureCache whole = cache(PrefetchPolicy::WholeBlock);
    // Demand just 2 sectors of one block.
    demand.access(0, 0, 64);
    demand.access(0, 1, 64);
    whole.access(0, 0, 64);
    whole.access(0, 1, 64);
    EXPECT_EQ(demand.stats().host_bytes, 128u);
    EXPECT_EQ(whole.stats().host_bytes, 16u * 64u);
}

} // namespace
} // namespace mltc
