/**
 * @file
 * Unit tests for the analytic models: expected working set (Fig. 3),
 * structure sizes (Table 4) and the fractional-advantage performance
 * model (Tables 5-7). Includes checks against the paper's quoted
 * numbers.
 */
#include <gtest/gtest.h>

#include "model/performance_model.hpp"
#include "model/structure_size_model.hpp"
#include "model/working_set_model.hpp"

namespace mltc {
namespace {

// --- Working-set model -----------------------------------------------------

TEST(WorkingSetModel, MatchesPaperVillageNumber)
{
    // Paper Table 1: Village, d = 3.8, utilization = 4.7 at 1024x768
    // -> W = 2.43 MB.
    double w = expectedWorkingSetBytes(1024ull * 768, 3.8, 4.7);
    EXPECT_NEAR(w / (1024 * 1024), 2.43, 0.12);
}

TEST(WorkingSetModel, MatchesPaperCityNumber)
{
    // Paper Table 1: City, d = 1.9, utilization = 7.8 -> W = 0.73 MB.
    double w = expectedWorkingSetBytes(1024ull * 768, 1.9, 7.8);
    EXPECT_NEAR(w / (1024 * 1024), 0.73, 0.05);
}

TEST(WorkingSetModel, LinearInDepthInverseInUtilization)
{
    double base = expectedWorkingSetBytes(1000, 1.0, 1.0);
    EXPECT_DOUBLE_EQ(expectedWorkingSetBytes(1000, 2.0, 1.0), 2 * base);
    EXPECT_DOUBLE_EQ(expectedWorkingSetBytes(1000, 1.0, 2.0), base / 2);
    EXPECT_DOUBLE_EQ(base, 4000.0);
}

TEST(WorkingSetModel, RejectsNonPositiveUtilization)
{
    EXPECT_THROW(expectedWorkingSetBytes(1000, 1.0, 0.0),
                 std::invalid_argument);
    EXPECT_THROW(expectedWorkingSetBytes(1000, 1.0, -1.0),
                 std::invalid_argument);
}

TEST(WorkingSetModel, MeasuredUtilizationInvertsDefinition)
{
    // 512 refs over 2 blocks of 16x16 texels -> 512 / 512 = 1.0.
    EXPECT_DOUBLE_EQ(measuredUtilization(512, 2, 16), 1.0);
    EXPECT_DOUBLE_EQ(measuredUtilization(1024, 2, 16), 2.0);
    EXPECT_DOUBLE_EQ(measuredUtilization(100, 0, 16), 0.0);
}

// --- Structure sizes (Table 4) ----------------------------------------------

TEST(StructureSizes, PageTableMatchesPaperRow)
{
    // Paper: 16 MB host texture with 16x16 32-bit tiles -> 16K entries
    // -> 64 KB table.
    StructureSizeParams p;
    p.host_texture_bytes = 16ull << 20;
    StructureSizes s = computeStructureSizes(p);
    EXPECT_EQ(s.page_table_entries, 16u * 1024u);
    EXPECT_EQ(s.page_table_bytes, 64u * 1024u);
}

TEST(StructureSizes, PageTableScalesLinearly)
{
    StructureSizeParams p;
    p.host_texture_bytes = 1ull << 30; // 1 GB
    StructureSizes s = computeStructureSizes(p);
    EXPECT_EQ(s.page_table_bytes, 4096u * 1024u); // paper: 4096 KB
}

TEST(StructureSizes, BrlSizesMatchPaperRows)
{
    for (uint64_t l2_mb : {2ull, 4ull, 8ull}) {
        StructureSizeParams p;
        p.l2_cache_bytes = l2_mb << 20;
        StructureSizes s = computeStructureSizes(p);
        EXPECT_EQ(s.l2_blocks, l2_mb * 1024); // 1 KB blocks
        // Active bits: 0.25/0.5/1 KB.
        EXPECT_EQ(s.brl_active_bits_bytes, l2_mb * 128);
        // t-index storage: 8/16/32 KB.
        EXPECT_EQ(s.brl_index_bytes, l2_mb * 4096);
    }
}

TEST(StructureSizes, SectorBitsGrowEntrySize)
{
    StructureSizeParams p;
    p.host_texture_bytes = 1 << 20;
    p.l2_tile = 32;
    p.l1_tile = 4; // 64 sectors -> 4 sector words + 1 block word
    StructureSizes s = computeStructureSizes(p);
    uint64_t entries = (1 << 20) / (32 * 32 * 4);
    EXPECT_EQ(s.page_table_bytes, entries * 10);
}

TEST(StructureSizes, RejectsBadTiles)
{
    StructureSizeParams p;
    p.l1_tile = 0;
    EXPECT_THROW(computeStructureSizes(p), std::invalid_argument);
    p.l1_tile = 32;
    p.l2_tile = 16;
    EXPECT_THROW(computeStructureSizes(p), std::invalid_argument);
}

// --- Performance model (fractional advantage) -------------------------------

TEST(PerformanceModel, PerfectL2FullHitsGiveHalf)
{
    // All L1 misses served as L2 full hits: f = c - (c - 1/2) = 1/2
    // (local memory is 2x host bandwidth, §5.4.2).
    PerformanceInputs in;
    in.l2_full_hit_rate = 1.0;
    in.full_miss_cost = 8.0;
    EXPECT_DOUBLE_EQ(fractionalAdvantage(in), 0.5);
}

TEST(PerformanceModel, AllPartialHitsGiveOne)
{
    // Partial hits download exactly like the pull architecture: f = 1.
    PerformanceInputs in;
    in.l2_partial_hit_rate = 1.0;
    in.full_miss_cost = 8.0;
    EXPECT_DOUBLE_EQ(fractionalAdvantage(in), 1.0);
}

TEST(PerformanceModel, AllFullMissesCostC)
{
    PerformanceInputs in;
    in.full_miss_cost = 8.0;
    EXPECT_DOUBLE_EQ(fractionalAdvantage(in), 8.0);
}

TEST(PerformanceModel, TypicalMeasuredRatesBeatPull)
{
    // Rates in the ballpark of the paper's Tables 5/6: h2full ~ 0.95.
    PerformanceInputs in;
    in.l1_hit_rate = 0.98;
    in.l2_full_hit_rate = 0.95;
    in.l2_partial_hit_rate = 0.04;
    in.full_miss_cost = 8.0;
    double f = fractionalAdvantage(in);
    EXPECT_LT(f, 1.0);
    EXPECT_GT(l2Speedup(in), 1.0);
}

TEST(PerformanceModel, AccessCostsConsistent)
{
    PerformanceInputs in;
    in.l1_hit_rate = 0.9;
    in.l2_full_hit_rate = 1.0;
    in.full_miss_cost = 8.0;
    EXPECT_DOUBLE_EQ(pullAverageAccessCost(in), 0.1);
    EXPECT_NEAR(l2AverageAccessCost(in), 0.05, 1e-12);
    EXPECT_NEAR(l2Speedup(in), 2.0, 1e-9);
}

TEST(PerformanceModel, RejectsNonPositiveCost)
{
    PerformanceInputs in;
    in.full_miss_cost = 0.0;
    EXPECT_THROW(fractionalAdvantage(in), std::invalid_argument);
}

TEST(PerformanceModel, FIsMonotoneInHitRates)
{
    PerformanceInputs lo, hi;
    lo.full_miss_cost = hi.full_miss_cost = 8.0;
    lo.l2_full_hit_rate = 0.5;
    hi.l2_full_hit_rate = 0.9;
    EXPECT_GT(fractionalAdvantage(lo), fractionalAdvantage(hi));
}

} // namespace
} // namespace mltc
