/**
 * @file
 * Multi-tenant serving tests: the isolation, containment and
 * resilience contracts of the shared-L2 multi-stream runner.
 *
 *  - K=1 under the Shared policy is the pre-multi-tenant simulator:
 *    every counter matches a directly-driven single-stream run;
 *  - Static partitioning is perfect isolation: a partitioned stream is
 *    counter-identical to a solo cache of its quota size, and a
 *    quarantined co-tenant never perturbs the survivors' CSV bytes;
 *  - Utility repartitioning converges on the synthetic thrasher: the
 *    victim's quota grows past its fair share and its L2 miss rate
 *    lands within 10% of solo, while the Shared policy inflates it;
 *  - the per-round state checkpoints survive a real SIGKILL: resumed
 *    CSVs are byte-identical to an uninterrupted run.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <csignal>
#include <fstream>
#include <sstream>
#include <string>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

#include "core/audit.hpp"
#include "sim/animation_driver.hpp"
#include "sim/multi_stream_runner.hpp"
#include "workload/registry.hpp"

namespace mltc {
namespace {

// PID-suffixed: ctest runs test cases as parallel processes, so fixed
// names would race on create/remove across cases.
std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + name + "." + std::to_string(getpid());
}

std::string
fileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Small-but-real config: full workloads, tiny screen and caches. */
MultiStreamConfig
base(L2SharePolicy share, uint64_t l2_bytes = 256ull << 10)
{
    MultiStreamConfig ms;
    ms.width = 64;
    ms.height = 48;
    ms.rounds = 6;
    ms.l1_bytes = 4ull << 10;
    ms.l2_bytes = l2_bytes;
    ms.share = share;
    ms.repartition_every = 2;
    ms.jobs = 1;
    return ms;
}

StreamSpec
spec(const std::string &workload, FilterMode filter, uint32_t phase = 0)
{
    StreamSpec s;
    s.workload = workload;
    s.filter = filter;
    s.phase = phase;
    return s;
}

void
expectTotalsEqual(const CacheFrameStats &a, const CacheFrameStats &b,
                  const std::string &ctx)
{
    EXPECT_EQ(a.accesses, b.accesses) << ctx;
    EXPECT_EQ(a.l1_misses, b.l1_misses) << ctx;
    EXPECT_EQ(a.l2_full_hits, b.l2_full_hits) << ctx;
    EXPECT_EQ(a.l2_partial_hits, b.l2_partial_hits) << ctx;
    EXPECT_EQ(a.l2_full_misses, b.l2_full_misses) << ctx;
    EXPECT_EQ(a.host_bytes, b.host_bytes) << ctx;
    EXPECT_EQ(a.l2_read_bytes, b.l2_read_bytes) << ctx;
}

TEST(MultiStream, SingleSharedStreamMatchesDirectRun)
{
    MultiStreamConfig ms = base(L2SharePolicy::Shared);
    ms.streams.push_back(spec("village", FilterMode::Bilinear));
    MultiStreamRunner runner(ms);
    const MultiStreamManifest manifest = runner.run({});
    EXPECT_EQ(manifest.outcome, RunOutcome::Completed);
    EXPECT_EQ(manifest.quarantinedCount(), 0u);

    // The golden reference: one simulator, directly driven, owning an
    // L2 of the same geometry — the pre-multi-tenant architecture.
    Workload wl = buildWorkload("village");
    CacheSim sim(*wl.textures,
                 CacheSimConfig::twoLevel(ms.l1_bytes, ms.l2_bytes,
                                          ms.l2_tile, ms.l1_tile),
                 "ref");
    Rasterizer raster(ms.width, ms.height);
    raster.setFilter(FilterMode::Bilinear);
    raster.setSink(&sim);
    const float aspect =
        static_cast<float>(ms.width) / static_cast<float>(ms.height);
    for (uint32_t f = 0; f < ms.rounds; ++f) {
        Camera cam = wl.cameraAtFrame(static_cast<int>(f),
                                      wl.default_frames, aspect);
        raster.renderFrame(wl.scene, cam, *wl.textures);
        sim.endFrame();
    }

    expectTotalsEqual(runner.sim(0).totals(), sim.totals(), "k=1 golden");
    const L2Stats &a = runner.l2().stats();
    const L2Stats &b = sim.l2()->stats();
    EXPECT_EQ(a.lookups, b.lookups);
    EXPECT_EQ(a.full_hits, b.full_hits);
    EXPECT_EQ(a.partial_hits, b.partial_hits);
    EXPECT_EQ(a.full_misses, b.full_misses);
    EXPECT_EQ(a.evictions, b.evictions);
}

TEST(MultiStream, StaticPartitionIsSoloCacheOfQuotaSize)
{
    // Two tenants under Static: stream 0 owns exactly half the blocks.
    MultiStreamConfig ms = base(L2SharePolicy::Static, 512ull << 10);
    ms.streams.push_back(spec("village", FilterMode::Bilinear));
    ms.streams.push_back(spec("city", FilterMode::Trilinear, 3));
    MultiStreamRunner shared(ms);
    shared.run({});
    const uint64_t quota = shared.l2().quotas()[0];
    EXPECT_EQ(quota, shared.l2().config().blocks() / 2);

    // Solo run whose whole L2 is exactly that quota.
    MultiStreamConfig solo_cfg =
        base(L2SharePolicy::Shared,
             quota * shared.l2().config().blockBytes());
    solo_cfg.streams.push_back(spec("village", FilterMode::Bilinear));
    MultiStreamRunner solo(solo_cfg);
    solo.run({});

    expectTotalsEqual(shared.sim(0).totals(), solo.sim(0).totals(),
                      "static partition vs solo");

    // Partition isolation bound: nothing was ever stolen.
    EXPECT_EQ(shared.l2().streamStats(0).cross_evictions, 0u);
    EXPECT_EQ(shared.l2().streamStats(1).cross_evictions, 0u);
    CacheAuditor::checkL2(shared.l2(), AuditLevel::Full);
}

TEST(MultiStream, UtilityRepartitionContainsThrasher)
{
    MultiStreamConfig solo_cfg = base(L2SharePolicy::Shared);
    solo_cfg.rounds = 10;
    solo_cfg.streams.push_back(spec("village", FilterMode::Bilinear));
    MultiStreamRunner solo(solo_cfg);
    solo.run({});
    const double solo_miss = solo.l2().streamStats(0).missRate();

    auto paired = [&](L2SharePolicy share) {
        MultiStreamConfig ms = base(share);
        ms.rounds = 10;
        ms.streams.push_back(spec("village", FilterMode::Bilinear));
        ms.streams.push_back(spec(kThrasherWorkload, FilterMode::Bilinear));
        return ms;
    };

    MultiStreamRunner free_for_all(paired(L2SharePolicy::Shared));
    free_for_all.run({});
    const double shared_miss = free_for_all.l2().streamStats(0).missRate();

    MultiStreamRunner governed(paired(L2SharePolicy::Utility));
    ResilienceConfig res;
    res.audit = AuditLevel::Full;
    governed.run(res);
    const double utility_miss = governed.l2().streamStats(0).missRate();

    // Unprotected, the thrasher inflates the victim's miss rate;
    // utility repartitioning keeps it within 10% of the solo run.
    EXPECT_GT(shared_miss, solo_miss * 1.2);
    EXPECT_LE(utility_miss, solo_miss * 1.1);

    // The victim's curve earns it more than its fair share; the
    // thrasher's flat curve earns it (next to) nothing.
    EXPECT_GT(governed.l2().quotas()[0],
              governed.l2().config().blocks() / 2);
    CacheAuditor::checkL2(governed.l2(), AuditLevel::Full);
}

TEST(MultiStream, NoisyNeighborFlagsThrasherUnderSharedPolicy)
{
    MultiStreamConfig ms = base(L2SharePolicy::Shared);
    ms.rounds = 8;
    ms.streams.push_back(spec("village", FilterMode::Bilinear));
    ms.streams.push_back(spec(kThrasherWorkload, FilterMode::Bilinear));
    MultiStreamRunner runner(ms);
    runner.run({});

    // Under Shared nothing stops the thrasher from holding more than
    // its fair share while the victim's curve says it would pay for
    // those blocks — the detector must notice at least once.
    bool victim_flagged = false, thrasher_flagged = false;
    for (const StreamRoundRow &r : runner.rows(0))
        victim_flagged = victim_flagged || r.noisy;
    for (const StreamRoundRow &r : runner.rows(1))
        thrasher_flagged = thrasher_flagged || r.noisy;
    EXPECT_TRUE(thrasher_flagged);
    EXPECT_FALSE(victim_flagged);
    EXPECT_GT(runner.l2().streamStats(1).cross_evictions, 0u);
}

TEST(MultiStream, QuarantineLeavesSurvivorCsvBytesUntouched)
{
    // Static partitions: a tenant dying mid-run must leave the other
    // tenants' outputs byte-equal to a run where it never contributed.
    auto run = [&](int fail_round, const std::string &tag) {
        MultiStreamConfig ms = base(L2SharePolicy::Static, 512ull << 10);
        ms.streams.push_back(spec("village", FilterMode::Bilinear));
        ms.streams.push_back(spec("city", FilterMode::Trilinear, 3));
        ms.streams.push_back(spec(kThrasherWorkload, FilterMode::Bilinear));
        ms.streams[2].fail_at_round = fail_round;
        MultiStreamRunner runner(ms);
        const MultiStreamManifest manifest = runner.run({});
        EXPECT_EQ(manifest.quarantinedCount(), 1u) << tag;
        EXPECT_TRUE(manifest.streams[2].quarantined) << tag;
        EXPECT_EQ(manifest.streams[2].error.code, ErrorCode::Transient)
            << tag;
        EXPECT_EQ(manifest.streams[2].at_round,
                  static_cast<uint32_t>(fail_round))
            << tag;
        std::vector<std::string> bytes;
        for (uint32_t i = 0; i < 2; ++i) {
            const std::string path =
                tempPath(tag + ".stream" + std::to_string(i) + ".csv");
            runner.writeStreamCsv(i, path);
            bytes.push_back(fileBytes(path));
            std::remove(path.c_str());
        }
        return bytes;
    };

    const std::vector<std::string> with_faulty = run(3, "mid");
    const std::vector<std::string> without = run(0, "immediate");
    ASSERT_EQ(with_faulty.size(), without.size());
    for (size_t i = 0; i < with_faulty.size(); ++i)
        EXPECT_EQ(with_faulty[i], without[i]) << "survivor " << i;
}

TEST(MultiStream, OverBudgetStreamShedsLoadViaLodBias)
{
    MultiStreamConfig ms = base(L2SharePolicy::Static, 512ull << 10);
    ms.rounds = 8;
    // A budget far below what the streams actually pull per round.
    ms.stream_budget_bytes = 4 << 10;
    ms.streams.push_back(spec("village", FilterMode::Bilinear));
    ms.streams.push_back(spec("city", FilterMode::Trilinear, 3));
    MultiStreamRunner runner(ms);
    runner.run({});

    // The bias must have engaged (hysteresis may step it back down
    // once the coarser replay drops traffic under half budget), and
    // coarser replay must shrink the per-round download volume.
    const std::vector<StreamRoundRow> &rows = runner.rows(0);
    ASSERT_GE(rows.size(), 4u);
    EXPECT_EQ(rows.front().lod_bias, 0u);
    uint32_t peak_bias = 0;
    for (const StreamRoundRow &r : rows)
        peak_bias = std::max(peak_bias, r.lod_bias);
    EXPECT_GT(peak_bias, 0u);
    EXPECT_GT(runner.governorOverBudgetRounds(0), 0u);
    EXPECT_LT(rows.back().host_bytes, rows.front().host_bytes);
}

TEST(MultiStream, SigkillResumeIsBitIdentical)
{
    MultiStreamConfig ms = base(L2SharePolicy::Utility, 512ull << 10);
    ms.rounds = 6;
    ms.streams.push_back(spec("village", FilterMode::Bilinear));
    ms.streams.push_back(spec("city", FilterMode::Trilinear, 3));
    ms.streams.push_back(spec(kThrasherWorkload, FilterMode::Bilinear));

    // Uninterrupted reference.
    std::vector<std::string> reference;
    {
        MultiStreamRunner runner(ms);
        EXPECT_EQ(runner.run({}).outcome, RunOutcome::Completed);
        for (uint32_t i = 0; i < runner.streamCount(); ++i) {
            const std::string path =
                tempPath("ref.stream" + std::to_string(i) + ".csv");
            runner.writeStreamCsv(i, path);
            reference.push_back(fileBytes(path));
            std::remove(path.c_str());
        }
    }

    const std::string snap = tempPath("multistream.snap");
    ResilienceConfig res;
    res.checkpoint_path = snap;
    res.checkpoint_every = 2;

    // The child really dies: SIGKILL right after the first periodic
    // checkpoint commits, no destructors, no atexit.
    const pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        ResilienceConfig die = res;
        die.die_after_checkpoints = 1;
        MultiStreamRunner runner(ms);
        runner.run(die);
        _exit(97); // unreachable unless the kill hook failed
    }
    int status = 0;
    ASSERT_EQ(waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFSIGNALED(status));
    ASSERT_EQ(WTERMSIG(status), SIGKILL);

    // Resume from the survivor checkpoint and finish the run.
    ResilienceConfig resume = res;
    resume.resume = true;
    MultiStreamRunner resumed(ms);
    EXPECT_EQ(resumed.run(resume).outcome, RunOutcome::Completed);
    for (uint32_t i = 0; i < resumed.streamCount(); ++i) {
        const std::string path =
            tempPath("res.stream" + std::to_string(i) + ".csv");
        resumed.writeStreamCsv(i, path);
        EXPECT_EQ(fileBytes(path), reference[i]) << "stream " << i;
        std::remove(path.c_str());
    }
    std::remove(snap.c_str());
}

TEST(MultiStream, ChecksSharePolicyParsing)
{
    EXPECT_EQ(parseL2SharePolicy("shared"), L2SharePolicy::Shared);
    EXPECT_EQ(parseL2SharePolicy("static"), L2SharePolicy::Static);
    EXPECT_EQ(parseL2SharePolicy("utility"), L2SharePolicy::Utility);
    EXPECT_THROW(parseL2SharePolicy("utliity"), std::invalid_argument);
    EXPECT_THROW(parseL2SharePolicy(""), std::invalid_argument);
    EXPECT_STREQ(l2SharePolicyName(L2SharePolicy::Utility), "utility");
}

TEST(MultiStream, RejectsInvalidConfiguration)
{
    MultiStreamConfig empty = base(L2SharePolicy::Shared);
    EXPECT_THROW(MultiStreamRunner{empty}, std::invalid_argument);

    MultiStreamConfig unknown = base(L2SharePolicy::Shared);
    unknown.streams.push_back(spec("vilage", FilterMode::Bilinear));
    EXPECT_THROW(MultiStreamRunner{unknown}, std::invalid_argument);

    MultiStreamConfig no_rounds = base(L2SharePolicy::Shared);
    no_rounds.rounds = 0;
    no_rounds.streams.push_back(spec("village", FilterMode::Bilinear));
    EXPECT_THROW(MultiStreamRunner{no_rounds}, std::invalid_argument);
}

TEST(BandwidthGovernor, HysteresisStepsUpFastAndDownSlow)
{
    BandwidthGovernor gov(1, {1000, 4});
    EXPECT_EQ(gov.bias(0), 0u);
    EXPECT_EQ(gov.observe(0, 2000), 1u); // over: step up immediately
    EXPECT_EQ(gov.observe(0, 2000), 2u);
    EXPECT_EQ(gov.observe(0, 400), 2u); // one calm round: hold
    EXPECT_EQ(gov.observe(0, 400), 1u); // second calm round: step down
    EXPECT_EQ(gov.observe(0, 700), 1u); // in the dead band: hold
    EXPECT_EQ(gov.observe(0, 400), 1u); // dead band reset the streak
    EXPECT_EQ(gov.observe(0, 400), 0u);
    EXPECT_EQ(gov.overBudgetRounds(0), 2u);
    EXPECT_EQ(gov.totalBytes(0), 2000u + 2000 + 400 + 400 + 700 + 400 + 400);

    // Unlimited budget never engages.
    BandwidthGovernor off(1, {0, 4});
    EXPECT_EQ(off.observe(0, 1ull << 40), 0u);
}

} // namespace
} // namespace mltc
