/**
 * @file
 * Unit tests for the sim module: the animation driver and the
 * multi-configuration runner plumbing.
 */
#include <gtest/gtest.h>

#include "sim/multi_config_runner.hpp"
#include "workload/village.hpp"

namespace mltc {
namespace {

Workload
tiny()
{
    VillageParams p;
    p.houses = 4;
    p.trees = 2;
    p.extent = 80.0f;
    p.ground_texture_size = 64;
    p.wall_texture_size = 64;
    return buildVillage(p);
}

TEST(AnimationDriver, HonoursFrameCount)
{
    Workload wl = tiny();
    int frames_seen = 0;
    DriverConfig cfg;
    cfg.width = 64;
    cfg.height = 48;
    cfg.frames = 5;
    runAnimation(wl, cfg, nullptr,
                 [&](int f, const FrameStats &) { EXPECT_EQ(f, frames_seen++); });
    EXPECT_EQ(frames_seen, 5);
}

TEST(AnimationDriver, ZeroFramesUsesWorkloadDefault)
{
    Workload wl = tiny();
    wl.default_frames = 3;
    int frames_seen = 0;
    DriverConfig cfg;
    cfg.width = 64;
    cfg.height = 48;
    cfg.frames = 0;
    runAnimation(wl, cfg, nullptr,
                 [&](int, const FrameStats &) { ++frames_seen; });
    EXPECT_EQ(frames_seen, 3);
}

TEST(AnimationDriver, AggregatesTotals)
{
    Workload wl = tiny();
    DriverConfig cfg;
    cfg.width = 64;
    cfg.height = 48;
    cfg.frames = 3;
    uint64_t pixel_sum = 0;
    FrameStats total =
        runAnimation(wl, cfg, nullptr, [&](int, const FrameStats &fs) {
            pixel_sum += fs.pixels_textured;
        });
    EXPECT_EQ(total.pixels_textured, pixel_sum);
    EXPECT_GT(total.triangles_in, 0u);
}

TEST(AnimationDriver, FilterAffectsAccessCount)
{
    Workload wl = tiny();
    DriverConfig cfg;
    cfg.width = 64;
    cfg.height = 48;
    cfg.frames = 2;
    cfg.filter = FilterMode::Point;
    FrameStats pt = runAnimation(wl, cfg, nullptr);
    cfg.filter = FilterMode::Bilinear;
    FrameStats bl = runAnimation(wl, cfg, nullptr);
    EXPECT_EQ(bl.texel_accesses, pt.texel_accesses * 4);
}

TEST(MultiConfigRunner, AverageHostBytes)
{
    Workload wl = tiny();
    DriverConfig cfg;
    cfg.width = 64;
    cfg.height = 48;
    cfg.frames = 4;
    MultiConfigRunner runner(wl, cfg);
    runner.addSim(CacheSimConfig::pull(2 * 1024), "p");
    runner.run();
    uint64_t total = 0;
    for (const auto &row : runner.rows())
        total += row.sims[0].host_bytes;
    EXPECT_DOUBLE_EQ(runner.averageHostBytesPerFrame(0),
                     static_cast<double>(total) / 4.0);
}

TEST(MultiConfigRunner, RerunClearsRows)
{
    Workload wl = tiny();
    DriverConfig cfg;
    cfg.width = 64;
    cfg.height = 48;
    cfg.frames = 2;
    MultiConfigRunner runner(wl, cfg);
    runner.addSim(CacheSimConfig::pull(2 * 1024), "p");
    runner.run();
    EXPECT_EQ(runner.rows().size(), 2u);
    runner.run();
    EXPECT_EQ(runner.rows().size(), 2u); // cleared, not appended
}

TEST(MultiConfigRunner, SimLabelsPreserved)
{
    Workload wl = tiny();
    DriverConfig cfg;
    cfg.frames = 1;
    cfg.width = 32;
    cfg.height = 32;
    MultiConfigRunner runner(wl, cfg);
    runner.addSim(CacheSimConfig::pull(2 * 1024), "alpha");
    runner.addSim(CacheSimConfig::twoLevel(2 * 1024, 1 << 20), "beta");
    EXPECT_EQ(runner.sims()[0]->label(), "alpha");
    EXPECT_EQ(runner.sims()[1]->label(), "beta");
}

TEST(MultiConfigRunner, NoConsumersStillRuns)
{
    Workload wl = tiny();
    DriverConfig cfg;
    cfg.frames = 2;
    cfg.width = 32;
    cfg.height = 32;
    MultiConfigRunner runner(wl, cfg);
    runner.run();
    EXPECT_EQ(runner.rows().size(), 2u);
    EXPECT_TRUE(runner.rows()[0].sims.empty());
    EXPECT_FALSE(runner.rows()[0].working_sets.has_value());
}

} // namespace
} // namespace mltc
